"""Whole-session checkpoint capture and resume.

A checkpoint is one pickle of everything replay-determinism needs:
the miner (knowledge base with rules/samples/decisions, RNG streams,
question log, trust/quality state, the open-policy and strategy
objects) plus — for dispatched sessions — a plain-data snapshot of the
dispatcher (event-clock time and schedule counter, the in-flight book
with each pending arrival/timeout instant, all outcome counters, the
delivery-token guard, the completion timeline). Everything travels in
a *single* pickle so shared objects (the instrumentation layer, the
trust sources inside the aggregator, rules referenced from proposals
and the knowledge base alike) keep their identity on load.

What is deliberately rebuilt rather than stored:

- the knowledge base's inverted index — reconstructed from the rules
  in discovery order on load (and re-pointed at the backend's index
  implementation, so a SQLite session resumes onto SQL scans);
- the event closures of pending arrivals/timeouts — re-armed on a
  fresh clock in original schedule order, so same-instant ties keep
  breaking exactly as they would have in the uninterrupted run.

Known limitation: externally scheduled clock events are not captured —
resuming a session driven by a fault injector with faults still
scheduled silently drops those pending faults (the injector itself,
living outside the miner/dispatcher, is not part of the session
graph). Checkpoint *between* injected faults, or re-arm the injector
after resume.

The dispatch/miner imports below are function-local on purpose: this
module is imported by ``repro.storage`` which the miner loads, while
the dispatcher imports the miner — top-level imports here would close
that cycle.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Any

from repro.storage.backend import (
    CheckpointInfo,
    CorruptStoreError,
    StorageBackend,
    StorageError,
)
from repro.storage.integrity import open_payload, seal_payload

if TYPE_CHECKING:
    from repro.dispatch.dispatcher import Dispatcher
    from repro.dispatch.sharded import ShardedDispatcher
    from repro.miner.crowdminer import CrowdMiner

#: Version stamp of the checkpoint payload layout.
CHECKPOINT_FORMAT = 1


def capture_session(
    miner: "CrowdMiner", dispatcher: "Dispatcher | ShardedDispatcher | None" = None
) -> bytes:
    """Serialize one session (miner plus optional dispatcher) to bytes.

    Safe to call between questions (the synchronous path) or between
    clock events (the dispatched path — the dispatcher defers the
    request to that boundary, see
    :meth:`~repro.dispatch.dispatcher.Dispatcher.request_checkpoint`);
    capturing mid-delivery would snapshot half-updated books.

    The returned bytes are sealed
    (:func:`repro.storage.integrity.seal_payload`): a SHA-256 frame
    the restore side verifies before unpickling, so torn writes and
    bit rot surface as :class:`CorruptStoreError` instead of garbage
    state.
    """
    doc = {
        "format": CHECKPOINT_FORMAT,
        "miner": miner,
        "dispatch": None if dispatcher is None else _snapshot_dispatcher(dispatcher),
    }
    return seal_payload(pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL))


def verify_payload(payload: bytes) -> bytes:
    """Checksum-verify one stored checkpoint payload (see scrub/repair).

    Returns the inner pickle bytes; raises :class:`CorruptStoreError`
    when the seal does not hold. Legacy pre-seal payloads pass through
    unverified — there is no digest to check.
    """
    return open_payload(payload, what="checkpoint")


def restore_session(
    payload: bytes, storage: StorageBackend | None = None
) -> "tuple[CrowdMiner, Dispatcher | ShardedDispatcher | None]":
    """Rebuild a live session from a checkpoint payload.

    Attaches ``storage`` to the restored miner and re-points the
    knowledge base at the backend's index implementation (resetting any
    persisted index state first — it is rebuilt, not trusted, across a
    crash). Returns the miner and, for dispatched sessions, a live
    dispatcher with every pending arrival/timeout re-armed.

    The payload's checksum seal is verified *before* unpickling; a
    damaged payload raises :class:`CorruptStoreError` (resume with
    ``--repair`` to fall back to the last verified checkpoint).
    """
    payload = verify_payload(payload)
    try:
        doc = pickle.loads(payload)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError) as exc:
        raise StorageError("cannot unpickle checkpoint payload") from exc
    if not isinstance(doc, dict) or "format" not in doc:
        raise StorageError("not a checkpoint payload")
    if doc["format"] != CHECKPOINT_FORMAT:
        raise StorageError(
            f"unsupported checkpoint format {doc['format']!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    miner: "CrowdMiner" = doc["miner"]
    miner.storage = storage
    if storage is not None:
        storage.reset_index()
        miner.state.rebuild_index(storage.make_index())
        bind_obs = getattr(storage, "bind_obs", None)
        if bind_obs is not None:
            bind_obs(miner.obs)
    dispatcher = None
    if doc["dispatch"] is not None:
        dispatcher = _restore_dispatcher(doc["dispatch"], miner)
    return miner, dispatcher


def scrub_store(
    storage: StorageBackend,
) -> tuple[list[CheckpointInfo], list[CheckpointInfo]]:
    """Checksum-verify every checkpoint; returns ``(verified, corrupt)``.

    The scrub-on-open pass: one read of every payload, each seal
    checked, nothing unpickled and nothing modified. ``--repair``
    builds on this by dropping the corrupt entries; ``repro kb`` prints
    the report so silent bit rot is noticed before it matters.
    """
    verified: list[CheckpointInfo] = []
    corrupt: list[CheckpointInfo] = []
    for info in storage.checkpoints():
        _info, payload = storage.load_checkpoint(info.checkpoint_id)
        try:
            verify_payload(payload)
        except CorruptStoreError:
            corrupt.append(info)
        else:
            verified.append(info)
    return verified, corrupt


def load_session(
    storage: StorageBackend,
    *,
    rollback: bool = True,
    repair: bool = False,
) -> "tuple[CrowdMiner, Dispatcher | ShardedDispatcher | None, CheckpointInfo]":
    """Resume from the backend's latest *verified* checkpoint.

    Rolls the write-ahead answer log back to the checkpoint boundary
    (answers logged after it will be re-collected deterministically by
    the resumed run), and accounts the restore on the session's own
    instrumentation (``storage.restores`` / the ``storage.restore``
    timer) — which exists only *inside* the payload, hence the manual
    timer arithmetic. Pass ``rollback=False`` for read-only inspection
    (``repro kb`` peeking at a store another process is writing): the
    answer log is left untouched, the backend is *not* attached to the
    restored miner (so nothing — not even an index rebuild — writes to
    it), and the knowledge base keeps the in-process Python index.

    Integrity: the latest checkpoint's checksum is verified before
    anything is unpickled. When it fails and ``repair=False``, a
    :class:`CorruptStoreError` names the damage and points at
    ``--repair``. With ``repair=True`` the full scrub-on-open pass runs
    first — every corrupt checkpoint is dropped (skipped, when the
    store is open read-only) — and the session resumes from the newest
    checkpoint whose seal holds, counting the fallback on
    ``storage.repaired``.

    For serve-session checkpoints the middle element of the returned
    tuple is a :class:`repro.serve.session.ServeSnapshot` (plain data,
    not a live dispatcher) — hand it to
    :meth:`repro.serve.session.SessionManager.resume_all`, not to
    ``Dispatcher.run``.
    """
    dropped = 0
    if repair:
        _verified, corrupt = scrub_store(storage)
        for bad in corrupt:
            if rollback:  # a read-only store cannot shed its bad rows
                storage.drop_checkpoint(bad.checkpoint_id)
            dropped += 1
        history = [
            info
            for info in storage.checkpoints()
            if not any(info.checkpoint_id == bad.checkpoint_id for bad in corrupt)
        ]
        if not history:
            if dropped:
                raise CorruptStoreError(
                    f"no verified checkpoint survives in {storage.describe()} — "
                    f"all {dropped} failed their checksum"
                )
            raise StorageError(
                f"no checkpoint to resume from in {storage.describe()}"
            )
        info, payload = storage.load_checkpoint(history[-1].checkpoint_id)
    else:
        loaded = storage.latest_checkpoint()
        if loaded is None:
            raise StorageError(f"no checkpoint to resume from in {storage.describe()}")
        info, payload = loaded
        try:
            verify_payload(payload)
        except CorruptStoreError as exc:
            raise CorruptStoreError(
                f"latest checkpoint #{info.checkpoint_id} in {storage.describe()} "
                f"is corrupt ({exc}); rerun with --repair to fall back to the "
                "last verified checkpoint"
            ) from exc
    started = time.perf_counter()
    miner, dispatcher = restore_session(payload, storage if rollback else None)
    elapsed = time.perf_counter() - started
    if rollback:
        storage.truncate_answers(info.answers_logged)
    obs = miner.obs
    obs.count("storage.restores")
    if dropped:
        obs.count("storage.repaired", dropped)
    timer = obs.timer("storage.restore")
    timer.calls += 1
    timer.total_seconds += elapsed
    return miner, dispatcher, info


# -- the dispatcher snapshot ---------------------------------------------------


_COUNTERS = (
    "issued",
    "completed",
    "timeouts",
    "retries",
    "stale",
    "late",
    "dropped",
    "malformed",
    "rejected",
    "crashed",
    "duplicates",
)


def _dispatch_state(dispatcher: "Dispatcher") -> dict[str, Any]:
    """One dispatcher's travelling state as plain data.

    Each in-flight entry records the *instants and schedule sequence
    numbers* of its pending arrival/timeout events; the actions are
    recreated on restore. Within the in-flight book events are always
    live (a cancelled event means the entry already left the book), so
    ``None`` only ever means "never scheduled" (a lost answer, an
    infinite timeout). Shared per-shard-or-single fields only — the
    config, stall flag and timeline live with whoever owns them.
    """
    in_flight = []
    for member_id, entry in dispatcher._in_flight.items():
        arrival = entry.arrival_event
        timeout = entry.timeout_event
        in_flight.append(
            {
                "member": member_id,
                "proposal": entry.proposal,
                "answer": entry.answer,
                "attempt": entry.attempt,
                "arrival": (
                    None
                    if arrival is None or arrival.cancelled
                    else (arrival.time, arrival.seq)
                ),
                "timeout": (
                    None
                    if timeout is None or timeout.cancelled
                    else (timeout.time, timeout.seq)
                ),
            }
        )
    return {
        "rng": dispatcher._rng,
        "clock_now": dispatcher.clock.now,
        "clock_seq": dispatcher.clock._seq,
        "in_flight": in_flight,
        "counters": {name: getattr(dispatcher, f"_{name}") for name in _COUNTERS},
        "seen_tokens": set(dispatcher._seen_tokens),
    }


def _apply_dispatch_state(dispatcher: "Dispatcher", state: dict[str, Any]) -> None:
    """Re-arm one dispatcher's travelling state onto its (fresh) clock.

    The clock must already stand at the snapshot instant. Pending
    events are re-armed in their *original schedule order* (sorted by
    saved sequence number): the re-armed events take new sequence
    numbers ``0..k-1`` preserving their relative order, and the clock's
    counter is then advanced to its saved value, so events scheduled
    after resume sort behind every re-armed one at the same instant —
    exactly as they would have in the uninterrupted run.
    """
    from repro.dispatch.dispatcher import _InFlight

    clock = dispatcher.clock
    dispatcher._rng = state["rng"]
    entries: dict[str, _InFlight] = {}
    pending: list[tuple[int, float, str, str]] = []
    for item in state["in_flight"]:
        entries[item["member"]] = _InFlight(
            proposal=item["proposal"],
            answer=item["answer"],
            attempt=item["attempt"],
        )
        if item["arrival"] is not None:
            at, seq = item["arrival"]
            pending.append((seq, at, "arrival", item["member"]))
        if item["timeout"] is not None:
            at, seq = item["timeout"]
            pending.append((seq, at, "timeout", item["member"]))
    for _, at, what, member_id in sorted(pending):
        entry = entries[member_id]
        if what == "arrival":
            entry.arrival_event = clock.schedule_at(
                at, lambda m=member_id: dispatcher._deliver(m)
            )
        else:
            entry.timeout_event = clock.schedule_at(
                at, lambda m=member_id: dispatcher._timeout(m)
            )
    clock._seq = state["clock_seq"]
    dispatcher._in_flight = entries
    for name in _COUNTERS:
        setattr(dispatcher, f"_{name}", state["counters"][name])
    dispatcher._seen_tokens = set(state["seen_tokens"])


def _snapshot_dispatcher(
    dispatcher: "Dispatcher | ShardedDispatcher",
) -> dict[str, Any]:
    """Either dispatcher flavour as plain data, discriminated by kind.

    A sharded snapshot is a list of per-shard states plus the shared
    pieces stored once: the merged timeline, the global stall flag, the
    parent-tracked in-flight high water, each shard's batch stream and
    partition round-robin cursor (partitions are rebuilt from the
    restored crowd on load; only their cursors need to travel).
    """
    from repro.dispatch.sharded import ShardedDispatcher

    serve_snapshot = getattr(dispatcher, "serve_snapshot", None)
    if serve_snapshot is not None:
        # A live ServeSession sits in the miner's dispatcher seat; its
        # travelling state (the pending-question book) is already plain
        # data, discriminated by kind="serve".
        return serve_snapshot()
    if isinstance(dispatcher, ShardedDispatcher):
        return {
            "kind": "sharded",
            "config": dispatcher.config,
            "n_shards": dispatcher.n_shards,
            "shards": [_dispatch_state(shard) for shard in dispatcher.shards],
            "batch_rngs": [shard._batch_rng for shard in dispatcher.shards],
            "cursors": [shard.scheduler._rr_cursor for shard in dispatcher.shards],
            "stalled": dispatcher._stall_flag,
            "high_water": dispatcher._high_water,
            "timeline": list(dispatcher.timeline),
        }
    state = _dispatch_state(dispatcher)
    state["kind"] = "single"
    state["config"] = dispatcher.config
    state["stalled"] = dispatcher._stalled
    state["timeline"] = list(dispatcher.timeline)
    return state


def _restore_dispatcher(
    snapshot: dict[str, Any], miner: "CrowdMiner"
) -> "Dispatcher | ShardedDispatcher":
    """A live dispatcher equivalent to the snapshotted one."""
    from repro.dispatch.clock import EventClock
    from repro.dispatch.dispatcher import Dispatcher

    # Pre-"kind" snapshots are all single-dispatcher sessions.
    kind = snapshot.get("kind", "single")
    if kind == "serve":
        # Serve sessions restore as plain data: re-arming the pending
        # book needs a live event loop and server, so the session
        # manager (repro.serve) folds this back in, not this module.
        from repro.serve.session import ServeSnapshot

        return ServeSnapshot.from_doc(snapshot)
    if kind == "sharded":
        return _restore_sharded(snapshot, miner)
    clock = EventClock()
    clock._now = snapshot["clock_now"]
    dispatcher = Dispatcher(miner, snapshot["config"], clock)
    _apply_dispatch_state(dispatcher, snapshot)
    dispatcher._stalled = snapshot["stalled"]
    dispatcher.timeline = list(snapshot["timeline"])
    return dispatcher


def _restore_sharded(
    snapshot: dict[str, Any], miner: "CrowdMiner"
) -> "ShardedDispatcher":
    """A live sharded dispatcher equivalent to the snapshotted one.

    Construction rebuilds the shard skeleton (partitions over the
    restored crowd, per-shard clocks); each shard then gets its
    snapshotted travelling state applied on top. The construction-time
    seed derivation is discarded wholesale — every restored stream
    (latency, batch) comes from the snapshot, so the resumed run
    continues the original one's randomness, not a fresh replay's.
    """
    from repro.dispatch.sharded import ShardedDispatcher

    parent = ShardedDispatcher(
        miner, snapshot["config"], shards=snapshot["n_shards"]
    )
    for shard, state, batch_rng, cursor in zip(
        parent.shards, snapshot["shards"], snapshot["batch_rngs"], snapshot["cursors"]
    ):
        shard.clock._now = state["clock_now"]
        _apply_dispatch_state(shard, state)
        shard._batch_rng = batch_rng
        shard.scheduler._rr_cursor = cursor
    parent._stall_flag = snapshot["stalled"]
    parent._high_water = snapshot["high_water"]
    # Mutated in place: the list object is shared with every shard.
    parent.timeline[:] = snapshot["timeline"]
    return parent
