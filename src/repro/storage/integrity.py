"""Checksummed payload envelopes — corruption is detected, not unpickled.

A checkpoint payload is an opaque pickle; before this module it was
trusted byte-for-byte. A torn write (payload truncated at byte k), a
lost fsync tail, or a single flipped bit could either crash resume
with an arbitrary ``UnpicklingError`` deep inside the pickle machinery
or — far worse — unpickle *successfully* into silently-wrong session
state. :func:`seal_payload` frames every payload with a magic tag and
a SHA-256 digest; :func:`open_payload` verifies the frame and raises
:class:`~repro.storage.backend.CorruptStoreError` on any mismatch, so
a damaged checkpoint is diagnosed as *storage corruption* (with a
``--repair`` recovery path) before a single pickled byte is executed.

Envelope layout (43 bytes of framing)::

    b"RPROSEAL" + version(1) + length(8, big-endian) + sha256(payload) + payload

Legacy payloads written before sealing existed start with the pickle
protocol-2+ opcode ``b"\\x80"``; :func:`open_payload` passes them
through unverified so old stores keep resuming.
"""

from __future__ import annotations

import hashlib
import struct

from repro.storage.backend import CorruptStoreError

#: Magic tag opening every sealed payload.
SEAL_MAGIC = b"RPROSEAL"

#: Version byte of the seal envelope layout.
SEAL_VERSION = 1

_HEADER = struct.Struct(">8sBQ")  # magic, version, payload length
_DIGEST_SIZE = hashlib.sha256().digest_size


def seal_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in the checksummed envelope."""
    header = _HEADER.pack(SEAL_MAGIC, SEAL_VERSION, len(payload))
    return header + hashlib.sha256(payload).digest() + payload


def is_sealed(blob: bytes) -> bool:
    """True when ``blob`` carries the seal magic."""
    return blob[: len(SEAL_MAGIC)] == SEAL_MAGIC


def open_payload(blob: bytes, *, what: str = "checkpoint") -> bytes:
    """Verify one sealed blob and return the inner payload.

    Raises :class:`CorruptStoreError` on a truncated envelope, a
    payload shorter or longer than the header claims (torn write /
    trailing garbage), or a digest mismatch (bit rot). A legacy
    unsealed pickle (leading ``b"\\x80"``) is returned as-is.
    """
    if not is_sealed(blob):
        if blob[:1] == b"\x80":
            return blob  # pre-seal store: no digest to check
        raise CorruptStoreError(
            f"{what} payload is neither sealed nor a legacy pickle "
            f"(leading bytes {blob[:8]!r})"
        )
    if len(blob) < _HEADER.size + _DIGEST_SIZE:
        raise CorruptStoreError(f"{what} payload envelope truncated at {len(blob)} bytes")
    _magic, version, length = _HEADER.unpack_from(blob)
    if version != SEAL_VERSION:
        raise CorruptStoreError(
            f"unsupported {what} seal version {version} "
            f"(this build writes version {SEAL_VERSION})"
        )
    digest = blob[_HEADER.size : _HEADER.size + _DIGEST_SIZE]
    payload = blob[_HEADER.size + _DIGEST_SIZE :]
    if len(payload) != length:
        raise CorruptStoreError(
            f"{what} payload torn: header promises {length} bytes, "
            f"found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CorruptStoreError(f"{what} payload failed its checksum (bit rot or torn write)")
    return payload
