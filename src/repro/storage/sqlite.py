"""The SQLite storage backend (WAL mode).

One database file holds a whole session: the write-ahead answer log,
the checkpoint history (opaque pickled payloads plus bookkeeping
columns), and the knowledge base's item→rules inverted index as two
indexed tables — so the hot lattice scans run as SQL aggregate queries
instead of Python loops, and a saved knowledge base is inspectable
with any SQLite shell.

Concurrency/durability posture: ``journal_mode=WAL`` with
``synchronous=NORMAL``. Answer-log appends open a deferred transaction
that stays open until the next checkpoint (or ``close()``), so the
per-question cost is one INSERT with no commit machinery — this is
what keeps the checkpoint-overhead budget (see ``bench_e7_runtime``).
The checkpoint row commits that transaction, making checkpoint and
log atomic: a SIGKILL at any instant leaves either the previous or
the new checkpoint readable (never a torn one), and the committed
answer log never runs *behind* the committed checkpoint. Answers after
the last checkpoint may be lost in a crash, but those are precisely
the entries resume rolls back anyway (``truncate_answers``). The index
tables are *not* relied on across a crash: resume resets and rebuilds
them from the restored session state (``docs/persistence.md``).

Determinism: both index queries return candidates ``ORDER BY`` the
insertion id, i.e. discovery order. The Python
:class:`~repro.miner.state.RuleIndex` yields candidates in hash/posting
order instead — every knowledge-base consumer of these queries is
order-independent in observable outcome (membership tests, early
returns that all set the same decision, and commutative decision
propagation), which ``tests/storage/test_sqlite_equivalence.py`` pins
by replaying randomized sessions against the reference implementation.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

from repro.core.rule import Rule
from repro.storage.backend import AnswerRecord, CheckpointInfo, StorageError

#: Schema version stamped into the ``meta`` table.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS answers (
    seq        INTEGER PRIMARY KEY,
    member     TEXT NOT NULL,
    kind       TEXT NOT NULL,
    rule       TEXT,
    support    REAL,
    confidence REAL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    questions      INTEGER NOT NULL,
    kb_rules       INTEGER NOT NULL,
    answers_logged INTEGER NOT NULL,
    payload        BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS index_rules (
    id        INTEGER PRIMARY KEY,
    body_size INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS rule_items (
    item    TEXT NOT NULL,
    rule_id INTEGER NOT NULL,
    PRIMARY KEY (item, rule_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS rule_items_by_rule ON rule_items (rule_id);
"""


class SQLiteRuleIndex:
    """Item→rules inverted index over rule bodies, in SQL.

    Drop-in for :class:`~repro.miner.state.RuleIndex`: same three
    methods, same candidate semantics (bodies only; callers still apply
    the side-wise generalization order). Rules are add-only, so the
    tables only ever grow within a session; rule ids are discovery
    order, and :class:`Rule` objects stay in a Python id→rule map —
    only the *scan* moves into the database.

    - generalization candidates (body ⊆ probe): rules whose match
      count against the probe's items equals their body size;
    - specialization candidates (body ⊇ probe): rules matching *all*
      of the probe's items.
    """

    __slots__ = ("_conn", "_rules", "_ids")

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn
        self._rules: list[Rule] = []  # position == rule id
        self._ids: dict[Rule, int] = {}

    def add(self, rule: Rule) -> None:
        """Index ``rule`` under every item of its body."""
        if rule in self._ids:
            return
        rule_id = len(self._rules)
        self._rules.append(rule)
        self._ids[rule] = rule_id
        body = rule.body
        self._conn.execute(
            "INSERT INTO index_rules (id, body_size) VALUES (?, ?)",
            (rule_id, len(body)),
        )
        self._conn.executemany(
            "INSERT INTO rule_items (item, rule_id) VALUES (?, ?)",
            [(item, rule_id) for item in body],
        )

    def _probe(self, items: tuple[str, ...]) -> str:
        return ",".join("?" for _ in items)

    def generalization_candidates(self, rule: Rule):
        """Known rules whose body is a subset of ``rule``'s body."""
        items = rule.body.items
        if not items:
            return
        rows = self._conn.execute(
            f"""
            SELECT r.id FROM index_rules r
            JOIN rule_items ri ON ri.rule_id = r.id
            WHERE ri.item IN ({self._probe(items)})
            GROUP BY r.id HAVING COUNT(*) = r.body_size
            ORDER BY r.id
            """,
            items,
        ).fetchall()
        for (rule_id,) in rows:
            yield self._rules[rule_id]

    def specialization_candidates(self, rule: Rule):
        """Known rules whose body is a superset of ``rule``'s body."""
        items = rule.body.items
        if not items:
            return
        rows = self._conn.execute(
            f"""
            SELECT rule_id FROM rule_items
            WHERE item IN ({self._probe(items)})
            GROUP BY rule_id HAVING COUNT(*) = ?
            ORDER BY rule_id
            """,
            (*items, len(items)),
        ).fetchall()
        for (rule_id,) in rows:
            yield self._rules[rule_id]


class SQLiteBackend:
    """Session storage in one WAL-mode SQLite database.

    Parameters
    ----------
    path:
        Database file (created when missing). ``":memory:"`` gives a
        private in-memory database — handy for tests and for using the
        SQL index without durability.
    fresh:
        Start a new session store: any existing tables at ``path`` are
        dropped first. ``fresh=False`` opens the existing store for
        resume/inspection.
    readonly:
        Open over SQLite's ``mode=ro`` URI: no schema writes on open,
        every mutating method raises :class:`StorageError`, and —
        because this is a WAL database — reads see a **consistent
        snapshot** even while another process is mid-write (WAL readers
        never block on, nor observe, an uncommitted batch). This is the
        connection ``repro kb`` uses against a live session's store.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fresh: bool = False,
        readonly: bool = False,
    ) -> None:
        if fresh and readonly:
            raise StorageError("a fresh store cannot be opened read-only")
        self.path = str(path)
        self.readonly = readonly
        self._in_tx = False
        #: Chaos seam: called immediately before COMMIT, i.e. with the
        #: answer batch and checkpoint row written but not yet durable.
        #: The kill-schedule runner SIGKILLs the process here to pin
        #: the "between WAL append and commit" crash cell.
        self.pre_commit_hook = None
        try:
            if readonly:
                self._conn = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True, isolation_level=None
                )
            else:
                self._conn = sqlite3.connect(self.path, isolation_level=None)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open sqlite database {path}") from exc
        if not readonly:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            if fresh:
                for table in (
                    "meta", "answers", "checkpoints", "index_rules", "rule_items"
                ):
                    self._conn.execute(f"DROP TABLE IF EXISTS {table}")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.Error as exc:
            raise StorageError(f"not a session store: {path}") from exc
        if row is None:
            raise StorageError(f"not a session store: {path}")
        if int(row[0]) != SCHEMA_VERSION:
            raise StorageError(
                f"unsupported schema version {row[0]} in {path} "
                f"(this build writes version {SCHEMA_VERSION})"
            )

    def _writable(self) -> None:
        if self.readonly:
            raise StorageError(f"{self.path} is open read-only")

    # -- transaction batching ------------------------------------------------

    def _begin(self) -> None:
        """Open the answers-since-last-checkpoint transaction (idempotent)."""
        if not self._in_tx:
            self._conn.execute("BEGIN")
            self._in_tx = True

    def _commit(self) -> None:
        """Commit the pending batch, if any."""
        if self._in_tx:
            if self.pre_commit_hook is not None:
                self.pre_commit_hook()
            self._conn.execute("COMMIT")
            self._in_tx = False

    # -- index ---------------------------------------------------------------

    def make_index(self) -> SQLiteRuleIndex:
        self._writable()  # the index's add() inserts rows
        return SQLiteRuleIndex(self._conn)

    def reset_index(self) -> None:
        self._writable()
        self._conn.execute("DELETE FROM index_rules")
        self._conn.execute("DELETE FROM rule_items")

    # -- answer log ----------------------------------------------------------

    def append_answer(self, record: AnswerRecord) -> None:
        self._writable()
        self._begin()
        self._conn.execute(
            "INSERT OR REPLACE INTO answers "
            "(seq, member, kind, rule, support, confidence) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                record.seq,
                record.member_id,
                record.kind,
                record.rule_key,
                record.support,
                record.confidence,
            ),
        )

    def answers(self) -> list[AnswerRecord]:
        rows = self._conn.execute(
            "SELECT seq, member, kind, rule, support, confidence "
            "FROM answers ORDER BY seq"
        ).fetchall()
        return [AnswerRecord(*row) for row in rows]

    def truncate_answers(self, keep: int) -> None:
        self._writable()
        self._conn.execute("DELETE FROM answers WHERE seq >= ?", (keep,))
        self._commit()

    # -- checkpoints ---------------------------------------------------------

    def save_checkpoint(
        self, payload: bytes, *, questions: int, kb_rules: int
    ) -> CheckpointInfo:
        self._writable()
        (logged,) = self._conn.execute("SELECT COUNT(*) FROM answers").fetchone()
        cursor = self._conn.execute(
            "INSERT INTO checkpoints (questions, kb_rules, answers_logged, payload) "
            "VALUES (?, ?, ?, ?)",
            (questions, kb_rules, logged, sqlite3.Binary(payload)),
        )
        self._commit()  # checkpoint + its answer batch land atomically
        return CheckpointInfo(
            checkpoint_id=int(cursor.lastrowid),
            questions=questions,
            kb_rules=kb_rules,
            answers_logged=int(logged),
            payload_bytes=len(payload),
        )

    def latest_checkpoint(self) -> tuple[CheckpointInfo, bytes] | None:
        row = self._conn.execute(
            "SELECT id, questions, kb_rules, answers_logged, payload "
            "FROM checkpoints ORDER BY id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        cp_id, questions, kb_rules, logged, payload = row
        info = CheckpointInfo(
            checkpoint_id=int(cp_id),
            questions=int(questions),
            kb_rules=int(kb_rules),
            answers_logged=int(logged),
            payload_bytes=len(payload),
        )
        return info, bytes(payload)

    def load_checkpoint(self, checkpoint_id: int) -> tuple[CheckpointInfo, bytes]:
        row = self._conn.execute(
            "SELECT id, questions, kb_rules, answers_logged, payload "
            "FROM checkpoints WHERE id = ?",
            (checkpoint_id,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no checkpoint #{checkpoint_id} in {self.describe()}")
        cp_id, questions, kb_rules, logged, payload = row
        info = CheckpointInfo(
            checkpoint_id=int(cp_id),
            questions=int(questions),
            kb_rules=int(kb_rules),
            answers_logged=int(logged),
            payload_bytes=len(payload),
        )
        return info, bytes(payload)

    def drop_checkpoint(self, checkpoint_id: int) -> None:
        self._writable()
        cursor = self._conn.execute(
            "DELETE FROM checkpoints WHERE id = ?", (checkpoint_id,)
        )
        if cursor.rowcount == 0:
            raise StorageError(f"no checkpoint #{checkpoint_id} in {self.describe()}")
        self._commit()

    def checkpoints(self) -> list[CheckpointInfo]:
        rows = self._conn.execute(
            "SELECT id, questions, kb_rules, answers_logged, LENGTH(payload) "
            "FROM checkpoints ORDER BY id"
        ).fetchall()
        return [
            CheckpointInfo(
                checkpoint_id=int(cp_id),
                questions=int(questions),
                kb_rules=int(kb_rules),
                answers_logged=int(logged),
                payload_bytes=int(size),
            )
            for cp_id, questions, kb_rules, logged, size in rows
        ]

    # -- bookkeeping ---------------------------------------------------------

    def bytes_on_disk(self) -> int:
        if self.path == ":memory:":
            (pages,) = self._conn.execute("PRAGMA page_count").fetchone()
            (page_size,) = self._conn.execute("PRAGMA page_size").fetchone()
            return int(pages) * int(page_size)
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(self.path + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total

    def describe(self) -> str:
        mode = ", read-only" if self.readonly else ""
        return f"sqlite backend ({self.path}, WAL{mode})"

    def close(self) -> None:
        self._commit()
        self._conn.close()

    def abort(self) -> None:
        """Simulate process death: discard the uncommitted batch.

        The in-process analogue of a SIGKILL for the chaos harness —
        everything since the last COMMIT vanishes, exactly what the OS
        would leave behind, without spawning a process to kill.
        """
        if self._in_tx:
            try:
                self._conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
        self._in_tx = False
        self._conn.close()
