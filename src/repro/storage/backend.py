"""The pluggable storage protocol and the in-memory reference backend.

A :class:`StorageBackend` owns three things for one mining session:

- the **write-ahead answer log** — one :class:`AnswerRecord` per
  question the miner finishes, appended as it happens;
- the **checkpoint history** — opaque session payloads (pickles built
  by :mod:`repro.storage.checkpoint`) with their bookkeeping counts;
- the **rule index factory** — the item→rules inverted index the
  knowledge base should use, so a backend can push the hot lattice
  scans into its own query engine
  (:class:`~repro.storage.sqlite.SQLiteRuleIndex` does, over indexed
  SQL tables).

:class:`MemoryBackend` is today's behavior and the default: everything
lives in process memory and the index is the plain Python
:class:`~repro.miner.state.RuleIndex`. Given a ``path`` it additionally
mirrors its state to a single pickle file on every checkpoint (written
atomically via rename), which is all a kill-and-resume run needs.
"""

from __future__ import annotations

import hashlib
import io as _io
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ReproError
from repro.io import PersistenceError
from repro.miner.state import RuleIndex


class StorageError(ReproError):
    """A storage backend could not satisfy a request."""


class CorruptStoreError(StorageError, PersistenceError):
    """Persisted bytes failed an integrity check (checksum, framing).

    Distinct from a plain :class:`StorageError` because the caller's
    recovery differs: the store is *present* but damaged — re-running
    with ``--repair`` discards the unverifiable tail and resumes from
    the last checkpoint whose checksum holds, instead of unpickling
    garbage. Also a :class:`~repro.io.PersistenceError`, since every
    integrity failure is ultimately a document that cannot be read.
    """


#: On-disk format version of the MemoryBackend mirror file.
MEMORY_FILE_FORMAT = 1

#: Magic tag opening a checksummed MemoryBackend mirror file.
MEMORY_FILE_MAGIC = b"RPROMEM\x02"


@dataclass(frozen=True, slots=True)
class AnswerRecord:
    """One finished question/answer exchange, as logged.

    ``rule_key`` is the canonical key of
    :func:`repro.storage.records.rule_key` (``None`` for dry open
    answers); ``support``/``confidence`` are the answered stats
    (``None`` likewise).
    """

    seq: int
    member_id: str
    kind: str
    rule_key: str | None
    support: float | None
    confidence: float | None


@dataclass(frozen=True, slots=True)
class CheckpointInfo:
    """Bookkeeping of one saved checkpoint."""

    checkpoint_id: int
    questions: int
    kb_rules: int
    answers_logged: int
    payload_bytes: int


@runtime_checkable
class StorageBackend(Protocol):
    """What the miner, the runner and the CLI need from persistence."""

    def make_index(self) -> RuleIndex:
        """A fresh rule index for the knowledge base to populate."""
        ...

    def reset_index(self) -> None:
        """Drop any persisted index state (it is rebuilt on restore)."""
        ...

    def append_answer(self, record: AnswerRecord) -> None:
        """Append one record to the write-ahead answer log."""
        ...

    def answers(self) -> list[AnswerRecord]:
        """The answer log so far, in sequence order."""
        ...

    def truncate_answers(self, keep: int) -> None:
        """Discard log entries with ``seq >= keep`` (resume rollback)."""
        ...

    def save_checkpoint(
        self, payload: bytes, *, questions: int, kb_rules: int
    ) -> CheckpointInfo:
        """Persist one opaque session payload; returns its bookkeeping."""
        ...

    def latest_checkpoint(self) -> tuple[CheckpointInfo, bytes] | None:
        """The most recent checkpoint and its payload, or ``None``."""
        ...

    def load_checkpoint(self, checkpoint_id: int) -> tuple[CheckpointInfo, bytes]:
        """One specific checkpoint and its payload (scrub/repair walks)."""
        ...

    def drop_checkpoint(self, checkpoint_id: int) -> None:
        """Discard one checkpoint (``--repair`` removing corrupt rows)."""
        ...

    def checkpoints(self) -> list[CheckpointInfo]:
        """Bookkeeping of every saved checkpoint, oldest first."""
        ...

    def bytes_on_disk(self) -> int:
        """Storage footprint in bytes (0 for purely in-memory state)."""
        ...

    def describe(self) -> str:
        """A one-line human-readable description of the backend."""
        ...

    def close(self) -> None:
        """Release any underlying resources."""
        ...


class MemoryBackend:
    """Process-memory storage — today's behavior, the default.

    Parameters
    ----------
    path:
        Optional mirror file. When given, every
        :meth:`save_checkpoint` rewrites the file with the backend's
        full state (answer log + checkpoint history) via an atomic
        rename, so a SIGKILL never leaves a torn file behind.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = None if path is None else Path(path)
        self._answers: list[AnswerRecord] = []
        self._checkpoints: list[tuple[CheckpointInfo, bytes]] = []
        self._next_id = 1

    @classmethod
    def open(cls, path: str | os.PathLike) -> "MemoryBackend":
        """Load a previously mirrored backend from ``path``.

        The mirror is verified before a single pickled byte runs:
        checksummed mirrors (leading :data:`MEMORY_FILE_MAGIC`) must
        match their SHA-256 digest, legacy bare pickles must decode
        without leftover bytes. Truncation, bit rot or appended
        garbage raise :class:`CorruptStoreError` (a
        :class:`~repro.io.PersistenceError`), never a raw
        ``UnpicklingError``.
        """
        backend = cls(path)
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise StorageError(f"cannot read memory-backend file {path}") from exc
        if data[: len(MEMORY_FILE_MAGIC)] == MEMORY_FILE_MAGIC:
            digest_size = hashlib.sha256().digest_size
            framed = data[len(MEMORY_FILE_MAGIC) :]
            digest, payload = framed[:digest_size], framed[digest_size:]
            if len(digest) < digest_size or hashlib.sha256(payload).digest() != digest:
                raise CorruptStoreError(
                    f"memory-backend mirror {path} failed its checksum "
                    "(truncated or bit-rotted file)"
                )
        elif data[:1] == b"\x80":
            payload = data  # legacy unchecksummed mirror
        else:
            raise StorageError(f"not a memory-backend file: {path}")
        buffer = _io.BytesIO(payload)
        try:
            doc = pickle.Unpickler(buffer).load()
        except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
            raise CorruptStoreError(
                f"memory-backend mirror {path} does not unpickle cleanly"
            ) from exc
        if buffer.tell() != len(payload):
            raise CorruptStoreError(
                f"memory-backend mirror {path} carries "
                f"{len(payload) - buffer.tell()} bytes of trailing garbage"
            )
        if not isinstance(doc, dict) or doc.get("format") != MEMORY_FILE_FORMAT:
            raise StorageError(f"not a memory-backend file: {path}")
        backend._answers = list(doc["answers"])
        backend._checkpoints = list(doc["checkpoints"])
        backend._next_id = int(doc["next_id"])
        return backend

    # -- index ---------------------------------------------------------------

    def make_index(self) -> RuleIndex:
        return RuleIndex()

    def reset_index(self) -> None:
        pass  # the Python index lives inside the session state

    # -- answer log ----------------------------------------------------------

    def append_answer(self, record: AnswerRecord) -> None:
        self._answers.append(record)

    def answers(self) -> list[AnswerRecord]:
        return sorted(self._answers, key=lambda record: record.seq)

    def truncate_answers(self, keep: int) -> None:
        self._answers = [r for r in self._answers if r.seq < keep]

    # -- checkpoints ---------------------------------------------------------

    def save_checkpoint(
        self, payload: bytes, *, questions: int, kb_rules: int
    ) -> CheckpointInfo:
        info = CheckpointInfo(
            checkpoint_id=self._next_id,
            questions=questions,
            kb_rules=kb_rules,
            answers_logged=len(self._answers),
            payload_bytes=len(payload),
        )
        self._next_id += 1
        self._checkpoints.append((info, payload))
        if self.path is not None:
            self._write_mirror()
        return info

    def latest_checkpoint(self) -> tuple[CheckpointInfo, bytes] | None:
        return self._checkpoints[-1] if self._checkpoints else None

    def load_checkpoint(self, checkpoint_id: int) -> tuple[CheckpointInfo, bytes]:
        for info, payload in self._checkpoints:
            if info.checkpoint_id == checkpoint_id:
                return info, payload
        raise StorageError(f"no checkpoint #{checkpoint_id} in {self.describe()}")

    def drop_checkpoint(self, checkpoint_id: int) -> None:
        kept = [
            entry for entry in self._checkpoints
            if entry[0].checkpoint_id != checkpoint_id
        ]
        if len(kept) == len(self._checkpoints):
            raise StorageError(f"no checkpoint #{checkpoint_id} in {self.describe()}")
        self._checkpoints = kept
        if self.path is not None:
            self._write_mirror()

    def checkpoints(self) -> list[CheckpointInfo]:
        return [info for info, _ in self._checkpoints]

    def _write_mirror(self) -> None:
        assert self.path is not None
        doc = {
            "format": MEMORY_FILE_FORMAT,
            "answers": self._answers,
            "checkpoints": self._checkpoints,
            "next_id": self._next_id,
        }
        payload = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
        blob = MEMORY_FILE_MAGIC + hashlib.sha256(payload).digest() + payload
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, self.path)

    # -- bookkeeping ---------------------------------------------------------

    def bytes_on_disk(self) -> int:
        if self.path is None or not self.path.exists():
            return 0
        return self.path.stat().st_size

    def describe(self) -> str:
        where = "process memory" if self.path is None else str(self.path)
        return f"memory backend ({where})"

    def close(self) -> None:
        pass


def open_backend(
    path: str | os.PathLike | None,
    kind: str = "sqlite",
    *,
    resume: bool = False,
    readonly: bool = False,
) -> StorageBackend:
    """Construct the backend a CLI/runner invocation asked for.

    ``resume=False`` starts a fresh session store (an existing file at
    ``path`` is replaced); ``resume=True`` opens the existing store and
    fails loudly when there is none to resume from. ``readonly=True``
    (implies resume semantics) opens the store for inspection only:
    mutations raise, and — on the SQLite backend — the connection reads
    a consistent WAL snapshot even while another process writes.
    """
    if kind == "memory":
        if resume or readonly:
            if path is None:
                raise StorageError("resuming a memory backend requires a path")
            return MemoryBackend.open(path)
        return MemoryBackend(path)
    if kind == "sqlite":
        from repro.storage.sqlite import SQLiteBackend

        if path is None:
            raise StorageError("the sqlite backend requires a path")
        if (resume or readonly) and not Path(path).exists():
            raise StorageError(f"nothing to resume: {path} does not exist")
        if readonly:
            return SQLiteBackend(path, readonly=True)
        return SQLiteBackend(path, fresh=not resume)
    raise StorageError(f"unknown storage backend {kind!r}; expected sqlite or memory")
