"""Persistent, crash-resumable session storage.

The knowledge base historically lived and died in process memory: every
E-series run restarted from zero and KB size was RAM-bound. This
package is the durability layer closing that gap (ROADMAP:
"Persistent, resumable knowledge base on a columnar/SQL backend"):

- :class:`StorageBackend` — the pluggable persistence protocol, with
  two implementations: :class:`MemoryBackend` (today's behavior, the
  default: everything in process memory, optionally mirrored to a
  single pickle file) and :class:`SQLiteBackend` (a WAL-mode SQLite
  database holding the answer log, the checkpoint history and the
  item→rules inverted index as indexed SQL tables);
- a **write-ahead answer log** — every ingested question/answer lands
  in the backend as it happens, giving an auditable trail that
  survives the process;
- **whole-session checkpoints** (:func:`capture_session` /
  :func:`load_session`) — a checkpoint captures everything
  replay-determinism needs (KB rules/samples/decisions, RNG streams,
  EventClock time, dispatcher in-flight books, quality/latent-trust
  state), so a run killed at any round and resumed produces a final
  summary byte-identical to the uninterrupted run.

See ``docs/persistence.md`` for the schema, the checkpoint format and
the resume semantics.
"""

from repro.storage.backend import (
    AnswerRecord,
    CheckpointInfo,
    CorruptStoreError,
    MemoryBackend,
    StorageBackend,
    StorageError,
    open_backend,
)
from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT,
    capture_session,
    load_session,
    restore_session,
    scrub_store,
    verify_payload,
)
from repro.storage.integrity import open_payload, seal_payload
from repro.storage.records import (
    latent_from_doc,
    latent_to_doc,
    rule_from_key,
    rule_key,
    samples_from_doc,
    samples_to_doc,
    summary_from_doc,
    summary_to_doc,
)
from repro.storage.sqlite import SQLiteBackend, SQLiteRuleIndex

__all__ = [
    "AnswerRecord",
    "CHECKPOINT_FORMAT",
    "CheckpointInfo",
    "CorruptStoreError",
    "MemoryBackend",
    "SQLiteBackend",
    "SQLiteRuleIndex",
    "StorageBackend",
    "StorageError",
    "capture_session",
    "latent_from_doc",
    "latent_to_doc",
    "load_session",
    "open_backend",
    "open_payload",
    "restore_session",
    "rule_from_key",
    "rule_key",
    "samples_from_doc",
    "scrub_store",
    "seal_payload",
    "samples_to_doc",
    "summary_from_doc",
    "summary_to_doc",
    "verify_payload",
]
