"""Plain-document converters for the storage layer.

Checkpoints travel as pickles (exact process state, byte-identical
resume), but everything the storage layer writes *next to* the pickle —
the SQL answer log, the rules table, the ``repro kb`` exports — uses
plain JSON-compatible documents built here, so a saved knowledge base
stays inspectable with ordinary tools.

The canonical **rule key** is the JSON encoding of the rule's two item
lists (``ensure_ascii=False``), not its display string: item names may
contain arbitrary punctuation and non-ASCII natural-language text, and
JSON escaping keeps the key unambiguous and round-trippable either way.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.estimation.samples import RuleSamples
from repro.faults.latent import LatentAbilityModel, MemberAbility
from repro.io import PersistenceError

# -- rules ---------------------------------------------------------------------


def rule_key(rule: Rule) -> str:
    """The canonical text key of a rule (unicode-safe, round-trippable)."""
    return json.dumps(
        [list(rule.antecedent.items), list(rule.consequent.items)],
        ensure_ascii=False,
        separators=(",", ":"),
    )


def rule_from_key(key: str) -> Rule:
    """Invert :func:`rule_key` (raises :class:`PersistenceError`)."""
    from repro.errors import InvalidRuleError

    try:
        antecedent, consequent = json.loads(key)
        return Rule(antecedent, consequent)
    except (ValueError, TypeError, InvalidRuleError) as exc:
        raise PersistenceError(f"malformed rule key: {key!r}") from exc


# -- sample stores -------------------------------------------------------------


def samples_to_doc(samples: RuleSamples) -> dict[str, Any]:
    """One rule's evidence as a plain document (member order preserved)."""
    return {
        "rule": None if samples.rule is None else rule_key(samples.rule),
        "observations": [
            {
                "member": member_id,
                "support": stats.support,
                "confidence": stats.confidence,
            }
            for member_id, stats in samples.observations()
        ],
    }


def samples_from_doc(doc: dict[str, Any]) -> RuleSamples:
    """Rebuild a sample store by replaying the stored observations.

    The streaming estimator is rebuilt add-by-add in stored member
    order, so the document pins the *content* (members, their stats,
    the count), not the estimator's float-level history — revisions and
    removals already applied before serialization are not replayed.
    Byte-identical resume therefore pickles the live estimator instead
    (see ``checkpoint.py``); this document form is for inspection,
    export and cross-tool interchange.
    """
    try:
        rule = None if doc["rule"] is None else rule_from_key(doc["rule"])
        samples = RuleSamples(rule)
        for entry in doc["observations"]:
            samples.add(
                entry["member"],
                RuleStats(float(entry["support"]), float(entry["confidence"])),
            )
        return samples
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed samples document: {doc!r}") from exc


# -- aggregate summaries -------------------------------------------------------


def summary_to_doc(summary) -> dict[str, Any]:
    """An :class:`~repro.estimation.samples.EstimateSummary` as a document.

    Handles the zero-``n`` summaries the
    :class:`~repro.estimation.aggregate.WeightedAggregator` returns
    when every contributor's weight is zero.
    """
    return {
        "n": int(summary.n),
        "mean": [float(x) for x in summary.mean],
        "mean_cov": [[float(x) for x in row] for row in summary.mean_cov],
    }


def summary_from_doc(doc: dict[str, Any]):
    """Invert :func:`summary_to_doc`."""
    import numpy as np

    from repro.estimation.samples import EstimateSummary

    try:
        return EstimateSummary(
            n=int(doc["n"]),
            mean=np.array(doc["mean"], dtype=float),
            mean_cov=np.array(doc["mean_cov"], dtype=float),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed summary document: {doc!r}") from exc


# -- latent trust state --------------------------------------------------------

_LATENT_PARAMS = (
    "trust_floor",
    "min_answers",
    "reestimate_every",
    "sigma_tolerance",
    "bias_tolerance",
    "malformed_tolerance",
    "coherence_margin",
    "coherence_prior",
    "coherence_tolerance",
    "coherence_weight",
    "anchor_gain",
    "severity",
    "prior_tau",
    "prior_strength",
    "max_iterations",
    "convergence_tol",
)


def latent_to_doc(model: LatentAbilityModel) -> dict[str, Any]:
    """A latent-ability trust model's full state as a plain document."""
    return {
        "params": {name: getattr(model, name) for name in _LATENT_PARAMS},
        "answers": [
            {
                "member": member_id,
                "cells": [
                    {
                        "rule": rule_key(rule),
                        "support": stats.support,
                        "confidence": stats.confidence,
                    }
                    for rule, stats in cells.items()
                ],
            }
            for member_id, cells in model._answers.items()
        ],
        "malformed": dict(model._malformed),
        "violation": dict(model._violation),
        "pairs": dict(model._pairs),
        "quarantined": sorted(model._quarantined),
        "trust": dict(model._trust),
        "abilities": {
            member_id: {
                "sigma": ability.sigma,
                "bias": list(ability.bias),
                "answers": ability.answers,
                "malformed": ability.malformed,
                "incoherence": ability.incoherence,
                "comparable_pairs": ability.comparable_pairs,
            }
            for member_id, ability in model._ability.items()
        },
        "since_estimate": model._since_estimate,
        "estimates": model._estimates,
        "version": model.version,
    }


def latent_from_doc(doc: dict[str, Any]) -> LatentAbilityModel:
    """Invert :func:`latent_to_doc`."""
    try:
        model = LatentAbilityModel(**doc["params"])
        for entry in doc["answers"]:
            cells = {
                rule_from_key(cell["rule"]): RuleStats(
                    float(cell["support"]), float(cell["confidence"])
                )
                for cell in entry["cells"]
            }
            model._answers[entry["member"]] = cells
        model._malformed = {k: int(v) for k, v in doc["malformed"].items()}
        model._violation = {k: float(v) for k, v in doc["violation"].items()}
        model._pairs = {k: int(v) for k, v in doc["pairs"].items()}
        model._quarantined = set(doc["quarantined"])
        model._trust = {k: float(v) for k, v in doc["trust"].items()}
        model._ability = {
            member_id: MemberAbility(
                sigma=float(entry["sigma"]),
                bias=(float(entry["bias"][0]), float(entry["bias"][1])),
                answers=int(entry["answers"]),
                malformed=int(entry["malformed"]),
                incoherence=float(entry["incoherence"]),
                comparable_pairs=int(entry["comparable_pairs"]),
            )
            for member_id, entry in doc["abilities"].items()
        }
        model._since_estimate = int(doc["since_estimate"])
        model._estimates = int(doc["estimates"])
        model.version = int(doc["version"])
        return model
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise PersistenceError("malformed latent-trust document") from exc
