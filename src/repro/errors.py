"""Exception hierarchy for the ``repro`` crowd-mining library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of the Python API, etc.) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidItemError(ReproError):
    """An item is not part of the active :class:`~repro.core.items.ItemDomain`."""


class InvalidRuleError(ReproError):
    """A rule violates a structural constraint.

    Raised, e.g., when antecedent and consequent overlap or when the
    consequent is empty.
    """


class InvalidThresholdError(ReproError):
    """A support/confidence threshold is outside the ``[0, 1]`` interval."""


class EmptyDatabaseError(ReproError):
    """An operation requires a non-empty transaction database."""


class BudgetExhaustedError(ReproError):
    """The mining session ran out of question budget."""


class NoQuestionAvailableError(ReproError):
    """A question-selection strategy could not produce a question.

    This happens when every known rule is already classified with
    sufficient confidence and open questions are disabled.
    """


class CrowdExhaustedError(ReproError):
    """No crowd member is available (or willing) to answer a question."""


class ConfigurationError(ReproError):
    """An experiment or component configuration is inconsistent."""


class EstimationError(ReproError):
    """A statistical estimate was requested from insufficient data."""
