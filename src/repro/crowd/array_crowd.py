"""A crowd over an :class:`~repro.synth.array_population.ArrayPopulation`.

:class:`ArrayCrowd` speaks the same question protocol as
:class:`~repro.crowd.crowd.SimulatedCrowd` — same scheduling
semantics, same statistics, same async envelope — but keeps **no
per-member objects**. Member state is columnar (seeds, availability
mask) or sparse (per-member generators, patience counters, volunteered
sets exist only for members actually questioned), so a million-member
crowd costs megabytes, and a checkpoint of one stays sublinear in
crowd size.

Byte-identity contract: for the same population columns, seed, shared
answer model and patience, an ``ArrayCrowd`` answers every question
bit-for-bit like a ``SimulatedCrowd`` built over
``population.materialize()`` — the member seed vector is one
vectorized draw that matches the object path's per-member scalar
draws, true stats divide the same integer counts, and per-member
generators consume the same stream. ``tests/crowd/test_array_crowd.py``
pins this.

Heterogeneous behaviour (per-member answer models, adversary mixes)
needs per-member objects and is deliberately not supported here — use
the object path for fault experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Collection
from typing import TYPE_CHECKING

import numpy as np

from repro._util import as_rng, check_positive
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.crowd.answer_models import AnswerModel, ExactAnswerModel
from repro.crowd.crowd import CrowdStats
from repro.crowd.open_behavior import OpenAnswerPolicy
from repro.crowd.questions import (
    ClosedAnswer,
    ClosedQuestion,
    InFlightAnswer,
    OpenAnswer,
    OpenQuestion,
)
from repro.errors import CrowdExhaustedError
from repro.synth.array_population import ArrayPopulation

if TYPE_CHECKING:
    from repro.crowd.partition import CrowdPartition
    from repro.dispatch.latency import LatencyModel

#: Bound on cached personal open-answer rule pools.
POOL_CACHE = 1024


#: Shared generator handed to answer models that never draw (see
#: ``ArrayCrowd._answer_rng``); its state is irrelevant by contract.
_INERT_RNG = np.random.default_rng(0)


def _generator_from_state(state: dict) -> np.random.Generator:
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


class ArrayCrowd:
    """The vectorized crowd: columnar member state, object-free answering.

    Parameters
    ----------
    population:
        The columnar population backing every answer.
    answer_model:
        One model shared by the whole crowd (kept scalar-compatible
        per member via per-member generators).
    open_policy:
        Shared open-answer policy.
    patience:
        Per-member question budget (``None`` = unbounded).
    seed:
        Crowd randomness; consumed exactly like
        :meth:`SimulatedCrowd.from_population` (one 63-bit draw per
        member for the member seeds).
    """

    def __init__(
        self,
        population: ArrayPopulation,
        answer_model: AnswerModel | None = None,
        open_policy: OpenAnswerPolicy | None = None,
        patience: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._population = population
        self.answer_model = answer_model or ExactAnswerModel()
        self.open_policy = open_policy or OpenAnswerPolicy()
        self.patience = patience
        rng = as_rng(seed)
        #: Generator state *before* the member-seed draw — enough to
        #: regenerate the seed column on restore, so checkpoints never
        #: carry O(n) seed material.
        self._pre_state = rng.bit_generator.state
        self._member_seeds = rng.integers(2**63, size=len(population))
        self._rng = rng
        self.stats = CrowdStats()
        self._tokens = 0
        self._rr_cursor = 0
        # Sparse per-member state: populated only for questioned members.
        self._answered: dict[int, int] = {}
        self._member_rngs: dict[int, np.random.Generator] = {}
        self._volunteered: dict[int, set[Rule]] = {}
        self._departed: set[int] = set()
        self._quarantined: set[int] = set()
        self._init_runtime()

    def _init_runtime(self) -> None:
        n = len(self._population)
        self._active = np.ones(n, dtype=bool)
        for k in self._departed | self._quarantined:
            self._active[k] = False
        if self.patience is not None:
            for k, count in self._answered.items():
                if count >= self.patience:
                    self._active[k] = False
        self._n_active = int(self._active.sum())
        self._avail_gen = 0
        self._avail_idx: np.ndarray | None = None
        self._pools: OrderedDict[int, dict] = OrderedDict()

    # -- identity -------------------------------------------------------------

    def _id(self, index: int) -> str:
        return self._population.member_id_at(index)

    def _index(self, member_id: str) -> int:
        return self._population.index_of(member_id)

    def __len__(self) -> int:
        return len(self._population)

    @property
    def population(self) -> ArrayPopulation:
        """The columnar population behind this crowd."""
        return self._population

    @property
    def member_ids(self) -> list[str]:
        """All member ids, in index order (materializes the list)."""
        return [self._id(k) for k in range(len(self._population))]

    # -- availability ---------------------------------------------------------

    def _avail_indices(self) -> np.ndarray:
        if self._avail_idx is None:
            self._avail_idx = np.flatnonzero(self._active)
        return self._avail_idx

    def available_members(self) -> list[str]:
        """Ids of members still willing to answer (and not quarantined)."""
        return [self._id(int(k)) for k in self._avail_indices()]

    def available_count(self) -> int:
        """How many members can still be routed a question — O(1)."""
        return self._n_active

    def is_member_available(self, member_id: str) -> bool:
        """True when ``member_id`` may still be routed a question."""
        return bool(self._active[self._index(member_id)])

    @property
    def availability_generation(self) -> int:
        """Bumped whenever the available set shrinks (partition cache key)."""
        return self._avail_gen

    def _deactivate(self, index: int) -> None:
        if self._active[index]:
            self._active[index] = False
            self._n_active -= 1
            self._avail_gen += 1
            self._avail_idx = None

    def _answerable(self, index: int) -> bool:
        """Whether the member can still *answer* (quarantine ignored —
        a quarantined member's in-flight answer may still land)."""
        if index in self._departed:
            return False
        return self.patience is None or self._answered.get(index, 0) < self.patience

    def _consume_patience(self, index: int) -> None:
        if not self._answerable(index):
            raise CrowdExhaustedError(
                f"member {self._id(index)} has left after "
                f"{self._answered.get(index, 0)} questions"
            )
        self._answered[index] = self._answered.get(index, 0) + 1
        if not self._answerable(index):
            self._deactivate(index)

    def _member_rng(self, index: int) -> np.random.Generator:
        rng = self._member_rngs.get(index)
        if rng is None:
            rng = np.random.default_rng(int(self._member_seeds[index]))
            self._member_rngs[index] = rng
        return rng

    def _answer_rng(self, index: int) -> np.random.Generator:
        """The generator handed to the answer model for ``index``.

        When the model never draws, constructing (and caching) the
        member's generator is pure overhead — a shared inert generator
        is byte-identical because nothing is consumed, and the
        member's real stream still starts fresh if a drawing model or
        an open question needs it later.
        """
        if not self.answer_model.consumes_rng:
            return _INERT_RNG
        return self._member_rng(index)

    # -- quality control and faults -------------------------------------------

    def quarantine(self, member_id: str) -> None:
        """Stop routing questions to ``member_id`` (idempotent)."""
        index = self._index(member_id)
        self._quarantined.add(index)
        self._deactivate(index)

    def is_quarantined(self, member_id: str) -> bool:
        """True when the member is barred from routing."""
        return self._index(member_id) in self._quarantined

    @property
    def quarantined_members(self) -> set[str]:
        """Ids currently under quarantine (a copy)."""
        return {self._id(k) for k in self._quarantined}

    def crash(self, member_id: str) -> None:
        """The member abruptly leaves the session for good."""
        index = self._index(member_id)
        self._departed.add(index)
        self._deactivate(index)

    # -- scheduling -----------------------------------------------------------

    def next_member(self, exclude: Collection[str] = ()) -> str | None:
        """Round-robin over available members; same contract as
        :meth:`SimulatedCrowd.next_member`."""
        idx = self._avail_indices()
        m = idx.size
        if m == 0:
            raise CrowdExhaustedError("every crowd member has left the session")
        if exclude:
            positions: set[int] = set()
            for mid in exclude:
                try:
                    k = self._index(mid)
                except KeyError:
                    continue
                if self._active[k]:
                    # ``idx`` is sorted and id order equals index order,
                    # so searchsorted gives the availability-list position.
                    positions.add(int(np.searchsorted(idx, k)))
            free = m - len(positions)
            if free == 0:
                return None
            pos = self._rr_cursor % free
            for p in sorted(positions):
                if p <= pos:
                    pos += 1
            index = int(idx[pos])
        else:
            index = int(idx[self._rr_cursor % m])
        self._rr_cursor += 1
        return self._id(index)

    def partitions(self, shards: int) -> list["CrowdPartition"]:
        """Interleaved scheduling partitions (see ``SimulatedCrowd``)."""
        from repro.crowd.partition import CrowdPartition

        check_positive(shards, "shards")
        ids = self.member_ids
        return [CrowdPartition(self, ids[i::shards]) for i in range(shards)]

    # -- the question protocol ------------------------------------------------

    def _pool(self, index: int) -> dict:
        pool = self._pools.get(index)
        if pool is None:
            pool = self.open_policy.personal_rules(self._population.db_at(index))
            self._pools[index] = pool
            while len(self._pools) > POOL_CACHE:
                self._pools.popitem(last=False)
        else:
            self._pools.move_to_end(index)
        return pool

    def ask_closed(self, member_id: str, rule: Rule) -> ClosedAnswer:
        """Pose a closed question about ``rule`` to ``member_id``."""
        index = self._index(member_id)
        self._consume_patience(index)
        true_stats = self._population.rule_stats_at(index, rule)
        reported = self.answer_model.report_rule(
            rule, true_stats, self._answer_rng(index)
        )
        answer = ClosedAnswer(member_id, ClosedQuestion(rule), reported)
        self.stats.closed_questions += 1
        self.stats.per_member[member_id] += 1
        self.stats.unique_rules_asked.add(rule)
        return answer

    def ask_open(
        self,
        member_id: str,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> OpenAnswer:
        """Pose an open question to ``member_id``."""
        index = self._index(member_id)
        self._consume_patience(index)
        question = OpenQuestion(context or Itemset.empty())
        avoid = set(self._volunteered.get(index, ()))
        if exclude:
            avoid |= exclude
        pool = self._pool(index)
        choice = self.open_policy.choose(
            pool, question.context, avoid, self._member_rng(index)
        )
        if choice is None:
            answer = OpenAnswer(member_id, question, None, None)
        else:
            rule, true_stats = choice
            self._volunteered.setdefault(index, set()).add(rule)
            reported = self.answer_model.report_rule(
                rule, true_stats, self._member_rng(index)
            )
            answer = OpenAnswer(member_id, question, rule, reported)
        self.stats.open_questions += 1
        self.stats.per_member[member_id] += 1
        if answer.is_empty:
            self.stats.empty_open_answers += 1
        return answer

    # -- the asynchronous question protocol ------------------------------------

    def make_in_flight(
        self,
        answer,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
    ) -> InFlightAnswer:
        """Wrap a resolved answer in the async envelope (fresh token)."""
        self._tokens += 1
        return InFlightAnswer(
            answer=answer,
            issued_at=now,
            arrives_at=now + latency.sample(rng),
            token=self._tokens,
        )

    def ask_closed_async(
        self,
        member_id: str,
        rule: Rule,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
    ) -> InFlightAnswer:
        """Closed question with simulated-latency delivery."""
        answer = self.ask_closed(member_id, rule)
        return self.make_in_flight(answer, latency=latency, rng=rng, now=now)

    def ask_open_async(
        self,
        member_id: str,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> InFlightAnswer:
        """Open question with simulated-latency delivery."""
        answer = self.ask_open(member_id, exclude=exclude, context=context)
        return self.make_in_flight(answer, latency=latency, rng=rng, now=now)

    # -- batched answering ------------------------------------------------------

    def ask_closed_batch(
        self,
        member_ids: list[str],
        rules: list[Rule],
        rng: np.random.Generator,
    ) -> list[ClosedAnswer]:
        """Answer a whole window of closed questions in one model draw.

        True stats are still exact per member; the *reporting*
        distortion is sampled as one vectorized batch on ``rng``
        (the dispatcher's batch stream) instead of per-member
        generators — deterministic under its own seed, but a different
        stream than scalar asking. The sharded dispatcher only batches
        when more than one question is in flight.
        """
        indices = [self._index(mid) for mid in member_ids]
        for index in indices:
            self._consume_patience(index)
        true = np.empty((len(indices), 2), dtype=float)
        for i, (index, rule) in enumerate(zip(indices, rules)):
            stats = self._population.rule_stats_at(index, rule)
            true[i, 0] = stats.support
            true[i, 1] = stats.confidence
        reported = self.answer_model.report_batch(rules, true, rng)
        answers = []
        for i, (member_id, rule) in enumerate(zip(member_ids, rules)):
            answers.append(
                ClosedAnswer(
                    member_id,
                    ClosedQuestion(rule),
                    RuleStats(float(reported[i, 0]), float(reported[i, 1])),
                )
            )
            self.stats.closed_questions += 1
            self.stats.per_member[member_id] += 1
            self.stats.unique_rules_asked.add(rule)
        return answers

    # -- pickling: sparse state only --------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "population": self._population,  # pickles as its recipe
            "answer_model": self.answer_model,
            "open_policy": self.open_policy,
            "patience": self.patience,
            "pre_state": self._pre_state,
            "rng_state": self._rng.bit_generator.state,
            "stats": self.stats,
            "tokens": self._tokens,
            "rr_cursor": self._rr_cursor,
            "answered": self._answered,
            "member_rngs": self._member_rngs,
            "volunteered": self._volunteered,
            "departed": sorted(self._departed),
            "quarantined": sorted(self._quarantined),
        }

    def __setstate__(self, state: dict) -> None:
        self._population = state["population"]
        self.answer_model = state["answer_model"]
        self.open_policy = state["open_policy"]
        self.patience = state["patience"]
        self._pre_state = state["pre_state"]
        seed_rng = _generator_from_state(self._pre_state)
        self._member_seeds = seed_rng.integers(2**63, size=len(self._population))
        self._rng = _generator_from_state(state["rng_state"])
        self.stats = state["stats"]
        self._tokens = state["tokens"]
        self._rr_cursor = state["rr_cursor"]
        self._answered = state["answered"]
        self._member_rngs = state["member_rngs"]
        self._volunteered = state["volunteered"]
        self._departed = set(state["departed"])
        self._quarantined = set(state["quarantined"])
        self._init_runtime()

    def __repr__(self) -> str:
        return f"ArrayCrowd({len(self)} members, {self._n_active} available)"
