"""Simulated crowd members.

A :class:`SimulatedMember` is the answering side of the protocol: it
owns (a handle to) one materialized personal database, an answer model
(how perception distorts the truth), an open-answer policy (what it
volunteers), and a patience budget (how many questions it will answer
before dropping out — the paper's multi-user algorithm explicitly
tolerates members leaving at any point).

The member computes *true* stats from its database, then filters them
through the answer model. This keeps all distortion in one composable
place and guarantees that two members with identical databases and
models are statistically interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB
from repro.crowd.answer_models import AnswerModel, ExactAnswerModel
from repro.crowd.open_behavior import OpenAnswerPolicy, PersonalRuleCache
from repro.crowd.questions import ClosedAnswer, ClosedQuestion, OpenAnswer, OpenQuestion
from repro.errors import CrowdExhaustedError


@dataclass(slots=True)
class SimulatedMember:
    """One simulated crowd member.

    Parameters
    ----------
    member_id:
        Stable identifier (matches the population's member id).
    db:
        The member's materialized personal database — the simulation's
        stand-in for their memory. The member only ever *reads* it.
    answer_model:
        Perception/reporting distortion applied to every answer.
    open_policy:
        How the member picks rules for open questions.
    patience:
        Maximum number of questions the member answers before dropping
        out (``None`` = unbounded). Asking past patience raises
        :class:`~repro.errors.CrowdExhaustedError`.
    seed:
        Member-local randomness (noise draws, open-answer sampling).
    """

    member_id: str
    db: TransactionDB
    answer_model: AnswerModel = field(default_factory=ExactAnswerModel)
    open_policy: OpenAnswerPolicy = field(default_factory=OpenAnswerPolicy)
    patience: int | None = None
    seed: int | np.random.Generator | None = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _cache: PersonalRuleCache = field(init=False, repr=False)
    _questions_answered: int = field(init=False, default=0)
    _volunteered: set[Rule] = field(init=False, default_factory=set)
    _departed: bool = field(init=False, default=False)
    #: Optional observer fired once when the member stops being
    #: available (patience exhausted or externally-driven departure).
    #: The crowd uses it to keep its availability index in sync without
    #: rescanning every member.
    on_unavailable: object = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self._rng = as_rng(self.seed)
        self._cache = PersonalRuleCache(self.open_policy)

    # -- state ---------------------------------------------------------------

    @property
    def questions_answered(self) -> int:
        """How many questions this member has answered so far."""
        return self._questions_answered

    @property
    def is_available(self) -> bool:
        """False once the member's patience is spent or they departed."""
        if self._departed:
            return False
        return self.patience is None or self._questions_answered < self.patience

    def leave(self) -> None:
        """The member walks away for good (crash, churn wave).

        Unlike patience exhaustion this is externally driven — the
        fault injector uses it to simulate mid-session departures. A
        departed member never answers again.
        """
        was_available = self.is_available
        self._departed = True
        if was_available and self.on_unavailable is not None:
            self.on_unavailable(self.member_id)

    def _consume_patience(self) -> None:
        if not self.is_available:
            raise CrowdExhaustedError(
                f"member {self.member_id} has left after "
                f"{self._questions_answered} questions"
            )
        self._questions_answered += 1
        if not self.is_available and self.on_unavailable is not None:
            self.on_unavailable(self.member_id)

    # -- answering ---------------------------------------------------------------

    def answer_closed(self, question: ClosedQuestion) -> ClosedAnswer:
        """Answer "how often do you ...?" about one rule."""
        self._consume_patience()
        true_stats = self.db.rule_stats(question.rule)
        reported = self.answer_model.report_rule(question.rule, true_stats, self._rng)
        return ClosedAnswer(self.member_id, question, reported)

    def answer_open(
        self, question: OpenQuestion, exclude: set[Rule] | None = None
    ) -> OpenAnswer:
        """Answer "tell us a habit", avoiding rules in ``exclude``.

        The member also avoids repeating rules it already volunteered
        itself (people do not tell the same anecdote twice in a
        session). The numeric part of the answer goes through the same
        answer model as closed questions.
        """
        self._consume_patience()
        avoid = set(self._volunteered)
        if exclude:
            avoid |= exclude
        pool = self._cache.pool_for(self.db)
        choice = self.open_policy.choose(pool, question.context, avoid, self._rng)
        if choice is None:
            return OpenAnswer(self.member_id, question, None, None)
        rule, true_stats = choice
        self._volunteered.add(rule)
        reported = self.answer_model.report_rule(rule, true_stats, self._rng)
        return OpenAnswer(self.member_id, question, rule, reported)
