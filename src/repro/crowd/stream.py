"""Stream-driven crowd members: answers from a text protocol.

The simulation answers questions from materialized personal databases;
a *deployed* system gets answers from people. :class:`StreamMember`
bridges the two: it reads answers from any line-oriented text stream
(stdin for a live console session, a file for scripted replays, a
socket for a real front-end) using a small, human-writable protocol,
and presents the exact same member interface as the simulator.

Protocol (one line per answer):

- closed question → a frequency word (``never``, ``rarely``,
  ``sometimes``, ``often``, ``very often``) or two numbers
  ``support confidence``;
- open question → ``pass`` (nothing to report) or
  ``a, b -> c ; <frequency word or numbers>``.

Lines may carry a ``closed:`` or ``open:`` tag. Tagged lines are held
until a question of that kind arrives, so a script does not need to
predict the miner's interleaving of question types — it just provides
a pool of open answers and a pool of closed answers, each consumed in
order. Untagged lines answer whichever question comes next.

Blank lines and lines starting with ``#`` are skipped, so answer files
can be commented. A stream that runs out behaves like a member whose
patience ran out.
"""

from __future__ import annotations

import io
from collections.abc import Iterator

from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.crowd.nl import LIKERT_LABELS, QuestionRenderer
from repro.crowd.questions import (
    ClosedAnswer,
    ClosedQuestion,
    MalformedAnswer,
    OpenAnswer,
    OpenQuestion,
)
from repro.errors import CrowdExhaustedError, InvalidRuleError

#: Reverse mapping: frequency word → support value.
WORD_TO_VALUE = {word: value for value, word in LIKERT_LABELS.items()}


def parse_stats(text: str) -> RuleStats:
    """Parse a stats fragment: a frequency word or ``support confidence``.

    >>> parse_stats("often")
    RuleStats(support=0.75, confidence=0.75)
    >>> parse_stats("0.2 0.6").confidence
    0.6
    """
    text = text.strip().lower()
    if text in WORD_TO_VALUE:
        value = WORD_TO_VALUE[text]
        return RuleStats(value, value)
    parts = text.split()
    if len(parts) == 2:
        try:
            support, confidence = float(parts[0]), float(parts[1])
        except ValueError:
            raise ValueError(f"cannot parse stats from {text!r}") from None
        if not (0.0 <= support <= 1.0 and 0.0 <= confidence <= 1.0):
            # Covers NaN too (every comparison with NaN is false).
            # Checked here so malformed input surfaces as ValueError —
            # the one exception this protocol layer is allowed to raise
            # — rather than leaking RuleStats' internal validation.
            raise ValueError(
                f"stats out of range in {text!r}: both numbers must be in [0, 1]"
            )
        if confidence < support:
            # supp(A∪B) ≤ supp(A) forces confidence ≥ support; a line
            # violating that is a typo to surface, not noise to absorb.
            raise ValueError(
                f"incoherent stats {text!r}: confidence ({confidence}) cannot "
                f"be below support ({support}) — no personal database "
                f"produces such a pair"
            )
        return RuleStats(support, confidence)
    raise ValueError(
        f"cannot parse stats from {text!r}; expected a frequency word "
        f"({', '.join(WORD_TO_VALUE)}) or two numbers"
    )


def parse_open_answer(text: str) -> tuple[Rule, RuleStats] | None:
    """Parse an open-answer line: ``pass`` or ``rule ; stats``.

    >>> parse_open_answer("pass") is None
    True
    >>> rule, stats = parse_open_answer("cough -> tea ; often")
    >>> str(rule)
    '{cough} -> {tea}'
    """
    text = text.strip()
    if text.lower() in ("pass", "none", "skip"):
        return None
    if ";" not in text:
        raise ValueError(
            f"open answer must be 'pass' or '<rule> ; <stats>', got {text!r}"
        )
    rule_part, _, stats_part = text.partition(";")
    try:
        rule = Rule.parse(rule_part)
    except InvalidRuleError as exc:
        raise ValueError(f"bad rule in open answer {text!r}: {exc}") from None
    return rule, parse_stats(stats_part)


class StreamMember:
    """A crowd member whose answers arrive on a text stream.

    Parameters
    ----------
    member_id:
        The member's identifier.
    stream:
        Any iterable of lines (an open file, ``sys.stdin``, a list).
    renderer:
        Optional :class:`~repro.crowd.nl.QuestionRenderer`; when given
        (plus ``echo``), each question is printed before reading the
        answer — the live-console mode.
    echo:
        File-like to print rendered questions to (e.g. ``sys.stdout``).
    """

    def __init__(
        self,
        member_id: str,
        stream,
        renderer: QuestionRenderer | None = None,
        echo: io.TextIOBase | None = None,
    ) -> None:
        self.member_id = member_id
        self._lines: Iterator[str] = iter(stream)
        self.renderer = renderer
        self.echo = echo
        self._exhausted = False
        self._questions_answered = 0
        #: Tagged lines waiting for a question of their kind.
        self._pending: dict[str, list[str]] = {"closed": [], "open": []}

    # -- member protocol -----------------------------------------------------

    @property
    def questions_answered(self) -> int:
        """How many questions this member has answered."""
        return self._questions_answered

    @property
    def is_available(self) -> bool:
        """False once the stream has run dry."""
        return not self._exhausted

    def leave(self) -> None:
        """Disconnect the member: no further lines will be read."""
        self._exhausted = True

    def _next_payload(self, kind: str) -> str:
        """The next answer line usable for a ``kind`` question.

        Serves queued lines tagged for this kind first; otherwise reads
        the stream, queueing mismatched tagged lines for later.
        """
        if self._pending[kind]:
            return self._pending[kind].pop(0)
        for line in self._lines:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            lowered = stripped.lower()
            for tag in ("closed", "open"):
                prefix = f"{tag}:"
                if lowered.startswith(prefix):
                    payload = stripped[len(prefix):].strip()
                    if tag == kind:
                        return payload
                    self._pending[tag].append(payload)
                    break
            else:
                return stripped  # untagged: answers any question
        self._exhausted = True
        raise CrowdExhaustedError(
            f"answer stream for member {self.member_id} is exhausted"
        )

    def _show(self, text: str) -> None:
        if self.echo is not None:
            print(text, file=self.echo)

    def answer_closed(
        self, question: ClosedQuestion
    ) -> ClosedAnswer | MalformedAnswer:
        """Read one closed answer from the stream.

        A line that does not parse (garbage text, incoherent stats)
        comes back as a :class:`~repro.crowd.questions.MalformedAnswer`
        instead of raising: one bad line from one member must never
        kill the whole session. The miner's validation gate counts and
        drops it.
        """
        if self.renderer is not None:
            self._show(self.renderer.render_closed(question))
            self._show(f"  [{self.renderer.render_likert_scale()}]")
        payload = self._next_payload("closed")
        self._questions_answered += 1
        try:
            stats = parse_stats(payload)
        except ValueError as exc:
            return MalformedAnswer(self.member_id, question, payload, str(exc))
        return ClosedAnswer(self.member_id, question, stats)

    def answer_open(
        self, question: OpenQuestion, exclude: set[Rule] | None = None
    ) -> OpenAnswer | MalformedAnswer:
        """Read one open answer from the stream.

        A volunteered rule that the asker already knows (in
        ``exclude``) is treated as "nothing new" — the paper's
        redundancy handling, minus the UI round-trip. Unparseable
        lines become :class:`~repro.crowd.questions.MalformedAnswer`,
        same contract as :meth:`answer_closed`.
        """
        if self.renderer is not None:
            self._show(self.renderer.render_open(question))
        payload = self._next_payload("open")
        self._questions_answered += 1
        try:
            parsed = parse_open_answer(payload)
        except ValueError as exc:
            return MalformedAnswer(self.member_id, question, payload, str(exc))
        if parsed is None:
            return OpenAnswer(self.member_id, question, None, None)
        rule, stats = parsed
        if exclude and rule in exclude:
            return OpenAnswer(self.member_id, question, None, None)
        return OpenAnswer(self.member_id, question, rule, stats)
