"""The crowd interface: the only door between miner and members.

:class:`SimulatedCrowd` enforces the paper's central abstraction —
personal databases are *virtual*. The mining algorithm holds a
``SimulatedCrowd`` and may only:

- ask who is currently available,
- pose a closed or open question to a member,
- observe the answers.

Everything else (databases, latent profiles) is deliberately
unreachable from here. The crowd also keeps the session's interaction
statistics — total questions, per-member counts, unique rules asked —
which are exactly the cost measures the paper's evaluation reports.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Collection, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro._util import as_rng, check_positive
from repro.core.itemset import Itemset
from repro.core.rule import Rule
from repro.crowd.answer_models import AnswerModel, ExactAnswerModel
from repro.crowd.member import SimulatedMember
from repro.crowd.open_behavior import OpenAnswerPolicy
from repro.crowd.questions import (
    ClosedAnswer,
    ClosedQuestion,
    InFlightAnswer,
    OpenAnswer,
    OpenQuestion,
)
from repro.errors import CrowdExhaustedError
from repro.synth.population import Population

if TYPE_CHECKING:  # avoids a circular import: repro.dispatch builds on the miner
    from repro.crowd.partition import CrowdPartition
    from repro.dispatch.latency import LatencyModel


@dataclass(slots=True)
class CrowdStats:
    """Interaction counters for one mining session."""

    closed_questions: int = 0
    open_questions: int = 0
    empty_open_answers: int = 0
    per_member: Counter = field(default_factory=Counter)
    unique_rules_asked: set[Rule] = field(default_factory=set)

    @property
    def total_questions(self) -> int:
        """All questions posed, of both types."""
        return self.closed_questions + self.open_questions


class SimulatedCrowd:
    """A pool of simulated members behind the question protocol.

    Parameters
    ----------
    members:
        The simulated members.
    seed:
        Randomness for member scheduling.

    Use :meth:`from_population` to assemble a crowd from a synthetic
    :class:`~repro.synth.population.Population` with uniform member
    behaviour (the standard experimental setup).
    """

    def __init__(
        self,
        members: Sequence[SimulatedMember],
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not members:
            raise CrowdExhaustedError("a crowd needs at least one member")
        ids = [m.member_id for m in members]
        if len(set(ids)) != len(ids):
            raise ValueError("member ids must be unique")
        self._members: dict[str, SimulatedMember] = {m.member_id: m for m in members}
        self._order: list[str] = list(ids)
        self._rr_cursor = 0
        self._rng = as_rng(seed)
        self.stats = CrowdStats()
        #: Members the quality-control layer has barred from routing.
        self._quarantined: set[str] = set()
        #: Monotonic delivery-token counter for in-flight answers.
        self._tokens = 0
        # Incremental availability index. Members announce their own
        # departure through the ``on_unavailable`` hook, so scheduling
        # never rescans the whole crowd. Member types without the hook
        # (e.g. interactive stream members) force the legacy full-scan
        # path — correct for any duck-typed member, just O(n).
        self._hooked = all(isinstance(m, SimulatedMember) for m in members)
        self._avail: dict[str, None] = {}
        self._avail_gen = 0
        self._avail_list: list[str] | None = None
        self._avail_pos: dict[str, int] | None = None
        if self._hooked:
            for m in members:
                m.on_unavailable = self._member_left
            self._avail = {m.member_id: None for m in members if m.is_available}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_population(
        cls,
        population: Population,
        answer_model: AnswerModel | None = None,
        answer_model_factory: Callable[[int], AnswerModel] | None = None,
        open_policy: OpenAnswerPolicy | None = None,
        patience: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "SimulatedCrowd":
        """Wrap a synthetic population as an answerable crowd.

        ``answer_model`` applies one shared model to everyone;
        ``answer_model_factory`` (index → model) supports heterogeneous
        crowds, e.g. injecting spammers. Exactly one may be given.
        """
        if answer_model is not None and answer_model_factory is not None:
            raise ValueError("pass answer_model or answer_model_factory, not both")
        rng = as_rng(seed)
        open_policy = open_policy or OpenAnswerPolicy()
        members = []
        for k, pop_member in enumerate(population):
            if answer_model_factory is not None:
                model = answer_model_factory(k)
            else:
                model = answer_model or ExactAnswerModel()
            members.append(
                SimulatedMember(
                    member_id=pop_member.member_id,
                    db=pop_member.db,
                    answer_model=model,
                    open_policy=open_policy,
                    patience=patience,
                    seed=rng.integers(2**63),
                )
            )
        return cls(members, seed=rng)

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    @property
    def member_ids(self) -> list[str]:
        """All member ids, in arrival order."""
        return list(self._order)

    def available_members(self) -> list[str]:
        """Ids of members still willing to answer (and not quarantined)."""
        if self._hooked:
            # The dict was seeded in crowd order and only ever shrinks,
            # so its key order equals the legacy filtered scan.
            return list(self._avail)
        return [
            mid
            for mid in self._order
            if mid not in self._quarantined and self._members[mid].is_available
        ]

    def available_count(self) -> int:
        """How many members are still willing to answer — O(1) when indexed."""
        if self._hooked:
            return len(self._avail)
        return len(self.available_members())

    def is_member_available(self, member_id: str) -> bool:
        """True when ``member_id`` may still be routed a question."""
        if self._hooked:
            return member_id in self._avail
        return (
            member_id not in self._quarantined
            and self._members[member_id].is_available
        )

    @property
    def availability_generation(self) -> int:
        """Bumped whenever the available set shrinks; -1 = not tracked.

        Crowd partitions key their cached candidate lists on this, so
        a negative value (legacy scan path) disables caching.
        """
        return self._avail_gen if self._hooked else -1

    def _member_left(self, member_id: str) -> None:
        """Availability hook: drop a departed member from the index."""
        if member_id in self._avail:
            del self._avail[member_id]
            self._avail_gen += 1
            self._avail_list = None
            self._avail_pos = None

    def _refresh_avail(self) -> None:
        self._avail_list = list(self._avail)
        self._avail_pos = {mid: i for i, mid in enumerate(self._avail_list)}

    # -- quality control and faults -------------------------------------------

    def quarantine(self, member_id: str) -> None:
        """Stop routing questions to ``member_id``.

        The member is still *in* the crowd (their id resolves, pending
        in-flight answers can still land and be rejected upstream) but
        the scheduler will never pick them again. Idempotent.
        """
        if member_id not in self._members:
            raise KeyError(f"unknown member {member_id!r}")
        self._quarantined.add(member_id)
        if self._hooked:
            self._member_left(member_id)

    def is_quarantined(self, member_id: str) -> bool:
        """True when the member is barred from routing."""
        return member_id in self._quarantined

    @property
    def quarantined_members(self) -> set[str]:
        """Ids currently under quarantine (a copy)."""
        return set(self._quarantined)

    def crash(self, member_id: str) -> None:
        """The member abruptly leaves the session for good.

        Used by the fault injector for mid-flight crashes and churn
        waves; the member's pending answer (if any) is the dispatcher's
        problem, this only removes them from future scheduling.
        """
        member = self._members[member_id]
        leave = getattr(member, "leave", None)
        if leave is None:
            raise TypeError(
                f"member {member_id!r} ({type(member).__name__}) cannot leave"
            )
        leave()

    def next_member(self, exclude: Collection[str] = ()) -> str | None:
        """Round-robin scheduling over available members.

        Mirrors the multi-user setting: members take turns being
        "active in the system" and the miner serves whoever is next.
        Raises :class:`~repro.errors.CrowdExhaustedError` when everyone
        has left.

        ``exclude`` skips members without ending their turn rotation —
        the dispatcher passes the set of members already holding an
        in-flight question. When every available member is excluded the
        answer is ``None`` ("nobody free right now"), distinct from the
        everyone-left exhaustion above; with an empty ``exclude`` the
        return value is never ``None``.
        """
        if not self._hooked:
            return self._next_member_scan(exclude)
        m = len(self._avail)
        if m == 0:
            raise CrowdExhaustedError("every crowd member has left the session")
        if self._avail_list is None:
            self._refresh_avail()
        assert self._avail_list is not None and self._avail_pos is not None
        if exclude:
            positions = {self._avail_pos.get(mid) for mid in exclude}
            positions.discard(None)
            free = m - len(positions)
            if free == 0:
                return None
            # ``candidates[cursor % free]`` of the legacy path, without
            # materializing the candidate list: map the index into the
            # full availability list, skipping excluded positions.
            pos = self._rr_cursor % free
            for p in sorted(positions):  # type: ignore[type-var]
                if p <= pos:
                    pos += 1
            member_id = self._avail_list[pos]
        else:
            member_id = self._avail_list[self._rr_cursor % m]
        self._rr_cursor += 1
        return member_id

    def _next_member_scan(self, exclude: Collection[str] = ()) -> str | None:
        """Legacy full-scan scheduling for crowds with hookless members."""
        available = self.available_members()
        if not available:
            raise CrowdExhaustedError("every crowd member has left the session")
        if exclude:
            candidates = [mid for mid in available if mid not in exclude]
            if not candidates:
                return None
        else:
            candidates = available
        member_id = candidates[self._rr_cursor % len(candidates)]
        self._rr_cursor += 1
        return member_id

    def partitions(self, shards: int) -> list["CrowdPartition"]:
        """Split the crowd into ``shards`` interleaved scheduling views.

        Partition ``i`` owns crowd positions ``i::shards``; together
        the partitions cover every member exactly once. Used by the
        sharded dispatcher — each shard schedules only over its own
        partition while answers merge into one ingest stream.
        """
        from repro.crowd.partition import CrowdPartition

        check_positive(shards, "shards")
        return [
            CrowdPartition(self, self._order[i::shards]) for i in range(shards)
        ]

    # -- the question protocol ----------------------------------------------------

    def ask_closed(self, member_id: str, rule: Rule) -> ClosedAnswer:
        """Pose a closed question about ``rule`` to ``member_id``."""
        member = self._members[member_id]
        answer = member.answer_closed(ClosedQuestion(rule))
        self.stats.closed_questions += 1
        self.stats.per_member[member_id] += 1
        self.stats.unique_rules_asked.add(rule)
        return answer

    def ask_open(
        self,
        member_id: str,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> OpenAnswer:
        """Pose an open question to ``member_id``.

        ``exclude`` tells the member which rules the system already
        knows (so their answer adds information); ``context`` narrows
        the request to habits in a given situation.
        """
        member = self._members[member_id]
        question = OpenQuestion(context or Itemset.empty())
        answer = member.answer_open(question, exclude=exclude)
        self.stats.open_questions += 1
        self.stats.per_member[member_id] += 1
        if isinstance(answer, OpenAnswer) and answer.is_empty:
            self.stats.empty_open_answers += 1
        return answer

    # -- the asynchronous question protocol ---------------------------------------

    def ask_closed_async(
        self,
        member_id: str,
        rule: Rule,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
    ) -> InFlightAnswer:
        """Pose a closed question whose answer lands after simulated latency.

        The reply's *content* is resolved immediately (what a member
        would say does not depend on when the dispatcher reads it);
        only its visibility is delayed, by a draw from ``latency`` on
        the caller's ``rng``. ``now`` is the event clock's current
        time. An infinite draw means the answer is lost in flight.
        """
        answer = self.ask_closed(member_id, rule)
        self._tokens += 1
        return InFlightAnswer(
            answer=answer,
            issued_at=now,
            arrives_at=now + latency.sample(rng),
            token=self._tokens,
        )

    def ask_open_async(
        self,
        member_id: str,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> InFlightAnswer:
        """Pose an open question whose answer lands after simulated latency.

        Same contract as :meth:`ask_closed_async`; ``exclude`` and
        ``context`` are snapshotted at issue time, exactly as a real
        question form would be rendered once and sent.
        """
        answer = self.ask_open(member_id, exclude=exclude, context=context)
        self._tokens += 1
        return InFlightAnswer(
            answer=answer,
            issued_at=now,
            arrives_at=now + latency.sample(rng),
            token=self._tokens,
        )
