"""Answer models: how a member's true stats become a reported answer.

People do not read numbers out of their heads. Following the paper's
discussion (and its citation of Bradburn et al.'s survey-methodology
work on autobiographical memory), a member's report of "how often" is
an imprecise function of the truth. An :class:`AnswerModel` is that
function: it maps the exact :class:`~repro.core.measures.RuleStats`
computed from the member's materialized personal database to the stats
the member actually reports.

Models compose (noise, then coarsening, is the realistic pipeline) and
every model preserves the structural invariant ``support ≤ confidence``
so that downstream estimators never see an impossible answer — crowd
members may be vague, but they are not incoherent about conditionals.
The deliberately incoherent :class:`SpammerAnswerModel` exists to test
aggregation robustness, and does *not* preserve anything.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._util import check_nonnegative, clamp01
from repro.core.measures import RuleStats

#: The five-point frequency vocabulary of the papers' crowd UI
#: ("never", "rarely", "sometimes", "often", "very often").
LIKERT5 = (0.0, 0.25, 0.5, 0.75, 1.0)


def coherent_stats(support: float, confidence: float) -> RuleStats:
    """Clamp to [0,1] and restore ``support ≤ confidence``.

    The repair every answer model applies before reporting: whatever
    distortion happened, the reported pair must still be one some
    personal database could produce. Exposed publicly so adversarial
    models (:mod:`repro.faults.adversaries`) fabricate *representable*
    lies — the interesting attacks are the ones the type system cannot
    reject.
    """
    support = clamp01(support)
    confidence = clamp01(confidence)
    if support > confidence:
        confidence = support
    return RuleStats(support, confidence)


#: Backwards-compatible private alias (the models below predate the
#: public name).
_coherent = coherent_stats


def coherent_stats_batch(reported: np.ndarray) -> np.ndarray:
    """Vectorized :func:`coherent_stats` over a ``(B, 2)`` array.

    Column 0 is support, column 1 confidence. Returns a new array with
    both clamped to [0, 1] and confidence lifted to at least support.
    """
    out = np.clip(reported, 0.0, 1.0)
    out[:, 1] = np.maximum(out[:, 0], out[:, 1])
    return out


class AnswerModel:
    """Base class: the identity (perfectly accurate) answerer."""

    #: Whether :meth:`report` ever draws from the generator. Models
    #: that never do set this ``False`` so callers can skip per-member
    #: generator construction entirely (the answer streams are
    #: byte-identical either way — nothing is consumed).
    consumes_rng: bool = True

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        """Turn true ``stats`` into reported stats. Base class: identity."""
        return stats

    def report_rule(
        self, rule, stats: RuleStats, rng: np.random.Generator
    ) -> RuleStats:
        """Like :meth:`report`, but told *which* rule is being asked about.

        Honest models do not care what the rule is — only its true
        stats matter — so the default delegates to :meth:`report`.
        Rule-aware models (colluding spammers fabricating a shared
        per-rule profile) override this; the member layer always calls
        through here.
        """
        return self.report(stats, rng)

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Report a whole batch of answers in one call.

        ``stats`` is a ``(B, 2)`` array of true (support, confidence)
        rows, one per entry of ``rules``; the result has the same
        shape. The base implementation loops over :meth:`report_rule`
        — correct for any model, including rule-aware adversaries —
        while honest models override it with one vectorized draw.

        Batch draws consume the generator differently from B scalar
        calls, so a batched session is deterministic under its own seed
        but not byte-identical to the scalar path; the dispatcher only
        batches when more than one question is in flight (where scalar
        equivalence is not promised anyway).
        """
        out = np.empty_like(stats, dtype=float)
        for i, rule in enumerate(rules):
            reported = self.report_rule(
                rule, RuleStats(float(stats[i, 0]), float(stats[i, 1])), rng
            )
            out[i, 0] = reported.support
            out[i, 1] = reported.confidence
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ExactAnswerModel(AnswerModel):
    """Perfect recall: reports the exact truth. Alias of the base class."""

    consumes_rng = False

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.array(stats, dtype=float, copy=True)


class NoisyAnswerModel(AnswerModel):
    """Additive Gaussian perception noise on both components.

    ``sigma`` is the standard deviation of the noise added
    independently to support and confidence before re-coherence. This
    is the σ swept by experiment E3.
    """

    def __init__(self, sigma: float) -> None:
        self.sigma = check_nonnegative(sigma, "sigma")
        self.consumes_rng = self.sigma > 0.0

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        if self.sigma == 0.0:
            return stats
        support = stats.support + rng.normal(0.0, self.sigma)
        confidence = stats.confidence + rng.normal(0.0, self.sigma)
        return _coherent(support, confidence)

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.sigma == 0.0:
            return np.array(stats, dtype=float, copy=True)
        noisy = stats + rng.normal(0.0, self.sigma, size=stats.shape)
        return coherent_stats_batch(noisy)

    def __repr__(self) -> str:
        return f"NoisyAnswerModel(sigma={self.sigma})"


class LikertAnswerModel(AnswerModel):
    """Coarsening to a fixed frequency vocabulary.

    Members answer by picking the closest of a few labelled
    frequencies ("never" … "very often"), as in the papers' UI; the
    grid defaults to :data:`LIKERT5`.
    """

    consumes_rng = False

    def __init__(self, grid: Sequence[float] = LIKERT5) -> None:
        if len(grid) < 2:
            raise ValueError("a Likert grid needs at least two levels")
        self.grid = np.array(sorted(clamp01(g) for g in grid))

    def _snap(self, value: float) -> float:
        return float(self.grid[np.argmin(np.abs(self.grid - value))])

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        return _coherent(self._snap(stats.support), self._snap(stats.confidence))

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # argmin over the grid axis matches the scalar ``_snap`` exactly
        # (ties break toward the lower grid index in both).
        idx = np.argmin(np.abs(stats[..., None] - self.grid), axis=-1)
        return coherent_stats_batch(self.grid[idx])

    def __repr__(self) -> str:
        return f"LikertAnswerModel(grid={self.grid.tolist()})"


class ForgetfulAnswerModel(AnswerModel):
    """Systematic under-reporting of frequency (imperfect recall).

    Support is multiplied by a Beta-distributed recall factor with mean
    ``recall``; confidence is left alone (people remember *what* they
    do given the situation better than *how often* the situation
    arose). ``concentration`` controls the spread of the recall factor.
    """

    def __init__(self, recall: float = 0.9, concentration: float = 20.0) -> None:
        if not 0.0 < recall <= 1.0:
            raise ValueError(f"recall must be in (0, 1], got {recall}")
        self.recall = float(recall)
        self.concentration = check_nonnegative(concentration, "concentration")
        self.consumes_rng = self.recall < 1.0

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        if self.recall == 1.0:
            return stats
        alpha = self.recall * self.concentration
        beta = (1.0 - self.recall) * self.concentration
        factor = float(rng.beta(max(alpha, 1e-9), max(beta, 1e-9)))
        return _coherent(stats.support * factor, stats.confidence)

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.recall == 1.0:
            return np.array(stats, dtype=float, copy=True)
        alpha = self.recall * self.concentration
        beta = (1.0 - self.recall) * self.concentration
        factors = rng.beta(max(alpha, 1e-9), max(beta, 1e-9), size=len(stats))
        out = np.array(stats, dtype=float, copy=True)
        out[:, 0] = out[:, 0] * factors
        return coherent_stats_batch(out)

    def __repr__(self) -> str:
        return f"ForgetfulAnswerModel(recall={self.recall})"


class SpammerAnswerModel(AnswerModel):
    """A worker who answers uniformly at random, ignoring the truth.

    Used for aggregation-robustness tests (trimmed means, consistency
    filtering). Intentionally does not enforce coherence beyond the
    representational requirement.
    """

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        a, b = sorted(rng.random(2))
        return RuleStats(float(a), float(b))

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.sort(rng.random((len(stats), 2)), axis=1)


class ComposedAnswerModel(AnswerModel):
    """Apply several models in sequence (e.g. forget → noise → Likert)."""

    def __init__(self, stages: Sequence[AnswerModel]) -> None:
        if not stages:
            raise ValueError("composition needs at least one stage")
        self.stages = tuple(stages)
        self.consumes_rng = any(stage.consumes_rng for stage in stages)

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        for stage in self.stages:
            stats = stage.report(stats, rng)
        return stats

    def report_rule(
        self, rule, stats: RuleStats, rng: np.random.Generator
    ) -> RuleStats:
        for stage in self.stages:
            stats = stage.report_rule(rule, stats, rng)
        return stats

    def report_batch(
        self, rules: Sequence, stats: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        out = np.array(stats, dtype=float, copy=True)
        for stage in self.stages:
            out = stage.report_batch(rules, out, rng)
        return out

    def __repr__(self) -> str:
        return f"ComposedAnswerModel({list(self.stages)!r})"


def standard_answer_model(sigma: float = 0.05, likert: bool = True) -> AnswerModel:
    """The default humanlike pipeline: noise, then Likert coarsening.

    Matches the experiments' default member: imprecise perception
    (``sigma``) reported through the five-point vocabulary.
    """
    stages: list[AnswerModel] = [NoisyAnswerModel(sigma)]
    if likert:
        stages.append(LikertAnswerModel())
    return ComposedAnswerModel(stages) if len(stages) > 1 else stages[0]
