"""Open-question behaviour: which habit does a member volunteer?

When asked an open question, a person reports something *prominent* in
their own life — not a uniform sample of their personal database. The
paper models exactly this: open answers surface significant patterns
quickly because people spontaneously recall their frequent habits.

:class:`OpenAnswerPolicy` implements that behaviour against a
materialized personal database: mine the member's own rules once
(classic FP-Growth at *personal* thresholds, cached), score each rule
by prominence (support × confidence, optionally sharpened), and sample
proportionally — excluding rules the asker says it already knows, so
repeated open questions to the same member keep yielding new
information until the member's memory is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_fraction, check_nonnegative, weighted_choice
from repro.classic.rulegen import mine_rules
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB


@dataclass(slots=True)
class OpenAnswerPolicy:
    """Prominence-weighted sampling of a member's own rules.

    Parameters
    ----------
    personal_min_support / personal_min_confidence:
        Thresholds defining what counts as "a habit of mine" worth
        mentioning. These are *personal* significance levels — they are
        deliberately lower than typical query thresholds, since a
        member may mention habits the crowd overall does not share.
    max_body_size:
        People volunteer short patterns; cap the rule body size.
    sharpness:
        Exponent applied to prominence scores before sampling. 0 makes
        the member pick uniformly among their habits; large values make
        them always report their single most prominent habit.
    """

    personal_min_support: float = 0.05
    personal_min_confidence: float = 0.3
    max_body_size: int = 4
    sharpness: float = 2.0

    def __post_init__(self) -> None:
        check_fraction(self.personal_min_support, "personal_min_support")
        check_fraction(self.personal_min_confidence, "personal_min_confidence")
        check_nonnegative(self.sharpness, "sharpness")
        if self.max_body_size < 1:
            raise ValueError("max_body_size must be at least 1")

    def personal_rules(self, db: TransactionDB) -> dict[Rule, RuleStats]:
        """All rules the member could ever volunteer (their habit pool)."""
        if len(db) == 0:
            return {}
        return mine_rules(
            db,
            min_support=self.personal_min_support,
            min_confidence=self.personal_min_confidence,
            max_size=self.max_body_size,
        )

    def _prominence(self, stats: RuleStats) -> float:
        return (stats.support * stats.confidence) ** self.sharpness if self.sharpness else 1.0

    def choose(
        self,
        pool: dict[Rule, RuleStats],
        context: Itemset,
        exclude: set[Rule],
        rng: np.random.Generator,
    ) -> tuple[Rule, RuleStats] | None:
        """Pick a rule to volunteer, or ``None`` when memory is exhausted.

        ``context`` (possibly empty) must be contained in the
        antecedent of the volunteered rule; ``exclude`` removes rules
        the asker already knows about.
        """
        candidates = [
            (rule, stats)
            for rule, stats in pool.items()
            if rule not in exclude and context.issubset(rule.antecedent)
        ]
        if context:
            # For contextual questions we additionally require the rule
            # to say something beyond the context itself.
            candidates = [
                (rule, stats)
                for rule, stats in candidates
                if not rule.consequent.issubset(context)
            ]
        if not candidates:
            return None
        weights = [self._prominence(stats) for _, stats in candidates]
        return weighted_choice(rng, candidates, weights)


@dataclass(slots=True)
class PersonalRuleCache:
    """Per-member memoization of the open-answer rule pool.

    Mining a member's personal rules is the expensive part of open
    answers; it depends only on the database and the policy, so it is
    computed once per member and reused across every open question.
    """

    policy: OpenAnswerPolicy
    _pools: dict[int, dict[Rule, RuleStats]] = field(default_factory=dict)

    def __getstate__(self) -> dict:
        # Pools are memoized by database *identity*, and ids do not
        # survive pickling — a persisted pool could never be hit again.
        # Dropping them keeps session checkpoints small; the first open
        # answer after a restore re-mines the pool from the restored
        # database, deterministically.
        return {"policy": self.policy, "_pools": {}}

    def __setstate__(self, state: dict) -> None:
        self.policy = state["policy"]
        self._pools = {}

    def pool_for(self, db: TransactionDB) -> dict[Rule, RuleStats]:
        """The (cached) volunteerable-rule pool for ``db``."""
        key = id(db)
        pool = self._pools.get(key)
        if pool is None:
            pool = self.policy.personal_rules(db)
            self._pools[key] = pool
        return pool
