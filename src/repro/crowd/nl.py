"""Natural-language rendering of crowd questions.

The papers' crowdsourcing UI turns each internal question into an
English sentence via domain-specific templates ("How often do you
engage in **ball games** in **Central Park**?"), with a generic
fallback. This module reproduces that template layer: it is what a
front-end would show, and the examples use it to make transcripts
readable. No parsing happens here — answers come back structured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.items import ItemDomain
from repro.core.itemset import Itemset
from repro.crowd.questions import ClosedQuestion, OpenQuestion
from repro.crowd.answer_models import LIKERT5

#: Human labels for the five-point frequency vocabulary.
LIKERT_LABELS = {
    0.0: "never",
    0.25: "rarely",
    0.5: "sometimes",
    0.75: "often",
    1.0: "very often",
}


def _join(items: Itemset) -> str:
    names = list(items)
    if not names:
        return "anything"
    if len(names) == 1:
        return names[0]
    return ", ".join(names[:-1]) + " and " + names[-1]


@dataclass(slots=True)
class QuestionRenderer:
    """Template-based English rendering for one item domain.

    ``category_templates`` maps a (antecedent-category, consequent-
    category) pair to a template with ``{a}`` and ``{c}`` slots. When
    no template matches (mixed categories, unknown domain), the generic
    co-occurrence phrasing is used — the same degradation path the
    papers describe for hand-written template sets.
    """

    domain: ItemDomain
    category_templates: dict[tuple[str, str], str] = field(default_factory=dict)

    def _uniform_category(self, items: Itemset) -> str | None:
        cats = {self.domain.category_of(i) for i in items if i in self.domain}
        if len(cats) == 1:
            return next(iter(cats))
        return None

    def render_closed(self, question: ClosedQuestion) -> str:
        """One English sentence asking for the rule's frequency."""
        rule = question.rule
        if rule.is_itemset_rule:
            return f"How often does your day include {_join(rule.consequent)}?"
        a_cat = self._uniform_category(rule.antecedent)
        c_cat = self._uniform_category(rule.consequent)
        if a_cat is not None and c_cat is not None:
            template = self.category_templates.get((a_cat, c_cat))
            if template is not None:
                return template.format(
                    a=_join(rule.antecedent), c=_join(rule.consequent)
                )
        return (
            f"When your day includes {_join(rule.antecedent)}, "
            f"how often does it also include {_join(rule.consequent)}?"
        )

    def render_open(self, question: OpenQuestion) -> str:
        """One English sentence soliciting a volunteered habit."""
        if question.context:
            return (
                f"Think of occasions involving {_join(question.context)}: "
                f"what else do you typically do then, and how often?"
            )
        return "Tell us about something you typically do, and how often you do it."

    def render_likert_scale(self) -> str:
        """The answer options line shown beneath every question."""
        labels = [LIKERT_LABELS[v] for v in LIKERT5]
        return " / ".join(labels)


def folk_remedies_renderer(domain: ItemDomain) -> QuestionRenderer:
    """Templates for the folk-medicine domain."""
    return QuestionRenderer(
        domain,
        category_templates={
            ("symptom", "remedy"): (
                "When you have a {a}, how often do you use {c}?"
            ),
        },
    )


def travel_renderer(domain: ItemDomain) -> QuestionRenderer:
    """Templates for the travel domain."""
    return QuestionRenderer(
        domain,
        category_templates={
            ("place", "activity"): (
                "When you visit {a}, how often do you go for {c}?"
            ),
            ("place", "restaurant"): (
                "When you visit {a}, how often do you eat at {c}?"
            ),
        },
    )


def culinary_renderer(domain: ItemDomain) -> QuestionRenderer:
    """Templates for the culinary domain."""
    return QuestionRenderer(
        domain,
        category_templates={
            ("dish", "drink"): (
                "When you eat {a}, how often do you drink {c}?"
            ),
            ("dish", "dish"): (
                "When you eat {a}, how often do you also have {c}?"
            ),
        },
    )
