"""Scheduling views over a slice of a crowd.

A :class:`CrowdPartition` is what one shard of the sharded dispatcher
schedules against: a fixed, interleaved subset of the crowd's members
with its own round-robin cursor. Questions still go through the owning
crowd (statistics, tokens, and answer content are crowd-global); the
partition only decides *who in this shard answers next*.

The candidate list is cached and keyed on the crowd's availability
generation, so steady-state scheduling costs O(1) per pick instead of
rescanning the partition. Crowds that cannot track availability
incrementally report a negative generation, which disables the cache.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.errors import CrowdExhaustedError


class CrowdPartition:
    """One shard's scheduling view over ``member_ids`` of ``crowd``.

    The partition mirrors the crowd's scheduling protocol
    (:meth:`next_member`, :meth:`available_members`,
    :meth:`available_count`) restricted to its own members, with
    identical round-robin and exclusion semantics. A partition built
    over the full crowd order with a fresh cursor schedules exactly
    like the crowd itself — the shards=1 equivalence contract.
    """

    def __init__(self, crowd, member_ids: Sequence[str]) -> None:
        self.crowd = crowd
        self._ids: list[str] = list(member_ids)
        self._rr_cursor = 0
        self._cache_gen: int | None = None
        self._avail_list: list[str] | None = None
        self._avail_pos: dict[str, int] | None = None

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def member_ids(self) -> list[str]:
        """The partition's members, in crowd order (a copy)."""
        return list(self._ids)

    def _refresh(self) -> None:
        gen = self.crowd.availability_generation
        if gen >= 0 and gen == self._cache_gen and self._avail_list is not None:
            return
        self._avail_list = [
            mid for mid in self._ids if self.crowd.is_member_available(mid)
        ]
        self._avail_pos = {mid: i for i, mid in enumerate(self._avail_list)}
        self._cache_gen = gen if gen >= 0 else None

    def available_members(self) -> list[str]:
        """Available members of this partition, in crowd order."""
        self._refresh()
        assert self._avail_list is not None
        return list(self._avail_list)

    def available_count(self) -> int:
        """How many of this partition's members can still answer."""
        self._refresh()
        assert self._avail_list is not None
        return len(self._avail_list)

    def next_member(self, exclude: Collection[str] = ()) -> str | None:
        """Round-robin over the partition's available members.

        Same contract as ``SimulatedCrowd.next_member``: raises
        :class:`~repro.errors.CrowdExhaustedError` when the whole
        partition has left, returns ``None`` when everyone available is
        excluded (busy), and advances the cursor only on a pick.
        """
        self._refresh()
        assert self._avail_list is not None and self._avail_pos is not None
        m = len(self._avail_list)
        if m == 0:
            raise CrowdExhaustedError(
                "every member of this crowd partition has left the session"
            )
        if exclude:
            positions = {self._avail_pos.get(mid) for mid in exclude}
            positions.discard(None)
            free = m - len(positions)
            if free == 0:
                return None
            pos = self._rr_cursor % free
            for p in sorted(positions):  # type: ignore[type-var]
                if p <= pos:
                    pos += 1
            member_id = self._avail_list[pos]
        else:
            member_id = self._avail_list[self._rr_cursor % m]
        self._rr_cursor += 1
        return member_id
