"""Crowd simulation substrate.

The answering side of crowd mining: question/answer value objects,
human answer models, member behaviour, and the
:class:`~repro.crowd.crowd.SimulatedCrowd` facade that is the *only*
interface the mining algorithm may talk to.
"""

from repro.crowd.answer_models import (
    LIKERT5,
    AnswerModel,
    ComposedAnswerModel,
    ExactAnswerModel,
    ForgetfulAnswerModel,
    LikertAnswerModel,
    NoisyAnswerModel,
    SpammerAnswerModel,
    coherent_stats,
    standard_answer_model,
)
from repro.crowd.array_crowd import ArrayCrowd
from repro.crowd.crowd import CrowdStats, SimulatedCrowd
from repro.crowd.member import SimulatedMember
from repro.crowd.partition import CrowdPartition
from repro.crowd.nl import (
    LIKERT_LABELS,
    QuestionRenderer,
    culinary_renderer,
    folk_remedies_renderer,
    travel_renderer,
)
from repro.crowd.open_behavior import OpenAnswerPolicy, PersonalRuleCache
from repro.crowd.stream import (
    WORD_TO_VALUE,
    StreamMember,
    parse_open_answer,
    parse_stats,
)
from repro.crowd.questions import (
    Answer,
    AnyAnswer,
    ClosedAnswer,
    ClosedQuestion,
    InFlightAnswer,
    MalformedAnswer,
    OpenAnswer,
    OpenQuestion,
)

__all__ = [
    "Answer",
    "AnswerModel",
    "AnyAnswer",
    "ArrayCrowd",
    "ClosedAnswer",
    "ClosedQuestion",
    "ComposedAnswerModel",
    "CrowdPartition",
    "CrowdStats",
    "ExactAnswerModel",
    "ForgetfulAnswerModel",
    "InFlightAnswer",
    "LIKERT5",
    "LIKERT_LABELS",
    "LikertAnswerModel",
    "MalformedAnswer",
    "NoisyAnswerModel",
    "OpenAnswer",
    "OpenAnswerPolicy",
    "OpenQuestion",
    "PersonalRuleCache",
    "QuestionRenderer",
    "SimulatedCrowd",
    "SimulatedMember",
    "StreamMember",
    "WORD_TO_VALUE",
    "parse_open_answer",
    "parse_stats",
    "SpammerAnswerModel",
    "coherent_stats",
    "culinary_renderer",
    "folk_remedies_renderer",
    "standard_answer_model",
    "travel_renderer",
]
