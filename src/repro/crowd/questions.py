"""Question and answer types exchanged with the crowd.

The mining algorithm communicates with crowd members exclusively
through these value objects — it never sees a personal database. Two
question types, following the paper:

- :class:`ClosedQuestion` — "how often ...?" about one specified rule;
  the answer reports that rule's (perceived) support and confidence.
- :class:`OpenQuestion` — "tell us something you do", optionally in a
  context ("... when you have a headache"); the answer volunteers a
  rule prominent in the member's own history, with its stats.

Answers carry the answering member's id so multi-user aggregation can
group samples per member, and so per-member consistency checks
(spammer filtering) have something to key on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule


@dataclass(frozen=True, slots=True)
class ClosedQuestion:
    """Ask a member for the support/confidence of a specific rule."""

    rule: Rule

    def __str__(self) -> str:
        return f"ClosedQuestion({self.rule})"


@dataclass(frozen=True, slots=True)
class OpenQuestion:
    """Ask a member to volunteer a habit of their own.

    ``context`` restricts the request: a non-empty context asks for a
    habit whose antecedent contains those items ("when you have a
    headache, what do you do?"). The empty context is the fully open
    "tell us about a habit".
    """

    context: Itemset = Itemset.empty()

    def __str__(self) -> str:
        if self.context:
            return f"OpenQuestion(context={self.context})"
        return "OpenQuestion()"


@dataclass(frozen=True, slots=True)
class ClosedAnswer:
    """A member's reply to a closed question.

    ``stats`` is the member's (noisy, coarsened) perception of the
    rule's support/confidence in their own life.
    """

    member_id: str
    question: ClosedQuestion
    stats: RuleStats

    @property
    def rule(self) -> Rule:
        """The rule the answer is about."""
        return self.question.rule


@dataclass(frozen=True, slots=True)
class OpenAnswer:
    """A member's reply to an open question.

    ``rule``/``stats`` are ``None`` when the member has nothing (new)
    to report for the requested context — the paper's "none of these" /
    exhausted-memory outcome, which is itself informative: it tells the
    miner this member's discovery well is dry.
    """

    member_id: str
    question: OpenQuestion
    rule: Rule | None
    stats: RuleStats | None

    def __post_init__(self) -> None:
        if (self.rule is None) != (self.stats is None):
            raise ValueError("open answer must carry both rule and stats, or neither")

    @property
    def is_empty(self) -> bool:
        """True when the member volunteered nothing."""
        return self.rule is None


#: Union type for anything a member can hand back.
Answer = ClosedAnswer | OpenAnswer


@dataclass(frozen=True, slots=True)
class MalformedAnswer:
    """A reply that could not be parsed into an answer.

    Real front-ends receive free text, and free text is sometimes
    garbage — a typo'd number pair, an incoherent support/confidence
    order, a rule that does not parse. Rather than raising mid-session
    (which would kill the whole mining run over one bad line), the
    member layer wraps the unusable reply in this value object; the
    miner's validation gate counts and drops it.

    ``raw_text`` is the offending input (when available) and ``error``
    the parse failure's message, so sessions can audit what the crowd
    actually sent.
    """

    member_id: str
    question: ClosedQuestion | OpenQuestion
    raw_text: str
    error: str


#: Everything the crowd can deliver, parseable or not.
AnyAnswer = Answer | MalformedAnswer


@dataclass(frozen=True, slots=True)
class InFlightAnswer:
    """An answer travelling through simulated time.

    The asynchronous crowd interface resolves the answer's *content*
    immediately (the member's reply does not depend on when it is
    read) but stamps it with the simulated instant it becomes visible
    to the miner. ``arrives_at`` of ``inf`` models mid-flight loss —
    the member closed the tab and the answer never lands.

    ``token`` is a crowd-assigned delivery token, unique per issued
    question, so receivers can recognise duplicate deliveries of the
    same answer (at-least-once transports redeliver). ``None`` means
    the producer does not participate in deduplication (e.g. cache
    replay, where each answer is constructed exactly once).
    """

    answer: AnyAnswer
    issued_at: float
    arrives_at: float
    token: int | None = None

    @property
    def delay(self) -> float:
        """Simulated seconds between asking and the answer landing."""
        return self.arrives_at - self.issued_at

    @property
    def is_lost(self) -> bool:
        """True when the answer will never arrive (mid-flight dropout)."""
        return math.isinf(self.arrives_at)
