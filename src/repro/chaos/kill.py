"""Seeded kill-points: SIGKILL the process at a named operation.

The crash-schedule runner's sharpest tool. A :class:`KillSwitch` is
armed with a phase and a count — ``append:12`` dies on the twelfth
write-ahead log append, ``commit:2`` between the second transaction's
WAL append and its COMMIT (via
:attr:`repro.storage.sqlite.SQLiteBackend.pre_commit_hook`),
``checkpoint:3`` as the third checkpoint payload is being saved,
``request:40`` while the server is parsing its fortieth HTTP request.
The kill is a real ``SIGKILL`` to our own pid: no atexit handlers, no
flushes, no mercy — exactly what the durability story must survive.

Wiring: :class:`~repro.chaos.storage.FaultyBackend` ticks the storage
phases, :class:`~repro.serve.app.MinerServer`'s ``request_hook`` ticks
the request phase, and ``repro serve --chaos-kill PHASE:COUNT`` arms
both from the command line so a *separate* process can drive the
server into the wall and then prove ``--resume --repair`` recovers.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

#: The operations a kill switch can target.
KILL_PHASES = ("append", "commit", "checkpoint", "request")


@dataclass
class KillSwitch:
    """Die (SIGKILL self) on the ``count``-th tick of ``phase``."""

    phase: str
    count: int
    #: Ticks seen per phase (diagnostics; survives nothing, of course).
    seen: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.phase not in KILL_PHASES:
            raise ValueError(
                f"unknown kill phase {self.phase!r} (one of {KILL_PHASES})"
            )
        if self.count < 1:
            raise ValueError(f"kill count must be >= 1, got {self.count}")

    @classmethod
    def parse(cls, spec: str) -> "KillSwitch":
        """Parse a ``PHASE:COUNT`` spec (e.g. ``append:12``)."""
        phase, sep, count = spec.partition(":")
        if not sep:
            raise ValueError(f"kill spec must be PHASE:COUNT, got {spec!r}")
        try:
            n = int(count)
        except ValueError:
            raise ValueError(f"kill count must be an integer, got {count!r}") from None
        return cls(phase=phase, count=n)

    def tick(self, phase: str) -> None:
        """Record one occurrence of ``phase``; die when armed and due."""
        self.seen[phase] = self.seen.get(phase, 0) + 1
        if phase == self.phase and self.seen[phase] >= self.count:
            os.kill(os.getpid(), signal.SIGKILL)


__all__ = ["KILL_PHASES", "KillSwitch"]
