"""Chaos engineering for the mining stack: injected faults, proven recovery.

The package has four moving parts, composable but separately usable:

- :mod:`repro.chaos.plan` — seeded, replayable fault plans
  (:class:`StorageFaultPlan`, :class:`TransportFaultPlan`);
- :mod:`repro.chaos.storage` — :class:`FaultyBackend`, a storage
  wrapper that tears, bit-flips, loses and ENOSPC-fails writes on
  plan-chosen ordinals;
- :mod:`repro.chaos.transport` — :class:`ChaosClient`, a client proxy
  that drops, duplicates, delays and reorders requests;
- :mod:`repro.chaos.kill` — :class:`KillSwitch`, seeded SIGKILL at
  named points in the request/commit/checkpoint path;
- :mod:`repro.chaos.harness` — the matrix runner proving every
  (storage × transport × crash) cell converges to the fault-free
  fingerprint with balanced books.

See ``docs/robustness.md`` for the failure-modes table this package
exercises.
"""

from repro.chaos.harness import (
    BOOK_FATES,
    CellOutcome,
    ChaosCell,
    default_matrix,
    fuzz_cell,
    run_cell,
)
from repro.chaos.kill import KILL_PHASES, KillSwitch
from repro.chaos.plan import StorageFaultPlan, TransportFaultPlan
from repro.chaos.storage import FaultyBackend
from repro.chaos.transport import ChaosClient

__all__ = [
    "BOOK_FATES",
    "KILL_PHASES",
    "CellOutcome",
    "ChaosCell",
    "ChaosClient",
    "FaultyBackend",
    "KillSwitch",
    "StorageFaultPlan",
    "TransportFaultPlan",
    "default_matrix",
    "fuzz_cell",
    "run_cell",
]
