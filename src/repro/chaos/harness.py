"""The chaos matrix: every cell must converge on the clean fingerprint.

A :class:`ChaosCell` is one coordinate of (storage fault plan ×
transport fault plan × crash schedule). :func:`run_cell` drives one
seeded :class:`~repro.serve.differential.Scenario` through a *real*
HTTP server under that cell's abuse:

1. create the session over the wire, storage wrapped in a
   :class:`~repro.chaos.storage.FaultyBackend`, the client wrapped in
   :class:`~repro.chaos.transport.ChaosClient` +
   :class:`~repro.serve.http.RetryingClient`;
2. at each crash point, ``abort()`` the server — connections cut,
   uncommitted batches discarded, no drain: the in-process SIGKILL —
   then resume from disk with ``repair=True`` (scrub-on-open, fall
   back past checkpoints the fault plan damaged);
3. when nothing durable survives at all (every checkpoint torn, or
   death before the first save), recovery degrades to a clean restart
   of the session — still deterministic, so still convergent;
4. drive to completion and fetch the result over the wire.

Convergence means: the final KB fingerprint is **byte-identical** to
the fault-free ``run_sync`` reference, and the serve books balance
(``issued == answered + stale + malformed + rejected + gone +
timeouts + outstanding``). The memoized
:class:`~repro.serve.differential.SimulatedWorkerPool` is what makes
the claim sharp — every member RNG draw happens exactly once per
question id, so any double-count, lost answer, or divergent replay
the chaos layer smuggles past the defenses lands in the fingerprint.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.chaos.plan import StorageFaultPlan, TransportFaultPlan
from repro.chaos.storage import FaultyBackend
from repro.chaos.transport import ChaosClient
from repro.serve.app import MinerServer
from repro.serve.differential import (
    Scenario,
    SimulatedWorkerPool,
    drive_session,
    run_sync,
)
from repro.serve.http import JsonClient, RetryingClient
from repro.serve.session import SessionManager
from repro.storage import StorageError

#: Fates every issued question can meet (the serve books invariant).
BOOK_FATES = (
    "answered",
    "stale",
    "malformed",
    "rejected",
    "gone",
    "timeouts",
    "outstanding",
)


@dataclass(frozen=True, slots=True)
class ChaosCell:
    """One coordinate of the chaos matrix."""

    storage: StorageFaultPlan = StorageFaultPlan()
    transport: TransportFaultPlan = TransportFaultPlan()
    #: Client-progress points (fresh answers computed) at which the
    #: server is crashed; empty = the server lives to the end.
    crashes: tuple[int, ...] = ()
    label: str = ""

    def describe(self) -> str:
        bits = [self.label] if self.label else []
        if not self.storage.is_clean:
            bits.append("storage-faults")
        if not self.transport.is_clean:
            bits.append("transport-faults")
        bits.append(f"crashes={list(self.crashes)}")
        return " ".join(bits)


@dataclass(slots=True)
class CellOutcome:
    """What one cell run produced, ready for assertions."""

    cell: ChaosCell
    fingerprint: str
    reference: str
    serve: dict[str, int]
    obs_counters: dict[str, int]
    transport_counts: dict[str, int] = field(default_factory=dict)
    storage_counts: dict[str, int] = field(default_factory=dict)
    #: Corrupt checkpoints dropped by repair across all resumes.
    repaired: int = 0
    #: Times recovery had to fall back to a from-scratch restart
    #: (nothing durable survived).
    restarted: int = 0
    #: Client-side transport retries + overload backoffs.
    client_retries: int = 0

    @property
    def converged(self) -> bool:
        return self.fingerprint == self.reference and self.balanced

    @property
    def balanced(self) -> bool:
        return self.serve["issued"] == sum(self.serve[f] for f in BOOK_FATES)


def fuzz_cell(rng: random.Random) -> ChaosCell:
    """One random matrix coordinate (plans and crash schedule)."""
    crashes: tuple[int, ...] = ()
    if rng.random() < 0.75:
        first = rng.randint(3, 10)
        crashes = (first,) if rng.random() < 0.6 else (first, first + rng.randint(3, 8))
    return ChaosCell(
        storage=StorageFaultPlan.fuzz(rng) if rng.random() < 0.8 else StorageFaultPlan(),
        transport=(
            TransportFaultPlan.fuzz(rng) if rng.random() < 0.8 else TransportFaultPlan()
        ),
        crashes=crashes,
        label=f"fuzz-{rng.randrange(10**6)}",
    )


def default_matrix() -> list[ChaosCell]:
    """The CI chaos matrix: 3 storage × 3 transport × 3 crash cells."""
    storage_plans = [
        StorageFaultPlan(seed=101, torn_checkpoints=(2,)),
        StorageFaultPlan(seed=102, bitflip_checkpoints=(1,), lost_checkpoints=(3,)),
        StorageFaultPlan(
            seed=103, disk_full_appends=(4, 5), disk_full_checkpoints=(2,)
        ),
    ]
    transport_plans = [
        TransportFaultPlan(seed=201, drop_request=0.12, drop_response=0.08),
        TransportFaultPlan(seed=202, duplicate=0.12, replay=0.08),
        TransportFaultPlan(
            seed=203,
            drop_response=0.06,
            duplicate=0.06,
            delay=0.2,
            max_delay=0.002,
        ),
    ]
    crash_schedules: list[tuple[int, ...]] = [(), (7,), (5, 13)]
    return [
        ChaosCell(
            storage=storage,
            transport=transport,
            crashes=crashes,
            label=f"s{si + 1}t{ti + 1}c{ci + 1}",
        )
        for si, storage in enumerate(storage_plans)
        for ti, transport in enumerate(transport_plans)
        for ci, crashes in enumerate(crash_schedules)
    ]


async def _run_cell_async(
    scenario: Scenario,
    cell: ChaosCell,
    data_dir: Path,
    *,
    reference: str,
    checkpoint_every: int,
    max_outstanding: int,
) -> CellOutcome:
    crowd = scenario.build_crowd()
    pool = SimulatedWorkerPool(crowd)
    session_id = "chaos"
    transport_counts: dict[str, int] = {}
    storage_counts: dict[str, int] = {}
    restarted = 0
    client_retries = 0
    result_doc: dict[str, Any] | None = None
    final_obs: dict[str, int] = {}
    faulty: list[FaultyBackend] = []

    def wrap(backend):
        wrapped = FaultyBackend(backend, cell.storage)
        faulty.append(wrapped)
        return wrapped

    targets: list[int | None] = list(cell.crashes) + [None]
    phase = 0
    while phase < len(targets):
        target = targets[phase]
        needs_create = phase == 0
        # Storage faults fire on the first life only: the plan's
        # ordinals address that life's writes, and recovery from them
        # is precisely what the later phases are proving.
        manager = SessionManager(
            data_dir=data_dir, storage_wrapper=wrap if needs_create else None
        )
        if not needs_create:
            try:
                manager.resume_all(repair=True)
            except StorageError:
                # Nothing durable survived (every checkpoint damaged,
                # or the crash predated the first save): recovery
                # degrades to a clean restart. Deterministic seeds +
                # the memoized pool keep even this path convergent.
                for stale in sorted(data_dir.glob("*.db")):
                    stale.unlink()
                restarted += 1
                needs_create = True
                manager = SessionManager(data_dir=data_dir)
        server = MinerServer(manager, "127.0.0.1", 0)
        await server.start()
        run_task = asyncio.create_task(server.run(install_signals=False))
        base = JsonClient("127.0.0.1", server.port)
        chaos = ChaosClient(base, cell.transport)
        client = RetryingClient(
            chaos, seed=cell.transport.seed + 7919 * (phase + 1), max_attempts=12
        )
        try:
            if needs_create:
                spec = scenario.session_spec(
                    crowd.member_ids,
                    id=session_id,
                    checkpoint_every=checkpoint_every,
                    max_outstanding=max_outstanding,
                )
                status, created = await client.request("POST", "/v1/sessions", spec)
                if status != 201:
                    raise RuntimeError(f"session create failed: {created!r}")
            outcome = await drive_session(
                client,
                session_id,
                pool,
                key_prefix=f"p{phase}-",
                stop_after=target,
            )
            session = manager.sessions[session_id]
            final_obs = dict(session.miner.obs.snapshot().counters)
            if outcome.get("status") != "crashed":
                # Done early (or this was the final phase): fetch the
                # verdict over the wire and stop crashing a finished
                # session.
                _status, result_doc = await client.request(
                    "GET", f"/v1/sessions/{session_id}/result"
                )
                phase = len(targets)
            else:
                phase += 1
        finally:
            for name, value in chaos.counts.items():
                transport_counts[name] = transport_counts.get(name, 0) + value
            client_retries += client.retries + client.backoffs
            await client.aclose()
            if result_doc is not None:
                server.request_shutdown()
                await run_task
            else:
                await server.abort()
                await run_task
    for wrapped in faulty:
        for name, value in wrapped.counts.items():
            storage_counts[name] = storage_counts.get(name, 0) + value
    assert result_doc is not None
    return CellOutcome(
        cell=cell,
        fingerprint=result_doc["fingerprint"],
        reference=reference,
        serve=dict(result_doc["serve"]),
        obs_counters=final_obs,
        transport_counts=transport_counts,
        storage_counts=storage_counts,
        repaired=final_obs.get("storage.repaired", 0),
        restarted=restarted,
        client_retries=client_retries,
    )


def run_cell(
    scenario: Scenario,
    cell: ChaosCell,
    data_dir: str | Path,
    *,
    reference: str | None = None,
    checkpoint_every: int = 3,
    max_outstanding: int = 4,
) -> CellOutcome:
    """Run one chaos cell to completion; returns its outcome.

    ``reference`` is the fault-free sync fingerprint (computed fresh
    when not supplied — pass it in when sweeping a matrix so the
    reference run happens once). ``checkpoint_every`` is kept small so
    crash points land between checkpoints, not only on them.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    if reference is None:
        reference = run_sync(scenario).fingerprint()
    return asyncio.run(
        _run_cell_async(
            scenario,
            cell,
            data_dir,
            reference=reference,
            checkpoint_every=checkpoint_every,
            max_outstanding=max_outstanding,
        )
    )


__all__ = [
    "BOOK_FATES",
    "CellOutcome",
    "ChaosCell",
    "default_matrix",
    "fuzz_cell",
    "run_cell",
]
