"""A chaos proxy between the JSON client and the wire.

:class:`ChaosClient` wraps any client with a ``request()`` coroutine
and executes a :class:`~repro.chaos.plan.TransportFaultPlan` against
the traffic: requests get dropped before sending, responses get
dropped after the server already acted, requests get delivered twice
back-to-back or replayed late and out of order, and seeded delays jam
themselves into the schedule. Faults target only the hot task-queue
paths (question fetch, answer post) — session setup and result
inspection stay reliable so a chaos run's *verdict* is trustworthy
even when its traffic is not.

The proxy is deliberately client-side: every fault it injects is
indistinguishable, from the server's point of view, from a flaky
network. Layer :class:`~repro.serve.http.RetryingClient` on top and
the recovery machinery under test is exactly what production runs:
idempotency keys, dedup table, capped backoff.
"""

from __future__ import annotations

import asyncio
import random
import re
from typing import Any

from repro.chaos.plan import TransportFaultPlan

#: The endpoints chaos is allowed to touch.
_FAULTABLE = re.compile(r"^/v1/sessions/[^/]+/(question|answer)$")


class ChaosClient:
    """Execute a seeded transport-fault plan around a JSON client.

    Raises :class:`ConnectionError` for both drop kinds — from the
    caller's seat a lost request and a lost response look identical;
    only the server-side dedup table can (and must) tell them apart.
    """

    def __init__(self, client: Any, plan: TransportFaultPlan) -> None:
        self.client = client
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: Injected-fault tallies (``chaos.transport.*`` counter names).
        self.counts: dict[str, int] = {}
        self._replay_stash: tuple[str, str, Any] | None = None

    @property
    def last_headers(self) -> dict[str, str]:
        return getattr(self.client, "last_headers", {})

    async def aclose(self) -> None:
        await self.client.aclose()

    def _count(self, fault: str) -> None:
        name = f"chaos.transport.{fault}"
        self.counts[name] = self.counts.get(name, 0) + 1

    async def request(
        self, method: str, path: str, doc: Any = None
    ) -> tuple[int, Any]:
        if not _FAULTABLE.match(path):
            return await self.client.request(method, path, doc)
        plan, rng = self.plan, self._rng
        if self._replay_stash is not None:
            # A stale duplicate of an older request arrives *now*,
            # ahead of the current one: reordering, as the server
            # experiences it. Its response belongs to nobody.
            stale_method, stale_path, stale_doc = self._replay_stash
            self._replay_stash = None
            self._count("replayed")
            try:
                await self.client.request(stale_method, stale_path, stale_doc)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                pass
        if plan.delay and rng.random() < plan.delay:
            self._count("delayed")
            await asyncio.sleep(rng.uniform(0.0, plan.max_delay))
        if plan.drop_request and rng.random() < plan.drop_request:
            # Lost before it ever hit the socket: the server saw
            # nothing, the caller sees a dead connection.
            self._count("dropped_requests")
            raise ConnectionError(f"chaos: request dropped ({method} {path})")
        status, body = await self.client.request(method, path, doc)
        if plan.duplicate and rng.random() < plan.duplicate:
            # The network delivered it twice; the second delivery's
            # response is consumed and discarded to keep the
            # connection in sync.
            self._count("duplicated")
            try:
                await self.client.request(method, path, doc)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                pass
        if plan.replay and rng.random() < plan.replay:
            self._replay_stash = (method, path, doc)
        if plan.drop_response and rng.random() < plan.drop_response:
            # The dangerous half: the server fully processed the
            # request, only the response died. Without idempotency
            # keys a retry here double-counts.
            self._count("dropped_responses")
            raise ConnectionError(f"chaos: response dropped ({method} {path})")
        return status, body


__all__ = ["ChaosClient"]
