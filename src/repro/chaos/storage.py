"""A storage backend that damages what passes through it — on purpose.

:class:`FaultyBackend` wraps any real
:class:`~repro.storage.backend.StorageBackend` and executes a
:class:`~repro.chaos.plan.StorageFaultPlan` against the traffic:
checkpoint payloads get torn, bit-flipped or silently lost on their
way to the inner backend, appends and saves hit injected disk-full
errors. Everything *else* — reads, scrubs, truncation, resume — passes
through untouched, so what the recovery machinery sees is exactly what
a failing disk would have left behind.

The wrapper is where the storage half of the chaos matrix gets its
teeth: damage is injected *below* the checksum seal
(:mod:`repro.storage.integrity`), so a torn write really does land
torn bytes in the checkpoint table, and the scrub/repair pass has to
find them the honest way.
"""

from __future__ import annotations

import random
from typing import Any

from repro.chaos.kill import KillSwitch
from repro.chaos.plan import StorageFaultPlan
from repro.storage.backend import AnswerRecord, CheckpointInfo, StorageError


class FaultyBackend:
    """Execute a seeded fault plan against a wrapped storage backend.

    Fault ordinals count this wrapper's own traffic (1-based): the
    plan addresses "the 2nd checkpoint save", not row ids. Where a
    fault needs randomness (the truncation byte of a torn write, the
    flipped bit's position), it derives from ``plan.seed`` and the
    ordinal — the same plan replays the same damage, byte for byte.

    ``kill`` arms process-death at storage kill-points: ``append``
    after a log record is written (uncommitted), ``commit`` between
    the WAL append and its COMMIT (through the inner backend's
    ``pre_commit_hook``, when it has one), ``checkpoint`` as the
    payload is being saved.
    """

    def __init__(
        self,
        inner: Any,
        plan: StorageFaultPlan | None = None,
        *,
        kill: KillSwitch | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan or StorageFaultPlan()
        self.kill = kill
        self._appends = 0
        self._saves = 0
        #: Injected-fault tallies (``chaos.storage.*`` counter names).
        self.counts: dict[str, int] = {}
        self._obs = None
        if kill is not None and hasattr(inner, "pre_commit_hook"):
            inner.pre_commit_hook = lambda: kill.tick("commit")

    # -- instrumentation -------------------------------------------------------

    def bind_obs(self, obs: Any) -> None:
        """Report fault counters through a session's instrumentation.

        Called by the miner when the backend is attached (and by
        resume when it is re-attached); faults injected before binding
        are replayed into the counters so nothing is lost.
        """
        self._obs = obs
        for name, value in self.counts.items():
            obs.count(name, value)

    def _count(self, fault: str) -> None:
        name = f"chaos.storage.{fault}"
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._obs is not None:
            self._obs.count(name)

    def _rng(self, ordinal: int) -> random.Random:
        return random.Random((self.plan.seed << 20) ^ ordinal)

    # -- faulted writes --------------------------------------------------------

    def append_answer(self, record: AnswerRecord) -> None:
        self._appends += 1
        if self._appends in self.plan.disk_full_appends:
            self._count("disk_full")
            raise StorageError(
                f"injected disk-full on answer append #{self._appends}"
            )
        self.inner.append_answer(record)
        if self.kill is not None:
            self.kill.tick("append")

    def save_checkpoint(
        self, payload: bytes, *, questions: int, kb_rules: int
    ) -> CheckpointInfo:
        self._saves += 1
        ordinal = self._saves
        if self.kill is not None:
            self.kill.tick("checkpoint")
        if ordinal in self.plan.disk_full_checkpoints:
            self._count("disk_full")
            raise StorageError(f"injected disk-full on checkpoint #{ordinal}")
        if ordinal in self.plan.lost_checkpoints:
            # The write "succeeds" but never reaches disk: a lost
            # fsync tail. With a transactional inner backend the
            # deferred answer batch stays uncommitted too — exactly
            # the tail a real power cut would eat.
            self._count("lost")
            return CheckpointInfo(
                checkpoint_id=-ordinal,
                questions=questions,
                kb_rules=kb_rules,
                answers_logged=len(self.inner.answers()),
                payload_bytes=len(payload),
            )
        if ordinal in self.plan.torn_checkpoints:
            rng = self._rng(ordinal)
            cut = rng.randrange(1, max(2, len(payload)))
            payload = payload[:cut]
            self._count("torn")
        if ordinal in self.plan.bitflip_checkpoints:
            rng = self._rng(~ordinal)
            position = rng.randrange(len(payload) * 8)
            flipped = bytearray(payload)
            flipped[position // 8] ^= 1 << (position % 8)
            payload = bytes(flipped)
            self._count("bitflip")
        return self.inner.save_checkpoint(
            payload, questions=questions, kb_rules=kb_rules
        )

    # -- clean passthrough -----------------------------------------------------

    def make_index(self):
        return self.inner.make_index()

    def reset_index(self) -> None:
        self.inner.reset_index()

    def answers(self) -> list[AnswerRecord]:
        return self.inner.answers()

    def truncate_answers(self, keep: int) -> None:
        self.inner.truncate_answers(keep)

    def latest_checkpoint(self) -> tuple[CheckpointInfo, bytes] | None:
        return self.inner.latest_checkpoint()

    def load_checkpoint(self, checkpoint_id: int) -> tuple[CheckpointInfo, bytes]:
        return self.inner.load_checkpoint(checkpoint_id)

    def drop_checkpoint(self, checkpoint_id: int) -> None:
        self.inner.drop_checkpoint(checkpoint_id)

    def checkpoints(self) -> list[CheckpointInfo]:
        return self.inner.checkpoints()

    def bytes_on_disk(self) -> int:
        return self.inner.bytes_on_disk()

    def describe(self) -> str:
        return f"chaos({self.inner.describe()})"

    def close(self) -> None:
        self.inner.close()

    def abort(self) -> None:
        """Simulated process death, delegated (close when unsupported)."""
        getattr(self.inner, "abort", self.inner.close)()


__all__ = ["FaultyBackend"]
