"""Seeded fault plans — every chaos run is a replayable coordinate.

A chaos cell is fully described by three values: a
:class:`StorageFaultPlan` (which checkpoint saves and log appends get
damaged, and how), a :class:`TransportFaultPlan` (per-request
probabilities of dropping, duplicating, delaying or replaying
traffic), and a crash schedule (client-progress points at which the
server dies, owned by :mod:`repro.chaos.harness`). All randomness
inside a plan derives from its ``seed``, so a failing cell reproduces
from its repr alone — the same discipline
:class:`repro.faults.FaultPlan` established for in-sim faults, pushed
down to the storage and transport layers.

Storage fault ordinals are **1-based**: ``torn_checkpoints=(2,)``
damages the second ``save_checkpoint`` call the backend sees,
``disk_full_appends=(5, 6)`` fails the fifth and sixth log appends.
Ordinal addressing (rather than probabilities) keeps the storage leg's
recovery assertions exact: a test knows precisely which checkpoint
must be scrubbed and which must survive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields


@dataclass(frozen=True, slots=True)
class StorageFaultPlan:
    """Which storage operations get damaged, and how.

    ``torn_checkpoints`` truncate the payload at a seeded byte before
    it reaches disk (a torn write); ``bitflip_checkpoints`` flip one
    seeded bit (bit rot); ``lost_checkpoints`` report success without
    writing anything (a lost fsync tail — the uncommitted answer batch
    vanishes with it); ``disk_full_appends`` / ``disk_full_checkpoints``
    raise :class:`~repro.storage.backend.StorageError` from the named
    operations (a full disk the session must survive degraded).
    """

    seed: int = 0
    torn_checkpoints: tuple[int, ...] = ()
    bitflip_checkpoints: tuple[int, ...] = ()
    lost_checkpoints: tuple[int, ...] = ()
    disk_full_appends: tuple[int, ...] = ()
    disk_full_checkpoints: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for field in fields(self):
            if field.name == "seed":
                continue
            ordinals = getattr(self, field.name)
            if any(ordinal < 1 for ordinal in ordinals):
                raise ValueError(
                    f"{field.name} ordinals are 1-based, got {ordinals!r}"
                )

    @property
    def is_clean(self) -> bool:
        return not (
            self.torn_checkpoints
            or self.bitflip_checkpoints
            or self.lost_checkpoints
            or self.disk_full_appends
            or self.disk_full_checkpoints
        )

    @classmethod
    def fuzz(cls, rng: random.Random) -> "StorageFaultPlan":
        """One random plan: a couple of faults in the early session."""
        kinds = [
            "torn_checkpoints",
            "bitflip_checkpoints",
            "lost_checkpoints",
            "disk_full_appends",
            "disk_full_checkpoints",
        ]
        picked: dict[str, tuple[int, ...]] = {}
        for kind in rng.sample(kinds, rng.randint(1, 2)):
            ceiling = 30 if kind == "disk_full_appends" else 4
            picked[kind] = tuple(
                sorted({rng.randint(1, ceiling) for _ in range(rng.randint(1, 2))})
            )
        return cls(seed=rng.randrange(2**31), **picked)


@dataclass(frozen=True, slots=True)
class TransportFaultPlan:
    """Per-request fault probabilities for the chaos proxy.

    ``drop_request`` loses the request before it is sent;
    ``drop_response`` completes the server round-trip but loses the
    response on the way back (the dangerous half: the server already
    acted); ``duplicate`` delivers the request twice back-to-back;
    ``replay`` re-delivers it once more *later*, after newer requests
    (an out-of-order stale duplicate); ``delay`` sleeps a seeded
    interval up to ``max_delay`` seconds before sending.
    """

    seed: int = 0
    drop_request: float = 0.0
    drop_response: float = 0.0
    duplicate: float = 0.0
    replay: float = 0.0
    delay: float = 0.0
    max_delay: float = 0.005

    def __post_init__(self) -> None:
        for name in ("drop_request", "drop_response", "duplicate", "replay", "delay"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay!r}")

    @property
    def is_clean(self) -> bool:
        return not (
            self.drop_request
            or self.drop_response
            or self.duplicate
            or self.replay
            or self.delay
        )

    @classmethod
    def fuzz(cls, rng: random.Random) -> "TransportFaultPlan":
        """One random plan mixing two or three fault kinds, ≤15% each."""
        kinds = ["drop_request", "drop_response", "duplicate", "replay", "delay"]
        picked = {
            kind: round(rng.uniform(0.03, 0.15), 3)
            for kind in rng.sample(kinds, rng.randint(2, 3))
        }
        return cls(seed=rng.randrange(2**31), **picked)


__all__ = ["StorageFaultPlan", "TransportFaultPlan"]
