"""Apriori frequent-itemset mining.

The classic levelwise algorithm of Agrawal & Srikant (VLDB 1994). In
this library it serves three roles:

- computing **ground truth** over materialized personal databases so
  crowd-mining quality (precision/recall of reported rules) can be
  measured against an exact answer;
- the **horizontal baseline** the paper's adaptive miner is compared
  against conceptually (levelwise, frequency-ordered exploration);
- a general-purpose miner exposed through the public API.

The implementation is the textbook one — candidate generation by
joining (k−1)-prefix-sharing frequent sets, pruning candidates with an
infrequent subset, then a counting pass — kept deliberately close to
the literature so it can act as an executable specification for the
property tests (Apriori ≡ FP-Growth on every input).
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from itertools import combinations

from repro._util import check_fraction
from repro.core.itemset import Itemset
from repro.core.transactions import TransactionDB
from repro.errors import EmptyDatabaseError


def _frequent_singletons(db: TransactionDB, min_count: int) -> dict[Itemset, int]:
    counts: dict[str, int] = {}
    for row in db:
        for item in row:
            counts[item] = counts.get(item, 0) + 1
    return {
        Itemset.of(item): count for item, count in counts.items() if count >= min_count
    }


def _join_step(frequent: list[tuple[str, ...]]) -> Iterator[tuple[str, ...]]:
    """Join k-sets sharing a (k−1)-prefix into (k+1)-candidates.

    ``frequent`` must hold sorted item tuples, themselves sorted; the
    classic lexicographic join then enumerates every candidate exactly
    once.
    """
    for i, left in enumerate(frequent):
        for right in frequent[i + 1 :]:
            if left[:-1] != right[:-1]:
                # Sorted order ⇒ no later tuple can share the prefix either.
                break
            yield left + (right[-1],)


def _prune_step(
    candidates: Iterator[tuple[str, ...]], frequent_prev: set[tuple[str, ...]]
) -> Iterator[tuple[str, ...]]:
    """Drop candidates having an infrequent (k−1)-subset."""
    for candidate in candidates:
        if all(sub in frequent_prev for sub in combinations(candidate, len(candidate) - 1)):
            yield candidate


def frequent_itemsets(
    db: TransactionDB,
    min_support: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with support ≥ ``min_support`` (and their supports).

    Parameters
    ----------
    db:
        The transaction database to mine.
    min_support:
        Relative support threshold in ``(0, 1]``. A threshold of 0 is
        rejected — it would enumerate the full powerset of every
        transaction.
    max_size:
        Optional cap on itemset cardinality, useful when only rules up
        to a certain length are of interest.

    Returns
    -------
    dict
        Mapping from each frequent :class:`Itemset` (singletons and up;
        the empty itemset is excluded) to its relative support.
    """
    check_fraction(min_support, "min_support")
    if min_support <= 0.0:
        raise ValueError("min_support must be strictly positive for Apriori")
    if len(db) == 0:
        raise EmptyDatabaseError("cannot mine an empty database")
    n = len(db)
    min_count = max(1, math.ceil(min_support * n - 1e-9))

    result: dict[Itemset, float] = {}
    level = _frequent_singletons(db, min_count)
    size = 1
    while level:
        for itemset, count in level.items():
            result[itemset] = count / n
        if max_size is not None and size >= max_size:
            break
        frequent_tuples = sorted(itemset.items for itemset in level)
        frequent_set = set(frequent_tuples)
        candidates = list(_prune_step(_join_step(frequent_tuples), frequent_set))
        next_level: dict[Itemset, int] = {}
        for candidate in candidates:
            count = db.count(candidate)
            if count >= min_count:
                next_level[Itemset(candidate)] = count
        level = next_level
        size += 1
    return result
