"""Association-rule generation from frequent itemsets.

Splits each frequent itemset into antecedent/consequent pairs and keeps
the rules whose confidence clears a threshold — the second phase of
classic association-rule mining (Agrawal & Srikant, VLDB 1994). The
confidence-based pruning uses the standard fact that for a fixed
itemset, moving items from the antecedent to the consequent can only
lower confidence.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro._util import check_fraction
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule


def rules_from_itemsets(
    supports: Mapping[Itemset, float],
    min_confidence: float,
    include_itemset_rules: bool = False,
) -> dict[Rule, RuleStats]:
    """Generate all confident rules from a frequent-itemset table.

    Parameters
    ----------
    supports:
        Mapping from frequent itemsets to their supports, as produced
        by the Apriori / FP-Growth miners. Must be downward closed
        (every subset of a listed itemset listed too) — both miners
        guarantee this.
    min_confidence:
        Confidence threshold in ``[0, 1]``.
    include_itemset_rules:
        When true, also emit the degenerate ``∅ → itemset`` rule for
        every frequent itemset (confidence = support).

    Returns
    -------
    dict
        Mapping from each rule to its :class:`RuleStats`. Rules are
        generated only from itemsets of size ≥ 2 (plus the degenerate
        rules when requested).
    """
    check_fraction(min_confidence, "min_confidence")
    result: dict[Rule, RuleStats] = {}
    for itemset, support in supports.items():
        if include_itemset_rules:
            rule = Rule.itemset_rule(itemset)
            stats = RuleStats(support, support)
            if stats.confidence >= min_confidence:
                result[rule] = stats
        if len(itemset) < 2:
            continue
        for antecedent in itemset.subsets(proper=True):
            if not antecedent:
                continue
            consequent = itemset - antecedent
            antecedent_support = supports.get(antecedent)
            if antecedent_support is None or antecedent_support <= 0.0:
                # Not downward closed for this subset: skip rather than
                # fabricate a confidence.
                continue
            confidence = min(1.0, support / antecedent_support)
            if confidence >= min_confidence:
                result[Rule(antecedent, consequent)] = RuleStats(support, confidence)
    return result


def mine_rules(
    db,
    min_support: float,
    min_confidence: float,
    max_size: int | None = None,
    algorithm: str = "fpgrowth",
) -> dict[Rule, RuleStats]:
    """End-to-end classic rule mining over a materialized database.

    A convenience front-end combining frequent-itemset mining with
    :func:`rules_from_itemsets`.

    Parameters
    ----------
    db:
        A :class:`~repro.core.transactions.TransactionDB`.
    min_support, min_confidence:
        The usual thresholds.
    max_size:
        Optional cap on rule body size.
    algorithm:
        ``"fpgrowth"`` (default), ``"apriori"`` or ``"eclat"``.
    """
    if algorithm == "fpgrowth":
        from repro.classic.fpgrowth import frequent_itemsets
    elif algorithm == "apriori":
        from repro.classic.apriori import frequent_itemsets
    elif algorithm == "eclat":
        from repro.classic.eclat import frequent_itemsets
    else:
        raise ValueError(f"unknown algorithm: {algorithm!r}")
    supports = frequent_itemsets(db, min_support, max_size=max_size)
    return rules_from_itemsets(supports, min_confidence)
