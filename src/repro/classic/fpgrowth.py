"""FP-Growth frequent-itemset mining.

Pattern growth over the FP-tree (Han, Pei & Yin, SIGMOD 2000): for each
item (suffix), build the conditional FP-tree of its prefix paths and
recurse; single-path trees are expanded combinatorially. Produces the
identical result set as :func:`repro.classic.apriori.frequent_itemsets`
— a fact the property-based tests assert on random databases — while
scaling to the denser synthetic workloads of the benchmark harness.
"""

from __future__ import annotations

import math
from itertools import combinations

from repro._util import check_fraction
from repro.core.itemset import Itemset
from repro.core.transactions import TransactionDB
from repro.classic.fptree import FPTree
from repro.errors import EmptyDatabaseError


def _grow(
    tree: FPTree,
    suffix: tuple[str, ...],
    min_count: int,
    max_size: int | None,
    out: dict[Itemset, int],
) -> None:
    single = tree.single_path()
    if single is not None:
        # Every combination of path items, appended to the suffix, is
        # frequent with the count of its deepest (least frequent) node.
        for k in range(1, len(single) + 1):
            if max_size is not None and len(suffix) + k > max_size:
                break
            for combo in combinations(single, k):
                items = tuple(item for item, _ in combo) + suffix
                count = min(c for _, c in combo)
                out[Itemset(items)] = count
        return
    for item in tree.items_ascending():
        new_suffix = (item,) + suffix
        out[Itemset(new_suffix)] = tree.item_counts[item]
        if max_size is not None and len(new_suffix) >= max_size:
            continue
        base = tree.conditional_pattern_base(item)
        conditional = FPTree(base, min_count)
        if not conditional.is_empty:
            _grow(conditional, new_suffix, min_count, max_size, out)


def frequent_itemsets(
    db: TransactionDB,
    min_support: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with support ≥ ``min_support``, via FP-Growth.

    Same contract as :func:`repro.classic.apriori.frequent_itemsets`;
    see there for parameter semantics.
    """
    check_fraction(min_support, "min_support")
    if min_support <= 0.0:
        raise ValueError("min_support must be strictly positive for FP-Growth")
    if len(db) == 0:
        raise EmptyDatabaseError("cannot mine an empty database")
    n = len(db)
    min_count = max(1, math.ceil(min_support * n - 1e-9))
    tree = FPTree(((row, 1) for row in db), min_count)
    counts: dict[Itemset, int] = {}
    if not tree.is_empty:
        _grow(tree, (), min_count, max_size, counts)
    return {itemset: count / n for itemset, count in counts.items()}
