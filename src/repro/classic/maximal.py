"""Maximal and closed frequent itemsets.

Condensed representations of the frequent-itemset collection:

- a frequent itemset is **maximal** when none of its supersets is
  frequent — maximal sets plus downward closure reconstruct frequency
  (but not supports);
- a frequent itemset is **closed** when none of its supersets has the
  same support — closed sets reconstruct supports exactly.

The crowd-miner's reported output (most-specific significant rules) is
the rule-lattice analogue of maximal itemsets, so these functions both
complete the classic substrate and provide small, well-understood
fixtures for the lattice property tests.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.itemset import Itemset


def maximal_itemsets(supports: Mapping[Itemset, float]) -> dict[Itemset, float]:
    """The maximal itemsets of a frequent-itemset table.

    ``supports`` must be the (downward-closed) output of a frequent
    itemset miner; an itemset is kept iff no strict superset appears.
    """
    by_size: dict[int, list[Itemset]] = {}
    for itemset in supports:
        by_size.setdefault(len(itemset), []).append(itemset)
    sizes = sorted(by_size, reverse=True)
    result: dict[Itemset, float] = {}
    for idx, size in enumerate(sizes):
        larger = [s for s2 in sizes[:idx] for s in by_size[s2]]
        for itemset in by_size[size]:
            if not any(itemset < big for big in larger):
                result[itemset] = supports[itemset]
    return result


def closed_itemsets(supports: Mapping[Itemset, float]) -> dict[Itemset, float]:
    """The closed itemsets of a frequent-itemset table.

    An itemset is closed iff it has no superset with equal support.
    Supports are compared with a small tolerance since they are floats
    derived from integer counts over the same denominator.
    """
    items = list(supports)
    result: dict[Itemset, float] = {}
    for itemset in items:
        support = supports[itemset]
        is_closed = True
        for other in items:
            if itemset < other and abs(supports[other] - support) < 1e-12:
                is_closed = False
                break
        if is_closed:
            result[itemset] = support
    return result
