"""Eclat frequent-itemset mining (vertical tid-list intersection).

Zaki's Eclat (IEEE TKDE 2000): represent each item as the set of
transaction ids containing it and grow itemsets depth-first, computing
each extension's support by intersecting tid-lists. A third
independently-derived implementation of the same specification as
Apriori and FP-Growth, which the property tests exploit (three
algorithms, one answer), and the fastest of the three on the dense
synthetic baskets the benchmark harness produces.
"""

from __future__ import annotations

import math

from repro._util import check_fraction
from repro.core.itemset import Itemset
from repro.core.transactions import TransactionDB
from repro.errors import EmptyDatabaseError


def _grow(
    prefix: tuple[str, ...],
    items: list[tuple[str, frozenset[int]]],
    min_count: int,
    max_size: int | None,
    out: dict[Itemset, int],
) -> None:
    """Depth-first extension of ``prefix`` with each candidate item.

    ``items`` holds (item, tidlist) pairs, each already frequent in the
    prefix's conditional view and lexicographically after the prefix's
    last item (the standard Eclat ordering that enumerates every
    itemset exactly once).
    """
    for index, (item, tids) in enumerate(items):
        itemset = prefix + (item,)
        out[Itemset(itemset)] = len(tids)
        if max_size is not None and len(itemset) >= max_size:
            continue
        extensions = []
        for other, other_tids in items[index + 1 :]:
            joint = tids & other_tids
            if len(joint) >= min_count:
                extensions.append((other, joint))
        if extensions:
            _grow(itemset, extensions, min_count, max_size, out)


def frequent_itemsets(
    db: TransactionDB,
    min_support: float,
    max_size: int | None = None,
) -> dict[Itemset, float]:
    """All itemsets with support ≥ ``min_support``, via Eclat.

    Same contract as the Apriori and FP-Growth miners; see
    :func:`repro.classic.apriori.frequent_itemsets`.
    """
    check_fraction(min_support, "min_support")
    if min_support <= 0.0:
        raise ValueError("min_support must be strictly positive for Eclat")
    if len(db) == 0:
        raise EmptyDatabaseError("cannot mine an empty database")
    n = len(db)
    min_count = max(1, math.ceil(min_support * n - 1e-9))
    items = [
        (item, db.matching_ids(Itemset([item])))
        for item in db.items  # already sorted, giving a stable order
    ]
    items = [(item, tids) for item, tids in items if len(tids) >= min_count]
    counts: dict[Itemset, int] = {}
    _grow((), items, min_count, max_size, counts)
    return {itemset: count / n for itemset, count in counts.items()}
