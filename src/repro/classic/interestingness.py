"""Interestingness ranking and redundancy filtering for mined rules.

Threshold mining returns every rule above (θ_s, θ_c); real users read
a ranked shortlist. This module provides the standard post-processing
over a mined ``{rule: stats}`` table plus its frequent-itemset
supports:

- **objective measures** beyond support/confidence: lift, leverage,
  conviction (computed from the itemset support table);
- **ranking** by any measure;
- **redundancy filtering**: drop rules implied by an equally-good
  simpler rule (a rule is redundant when some generalization with the
  same consequent has at least its confidence — the classic
  "productive rules" filter).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats, conviction, leverage, lift
from repro.core.rule import Rule
from repro.errors import ReproError


class MissingSupportError(ReproError):
    """The support table lacks an itemset a measure needs."""


@dataclass(frozen=True, slots=True)
class ScoredRule:
    """A rule with its full measure vector."""

    rule: Rule
    stats: RuleStats
    lift: float
    leverage: float
    conviction: float

    def measure(self, name: str) -> float:
        """Look up a measure by name (for generic ranking)."""
        if name == "support":
            return self.stats.support
        if name == "confidence":
            return self.stats.confidence
        if name in ("lift", "leverage", "conviction"):
            return getattr(self, name)
        raise ValueError(f"unknown measure: {name!r}")


def _support_of(supports: Mapping[Itemset, float], itemset: Itemset) -> float:
    if not itemset:
        return 1.0
    value = supports.get(itemset)
    if value is None:
        raise MissingSupportError(
            f"support table lacks {itemset}; mine with a downward-closed "
            f"algorithm and matching thresholds"
        )
    return value


def score_rules(
    rules: Mapping[Rule, RuleStats],
    supports: Mapping[Itemset, float],
) -> list[ScoredRule]:
    """Compute the full measure vector for every rule.

    ``supports`` must contain every rule's antecedent and consequent
    itemsets (the miners' downward-closed output does).
    """
    scored = []
    for rule, stats in rules.items():
        a_support = _support_of(supports, rule.antecedent)
        c_support = _support_of(supports, rule.consequent)
        scored.append(
            ScoredRule(
                rule=rule,
                stats=stats,
                lift=lift(stats.support, a_support, c_support),
                leverage=leverage(stats.support, a_support, c_support),
                conviction=conviction(stats.confidence, c_support),
            )
        )
    return scored


def rank_rules(
    rules: Mapping[Rule, RuleStats],
    supports: Mapping[Itemset, float],
    by: str = "lift",
    top: int | None = None,
) -> list[ScoredRule]:
    """Rules ranked by a measure, best first (ties: shorter rule first).

    Infinite measure values (conviction of an exact rule, lift over a
    zero-support marginal) sort above every finite value.
    """
    scored = score_rules(rules, supports)

    def key(item: ScoredRule):
        value = item.measure(by)
        finite = 0 if math.isinf(value) else 1
        return (finite, -value if not math.isinf(value) else 0, len(item.rule.body), item.rule.sort_key())

    scored.sort(key=key)
    return scored[:top] if top is not None else scored


def filter_redundant(
    rules: Mapping[Rule, RuleStats],
    min_improvement: float = 0.0,
) -> dict[Rule, RuleStats]:
    """Keep only rules that *improve* on their simpler generalizations.

    A rule ``A → B`` is redundant when some rule ``A' → B`` with
    ``A' ⊂ A`` exists in the collection whose confidence is within
    ``min_improvement`` of it — the longer antecedent buys nothing.
    The classic "minimum improvement" filter of Bayardo et al.
    """
    if min_improvement < 0:
        raise ValueError("min_improvement must be non-negative")
    kept: dict[Rule, RuleStats] = {}
    for rule, stats in rules.items():
        redundant = False
        for other, other_stats in rules.items():
            if other == rule or other.consequent != rule.consequent:
                continue
            if other.antecedent < rule.antecedent:
                if stats.confidence - other_stats.confidence <= min_improvement:
                    redundant = True
                    break
        if not redundant:
            kept[rule] = stats
    return kept
