"""Classic (database-resident) mining substrate.

These algorithms operate on *materialized* transaction databases. The
crowd-mining core never scans a database — personal databases are
virtual — but needs this substrate for ground truth, baselines and
synthetic-population construction.
"""

from repro.classic.apriori import frequent_itemsets as apriori_frequent_itemsets
from repro.classic.eclat import frequent_itemsets as eclat_frequent_itemsets
from repro.classic.fpgrowth import frequent_itemsets as fpgrowth_frequent_itemsets
from repro.classic.fptree import FPNode, FPTree
from repro.classic.interestingness import (
    MissingSupportError,
    ScoredRule,
    filter_redundant,
    rank_rules,
    score_rules,
)
from repro.classic.maximal import closed_itemsets, maximal_itemsets
from repro.classic.rulegen import mine_rules, rules_from_itemsets

__all__ = [
    "FPNode",
    "MissingSupportError",
    "ScoredRule",
    "FPTree",
    "apriori_frequent_itemsets",
    "eclat_frequent_itemsets",
    "closed_itemsets",
    "fpgrowth_frequent_itemsets",
    "filter_redundant",
    "maximal_itemsets",
    "rank_rules",
    "score_rules",
    "mine_rules",
    "rules_from_itemsets",
]
