"""FP-tree: the prefix-tree structure behind FP-Growth.

An FP-tree compresses a transaction database by storing transactions as
paths of a prefix tree ordered by descending item frequency, with a
header table linking all nodes of each item. Han, Pei & Yin (SIGMOD
2000). The tree supports the two operations FP-Growth needs:

- conditional pattern bases (the prefix paths ending at an item), and
- detection of single-path trees (whose patterns can be enumerated
  combinatorially without recursion).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class FPNode:
    """A node of an FP-tree: one item with a count and child links."""

    __slots__ = ("item", "count", "parent", "children", "next_same_item")

    def __init__(self, item: str | None, parent: "FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[str, FPNode] = {}
        #: Intrusive linked list threading all nodes that carry the same item.
        self.next_same_item: FPNode | None = None

    def __repr__(self) -> str:
        return f"FPNode({self.item!r}, count={self.count})"

    def prefix_path(self) -> list[str]:
        """Items on the path from this node's parent up to the root."""
        path: list[str] = []
        node = self.parent
        while node is not None and node.item is not None:
            path.append(node.item)
            node = node.parent
        path.reverse()
        return path


class FPTree:
    """An FP-tree over weighted transactions.

    Parameters
    ----------
    transactions:
        ``(items, weight)`` pairs. Weights are how conditional pattern
        bases re-enter tree construction; plain databases use weight 1.
    min_count:
        Items whose total weighted count falls below this are dropped
        before insertion (they cannot take part in frequent patterns).
    """

    def __init__(
        self,
        transactions: Iterable[tuple[Iterable[str], int]],
        min_count: int,
    ) -> None:
        transactions = [(tuple(items), int(weight)) for items, weight in transactions]
        counts: dict[str, int] = {}
        for items, weight in transactions:
            for item in set(items):
                counts[item] = counts.get(item, 0) + weight
        self.item_counts: dict[str, int] = {
            item: count for item, count in counts.items() if count >= min_count
        }
        # Descending frequency, ties broken lexicographically for determinism.
        self._order: dict[str, tuple[int, str]] = {
            item: (-count, item) for item, count in self.item_counts.items()
        }
        self.root = FPNode(None, None)
        self.header: dict[str, FPNode] = {}
        self._header_tail: dict[str, FPNode] = {}
        for items, weight in transactions:
            filtered = sorted(
                {i for i in items if i in self.item_counts},
                key=self._order.__getitem__,
            )
            if filtered:
                self._insert(filtered, weight)

    def _insert(self, items: list[str], weight: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                tail = self._header_tail.get(item)
                if tail is None:
                    self.header[item] = child
                else:
                    tail.next_same_item = child
                self._header_tail[item] = child
            child.count += weight
            node = child

    # -- queries -----------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when no transaction survived the frequency filter."""
        return not self.root.children

    def nodes_of(self, item: str) -> Iterator[FPNode]:
        """All nodes carrying ``item``, via the header-table links."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.next_same_item

    def conditional_pattern_base(self, item: str) -> list[tuple[list[str], int]]:
        """Prefix paths of ``item`` with the item-node counts as weights."""
        base: list[tuple[list[str], int]] = []
        for node in self.nodes_of(item):
            path = node.prefix_path()
            if path:
                base.append((path, node.count))
        return base

    def single_path(self) -> list[tuple[str, int]] | None:
        """The unique root-to-leaf path if the tree is one path, else ``None``."""
        path: list[tuple[str, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (child,) = node.children.values()
            path.append((child.item, child.count))  # type: ignore[arg-type]
            node = child
        return path

    def items_ascending(self) -> list[str]:
        """Items ordered by ascending frequency (FP-Growth's suffix order)."""
        return sorted(self.item_counts, key=self._order.__getitem__, reverse=True)
