"""The serving API's JSON wire format: question and answer documents.

Rules travel as the canonical text key of
:func:`repro.storage.records.rule_key` — the same unicode-safe,
round-trippable encoding the answer log and the SQL rules table use —
so every persistence surface and the wire agree on what a rule *is*.
Stats travel as plain floats; Python's ``repr``-based JSON float
encoding round-trips exactly, which is what lets a fingerprint
computed from answers that crossed the wire match one computed
entirely in-process, byte for byte.

Question documents (server → client)::

    {"question_id": "q7", "member": "w3", "kind": "closed",
     "rule": "[[\\"tea\\"],[\\"honey\\"]]"}
    {"question_id": "q8", "member": "w0", "kind": "open",
     "context": ["headache"] | null,
     "exclude": ["<rule key>", ...]}

An open question carries the rules the knowledge base already knows
(``exclude``) and the optional specialization context, because the
member's answer depends on both — exactly the information a rendered
question form would show a human ("tell us something we don't already
know about situations involving X").

Answer documents (client → server)::

    {"support": 0.4, "confidence": 0.7}                  # closed
    {"empty": true}                                      # open, nothing new
    {"rule": "<rule key>", "support": .., "confidence": ..}  # open, volunteered
    {"malformed": {"text": "...", "error": "..."}}       # reply never parsed
    {"gone": true}                                       # member left instead
    ... any of the above plus "leaving": true            # last answer, then gone

Anything that does not validate — missing fields, out-of-range or
inconsistent stats, an unparseable rule key — is folded into a
:class:`~repro.crowd.questions.MalformedAnswer` rather than an HTTP
error: a garbage reply is crowd behaviour, not a protocol violation,
and the miner's validation gate already knows how to count and drop
it.
"""

from __future__ import annotations

from typing import Any

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.crowd.questions import (
    AnyAnswer,
    ClosedAnswer,
    ClosedQuestion,
    MalformedAnswer,
    OpenAnswer,
    OpenQuestion,
)
from repro.errors import ReproError
from repro.io import PersistenceError
from repro.miner.crowdminer import QuestionProposal
from repro.miner.result import QuestionKind
from repro.storage.records import rule_from_key, rule_key


def question_to_doc(
    question_id: str,
    proposal: QuestionProposal,
    exclude: set | None = None,
) -> dict[str, Any]:
    """Render one proposal as its wire document.

    ``exclude`` is the knowledge base's known-rule set at issue time
    (open questions only) — snapshotted here exactly as
    :meth:`~repro.miner.crowdminer.CrowdMiner.pose_async` snapshots it,
    so a client-side oracle answers from the same information a posed
    form would have shown.
    """
    doc: dict[str, Any] = {
        "question_id": question_id,
        "member": proposal.member_id,
        "kind": proposal.kind.value,
    }
    if proposal.kind is QuestionKind.CLOSED:
        assert proposal.rule is not None
        doc["rule"] = rule_key(proposal.rule)
    else:
        doc["context"] = (
            None if proposal.context is None else list(proposal.context.items)
        )
        doc["exclude"] = sorted(rule_key(rule) for rule in (exclude or ()))
    return doc


def answer_to_doc(answer: AnyAnswer) -> dict[str, Any]:
    """Render a member's in-process answer as its wire document."""
    if isinstance(answer, MalformedAnswer):
        return {"malformed": {"text": answer.raw_text, "error": answer.error}}
    if isinstance(answer, ClosedAnswer):
        return {
            "support": answer.stats.support,
            "confidence": answer.stats.confidence,
        }
    assert isinstance(answer, OpenAnswer)
    if answer.is_empty:
        return {"empty": True}
    assert answer.rule is not None and answer.stats is not None
    return {
        "rule": rule_key(answer.rule),
        "support": answer.stats.support,
        "confidence": answer.stats.confidence,
    }


def _stats_from_doc(doc: dict[str, Any]) -> RuleStats:
    """Parse and validate the stats pair (raises on anything off)."""
    support = doc["support"]
    confidence = doc["confidence"]
    if isinstance(support, bool) or isinstance(confidence, bool):
        raise TypeError("support/confidence must be numbers")
    return RuleStats(float(support), float(confidence))


def answer_from_doc(
    proposal: QuestionProposal, doc: dict[str, Any]
) -> AnyAnswer:
    """Parse one answer document against its proposal.

    Returns the typed answer, or a
    :class:`~repro.crowd.questions.MalformedAnswer` when the document
    does not validate — same contract as a human front-end's reply
    parser, so the miner's gate handles wire garbage and simulated
    garbage identically.
    """
    member_id = proposal.member_id
    if proposal.kind is QuestionKind.CLOSED:
        assert proposal.rule is not None
        question: ClosedQuestion | OpenQuestion = ClosedQuestion(proposal.rule)
    else:
        question = OpenQuestion(proposal.context or Itemset.empty())

    def malformed(error: str) -> MalformedAnswer:
        return MalformedAnswer(
            member_id=member_id,
            question=question,
            raw_text=repr(doc),
            error=error,
        )

    if not isinstance(doc, dict):
        return malformed("answer must be a JSON object")
    reported = doc.get("malformed")
    if reported is not None:
        detail = reported if isinstance(reported, dict) else {}
        return MalformedAnswer(
            member_id=member_id,
            question=question,
            raw_text=str(detail.get("text", "")),
            error=str(detail.get("error", "unparseable reply")),
        )
    if proposal.kind is QuestionKind.CLOSED:
        assert isinstance(question, ClosedQuestion)
        try:
            stats = _stats_from_doc(doc)
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            # ReproError covers RuleStats validation (out-of-range or
            # inconsistent support/confidence) — garbage numbers are
            # still crowd behaviour, not a server fault.
            return malformed(f"bad closed answer: {exc}")
        return ClosedAnswer(member_id=member_id, question=question, stats=stats)
    assert isinstance(question, OpenQuestion)
    if doc.get("empty"):
        return OpenAnswer(
            member_id=member_id, question=question, rule=None, stats=None
        )
    try:
        rule = rule_from_key(doc["rule"])
        stats = _stats_from_doc(doc)
    except (KeyError, TypeError, ValueError, ReproError, PersistenceError) as exc:
        return malformed(f"bad open answer: {exc}")
    return OpenAnswer(member_id=member_id, question=question, rule=rule, stats=stats)
