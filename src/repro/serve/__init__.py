"""Real-time serving surface for live mining sessions.

The simulated :class:`~repro.dispatch.EventClock` world of
:mod:`repro.dispatch` made the miner's asynchrony *testable*; this
package makes it *deployable* without giving that up. A
:class:`RealTimeClock` satisfies the same
:class:`~repro.dispatch.SchedulerClock` contract over asyncio
monotonic time, a :class:`ServeSession` replays the dispatcher's
single-writer issue/ingest books over an HTTP request stream, and the
:mod:`~repro.serve.differential` harness pins the whole stack to the
synchronous reference transcript: same seeds, byte-identical
knowledge-base fingerprints, across a real network boundary and a wall
clock. See ``docs/serving.md``.
"""

from repro.serve.app import MinerServer, ServerLimits, serve_forever
from repro.serve.clock import RealTimeClock
from repro.serve.differential import (
    Scenario,
    SimulatedWorkerPool,
    drive_inprocess,
    drive_session,
    run_dispatch,
    run_serve,
    run_session_inprocess,
    run_sync,
)
from repro.serve.http import HttpError, JsonClient, RetryingClient
from repro.serve.roster import WorkerRoster
from repro.serve.session import (
    ServeConfig,
    ServeError,
    ServeSession,
    ServeSnapshot,
    SessionManager,
)
from repro.serve.wire import answer_from_doc, answer_to_doc, question_to_doc

__all__ = [
    "HttpError",
    "JsonClient",
    "MinerServer",
    "RealTimeClock",
    "RetryingClient",
    "Scenario",
    "ServeConfig",
    "ServerLimits",
    "ServeError",
    "ServeSession",
    "ServeSnapshot",
    "SessionManager",
    "SimulatedWorkerPool",
    "WorkerRoster",
    "answer_from_doc",
    "answer_to_doc",
    "drive_inprocess",
    "drive_session",
    "question_to_doc",
    "run_dispatch",
    "run_serve",
    "run_session_inprocess",
    "run_sync",
    "serve_forever",
]
