"""Minimal HTTP/1.1 plumbing over asyncio streams — stdlib only.

Just enough protocol for a JSON task-queue API: request-line + headers
parsing with size limits, ``Content-Length`` bodies (chunked uploads
are refused with 411), keep-alive by default, and a matching
:class:`JsonClient` for tests, benchmarks and the differential
harness. Deliberately not a web framework — the routing table lives in
:mod:`repro.serve.app` and fits in one function.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass
from typing import Any
from urllib.parse import parse_qs, urlsplit

#: Limits keeping one bad client from holding the process hostage.
MAX_LINE = 8 * 1024
MAX_HEADERS = 64
MAX_BODY = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        """The body parsed as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    def query_int(self, name: str) -> int | None:
        """An integer query parameter, or ``None`` when absent."""
        values = self.query.get(name)
        if not values:
            return None
        try:
            return int(values[-1])
        except ValueError as exc:
            raise HttpError(400, f"query parameter {name} must be an integer") from exc


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(line) > MAX_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target, _version = parts
    try:
        split = urlsplit(target)
    except ValueError:
        # e.g. ``//[bad`` — urlsplit rejects unbalanced IPv6 brackets.
        raise HttpError(400, "malformed request target") from None
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS or len(line) > MAX_LINE:
            raise HttpError(400, "too many or too large headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(411, "chunked requests are not supported; send a length")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed content-length") from None
        if length < 0 or length > MAX_BODY:
            raise HttpError(413, f"body too large (limit {MAX_BODY} bytes)")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated body") from None
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    doc: Any,
    *,
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """One JSON response, wire-encoded.

    ``headers`` adds extra response headers (e.g. ``Retry-After`` on a
    backpressure 429) after the standard set.
    """
    body = b"" if doc is None else (json.dumps(doc) + "\n").encode()
    reason = REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("latin-1") + body


# -- the client ----------------------------------------------------------------


class JsonClient:
    """A tiny keep-alive JSON client for the serving API.

    One connection, reused across requests. A failure on a *reused*
    connection — the server closed its end between requests (idle
    timeout, drain) and the stale socket only surfaces it on the next
    use — reconnects once and replays the request transparently. A
    failure on a *fresh* connection is a real fault (server down,
    request eaten mid-flight) and surfaces to the caller: blind
    replay belongs in :class:`RetryingClient`, whose backoff and
    idempotency keys make it safe.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: Response headers of the last completed roundtrip
        #: (lower-cased names) — ``Retry-After`` for the retry layer.
        self.last_headers: dict[str, str] = {}

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def aclose(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(
        self, method: str, path: str, doc: Any = None
    ) -> tuple[int, Any]:
        """Send one request; returns ``(status, parsed_body)``."""
        reused = self._writer is not None
        try:
            return await self._roundtrip(method, path, doc)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.aclose()
            if not reused:
                raise
            # Stale keep-alive socket: the server hung up between
            # requests. One reconnect, one replay — the request never
            # reached the new connection, so nothing can double-count.
            return await self._roundtrip(method, path, doc)

    async def _roundtrip(
        self, method: str, path: str, doc: Any
    ) -> tuple[int, Any]:
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if doc is None else json.dumps(doc).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2:
            raise ConnectionError("malformed status line")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        payload = await self._reader.readexactly(length) if length else b""
        self.last_headers = headers
        if headers.get("connection", "").lower() == "close":
            await self.aclose()
        return status, (json.loads(payload) if payload else None)


class RetryingClient:
    """Seeded capped-exponential-backoff retries over any JSON client.

    The client-side half of the exactly-once story: transport faults
    (connection resets, dropped responses) and overload rejections
    (429/503, ``Retry-After`` honored) are retried with the *same*
    request body — callers put an idempotency key in the body, so the
    server folds every replay into the first delivery. Backoff delays
    come from a seeded RNG: chaos tests stay reproducible.
    """

    RETRY_STATUSES = frozenset({429, 503})

    def __init__(
        self,
        client: Any,
        *,
        seed: int = 0,
        max_attempts: int = 8,
        base_delay: float = 0.01,
        max_delay: float = 0.25,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.client = client
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        #: Transport-level replays (connection faults).
        self.retries = 0
        #: Overload rejections honored (429/503 + backoff).
        self.backoffs = 0

    @property
    def last_headers(self) -> dict[str, str]:
        return getattr(self.client, "last_headers", {})

    async def aclose(self) -> None:
        await self.client.aclose()

    def _delay(self, attempt: int) -> float:
        ceiling = min(self.max_delay, self.base_delay * (2**attempt))
        return ceiling * (0.5 + 0.5 * self._rng.random())

    async def request(
        self, method: str, path: str, doc: Any = None
    ) -> tuple[int, Any]:
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            try:
                status, body = await self.client.request(method, path, doc)
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                last_error = exc
                self.retries += 1
                await self.client.aclose()
                await asyncio.sleep(self._delay(attempt))
                continue
            if status in self.RETRY_STATUSES and attempt + 1 < self.max_attempts:
                self.backoffs += 1
                try:
                    hinted = float(self.last_headers.get("retry-after", "0"))
                except ValueError:
                    hinted = 0.0
                await asyncio.sleep(max(hinted, self._delay(attempt)))
                continue
            return status, body
        raise ConnectionError(
            f"{method} {path} failed after {self.max_attempts} attempts"
        ) from last_error
