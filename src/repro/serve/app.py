"""The asyncio HTTP server fronting live mining sessions.

Routes (all JSON; see :mod:`repro.serve.wire` for the documents):

========  =================================  ====================================
GET       /healthz                           liveness + session count
POST      /v1/sessions                       create a session (spec in body)
GET       /v1/sessions                       list sessions
GET       /v1/sessions/{id}                  one session's status
POST      /v1/sessions/{id}/question         fetch the next question
POST      /v1/sessions/{id}/answer           post an answer ({question_id, answer})
GET       /v1/sessions/{id}/kb               inspect the knowledge base (?top=K)
GET       /v1/sessions/{id}/result           result summary + fingerprint
POST      /v1/sessions/{id}/checkpoint       force a checkpoint now
DELETE    /v1/sessions/{id}                  drain and forget one session
POST      /v1/shutdown                       graceful drain-and-exit
========  =================================  ====================================

Concurrency model: the routing function is *synchronous* — every
session mutation runs between awaits on the one event loop, so two
clients posting to the same session can never interleave inside an
ingest (the same single-writer guarantee the dispatcher's event loop
gives, with asyncio's run-to-completion semantics standing in for the
simulated clock's one-event-at-a-time).

Shutdown: ``SIGTERM``/``SIGINT`` (or POST /v1/shutdown) stop accepting
connections, drain every session — final checkpoint through
:mod:`repro.storage`, outstanding questions captured for re-offer —
then let :meth:`MinerServer.run` return so the process exits 0. A
``kill -9`` instead costs at most the answers since the last
checkpoint, which resume rolls back anyway: same durability ladder as
every other execution mode (``docs/persistence.md``).
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from dataclasses import dataclass
from typing import Any

from repro.serve.http import HttpError, encode_response, read_request
from repro.serve.session import ServeError, SessionManager


@dataclass(frozen=True, slots=True)
class ServerLimits:
    """Overload bounds protecting the process, not one session.

    ``max_connections`` caps concurrently-open sockets: the excess get
    an immediate 503 + ``Retry-After`` and a close, instead of growing
    an unbounded task set. ``retry_after`` is the back-off hint (wall
    seconds) stamped on every 429/503 this server emits.
    """

    max_connections: int = 256
    retry_after: float = 0.05

    @property
    def retry_after_header(self) -> dict[str, str]:
        return {"Retry-After": f"{self.retry_after:g}"}


class MinerServer:
    """One HTTP server over one :class:`SessionManager`."""

    def __init__(
        self,
        manager: SessionManager,
        host: str = "127.0.0.1",
        port: int = 8765,
        limits: ServerLimits | None = None,
        request_hook: Any = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.limits = limits or ServerLimits()
        #: Chaos seam: called with each parsed request before routing
        #: (the kill-schedule runner SIGKILLs mid-request here).
        self.request_hook = request_hook
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._aborted = False
        self._connections: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and arm the wall clock's runner."""
        self.manager.clock.start()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (idempotent, safe from signal handlers)."""
        self._shutdown.set()

    async def run(self, install_signals: bool = True, ready=None) -> int:
        """Serve until shutdown; returns the number of sessions drained.

        ``ready`` is called with the server once it is accepting
        connections *and* the signal handlers are armed — announcing
        the address any earlier would invite a SIGTERM into the gap
        where the default handler still kills the process.
        """
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        try:
            if ready is not None:
                ready(self)
            await self._shutdown.wait()
            if self._aborted:
                return 0  # crashed by the chaos harness: no drain
            return await self._graceful_stop()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    async def abort(self) -> None:
        """Crash the server: no drain, no final checkpoint, no mercy.

        The in-process stand-in for ``kill -9`` in the chaos harness:
        the listening socket closes, every connection is cut
        mid-whatever, and each session's storage discards its
        uncommitted batch — leaving exactly the on-disk state a real
        SIGKILL would. The cross-process kill tests pin that this
        equivalence actually holds.
        """
        self._aborted = True
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.manager.abort_all()
        await self.manager.clock.stop()

    async def _graceful_stop(self) -> int:
        """Stop accepting, finish in-flight requests, drain sessions."""
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Give in-flight request handlers one loop turn to finish the
        # response they are writing, then cut the stragglers.
        for _ in range(20):
            if not self._connections:
                break
            await asyncio.sleep(0.05)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        drained = self.manager.drain_all()
        await self.manager.clock.stop()
        return drained

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        if len(self._connections) >= self.limits.max_connections:
            # Accept-time backpressure: shed the connection before it
            # can queue work, with a hint when to come back.
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    encode_response(
                        503,
                        {"error": "server at connection limit"},
                        keep_alive=False,
                        headers=self.limits.retry_after_header,
                    )
                )
                await writer.drain()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()
            return
        self._connections.add(task)
        try:
            while not self._shutdown.is_set():
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        encode_response(
                            exc.status, {"error": exc.message}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, doc, headers = self._dispatch(request)
                keep = request.keep_alive and not self._shutdown.is_set()
                writer.write(
                    encode_response(status, doc, keep_alive=keep, headers=headers)
                )
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.CancelledError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    # -- routing ---------------------------------------------------------------

    def _dispatch(self, request) -> tuple[int, Any, dict[str, str] | None]:
        try:
            if self.request_hook is not None:
                self.request_hook(request)
            outcome = self._route(request)
        except HttpError as exc:
            return exc.status, {"error": exc.message}, None
        except ServeError as exc:
            return 400, {"error": str(exc)}, None
        except KeyError as exc:
            return 404, {"error": f"no such session: {exc.args[0]!r}"}, None
        except Exception as exc:  # one broken request must not kill the server
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, None
        if len(outcome) == 2:
            status, doc = outcome
            return status, doc, None
        return outcome

    def _route(self, request) -> tuple[int, Any]:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", "sessions": len(self.manager.sessions)}
        if path == "/v1/shutdown" and method == "POST":
            self.request_shutdown()
            return 200, {"status": "draining", "sessions": len(self.manager.sessions)}
        if path == "/v1/sessions":
            if method == "POST":
                session = self.manager.create(request.json())
                return 201, session.status_doc()
            if method == "GET":
                return 200, self.manager.list_doc()
            return 405, {"error": f"{method} not allowed on {path}"}
        if path.startswith("/v1/sessions/"):
            rest = path[len("/v1/sessions/") :]
            session_id, _, action = rest.partition("/")
            session = self.manager.get(session_id)
            if not action:
                if method == "GET":
                    return 200, session.status_doc()
                if method == "DELETE":
                    self.manager.delete(session_id)
                    return 200, {"status": "deleted", "session": session_id}
                return 405, {"error": f"{method} not allowed on {path}"}
            if action == "question" and method == "POST":
                doc = request.json()
                key = doc.get("idempotency_key") if isinstance(doc, dict) else None
                if session.overloaded and not session.knows_key(key):
                    session.count_backpressure()
                    return (
                        429,
                        {
                            "status": "overloaded",
                            "outstanding": session.outstanding,
                        },
                        self.limits.retry_after_header,
                    )
                return 200, session.next_question(idempotency_key=key)
            if action == "answer" and method == "POST":
                doc = request.json()
                if not isinstance(doc, dict) or "question_id" not in doc:
                    raise HttpError(400, "post {question_id, answer}")
                return 200, session.post_answer(
                    str(doc["question_id"]),
                    doc.get("answer"),
                    idempotency_key=doc.get("idempotency_key"),
                )
            if action == "kb" and method == "GET":
                return 200, session.kb_doc(top=request.query_int("top"))
            if action == "result" and method == "GET":
                result = session.result()
                return 200, {
                    "session": session.session_id,
                    "fingerprint": result.fingerprint(),
                    "questions_asked": result.questions_asked,
                    "significant_rules": len(result.significant),
                    "rules_discovered": result.rules_discovered,
                    "serve": session.stats(),
                }
            if action == "checkpoint" and method == "POST":
                info = session.miner.checkpoint()
                if info is None:
                    return 200, {"status": "ephemeral", "session": session_id}
                return 200, {
                    "status": "saved",
                    "session": session_id,
                    "checkpoint_id": info.checkpoint_id,
                    "questions": info.questions,
                }
            return 404, {"error": f"unknown endpoint {path}"}
        return 404, {"error": f"unknown endpoint {path}"}


async def serve_forever(
    host: str,
    port: int,
    data_dir=None,
    resume: bool = False,
    ready=None,
    repair: bool = False,
    limits: ServerLimits | None = None,
    storage_wrapper=None,
    request_hook=None,
) -> int:
    """Build manager + server, run until a signal; returns sessions drained.

    ``ready`` is an optional callback receiving the bound server once
    it is accepting connections (the CLI prints the address; tests grab
    the ephemeral port). ``repair`` scrubs each store on resume and
    falls back past corrupt checkpoints; ``storage_wrapper`` and
    ``request_hook`` are the chaos seams (fault-injecting backend
    wrapper, per-request kill switch).
    """
    manager = SessionManager(data_dir=data_dir, storage_wrapper=storage_wrapper)
    if resume:
        manager.resume_all(repair=repair)
    server = MinerServer(manager, host, port, limits=limits, request_hook=request_hook)
    await server.start()
    return await server.run(ready=ready)
