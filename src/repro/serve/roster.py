"""The serving crowd: external members as a scheduling surface.

A live session's members are real people behind the HTTP API — the
server cannot answer for them, it can only decide *who is asked next*.
:class:`WorkerRoster` is therefore the crowd with everything but
scheduling removed: the same round-robin ``next_member`` contract as
:class:`~repro.crowd.crowd.SimulatedCrowd` (same cursor arithmetic,
same exhausted/None distinction), the same availability and quarantine
surface the miner reads, and *no* answer machinery — posing a question
to a roster raises, because answers arrive over the wire
(:meth:`~repro.serve.session.ServeSession.post_answer`), never from a
personal database held by the server.

Availability changes arrive as facts, not simulations: a client
reports a member gone (their patience ran out, they closed the tab)
via :meth:`depart`, and the quality loop calls :meth:`quarantine`
exactly as it does on a simulated crowd. Keeping the cursor arithmetic
identical to the simulated crowd's legacy scan path is what makes a
sequentially-driven live session schedule the *same member sequence*
as ``miner.run()`` over a simulated crowd — the bedrock of the
differential harness's byte-identity assertion.

The roster is plain picklable data, so it travels inside the session
checkpoint and the member rotation resumes mid-turn.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.errors import CrowdExhaustedError


class WorkerRoster:
    """Round-robin scheduling over externally-managed members."""

    def __init__(self, member_ids: Sequence[str]) -> None:
        ids = list(member_ids)
        if not ids:
            raise CrowdExhaustedError("a roster needs at least one member")
        if len(set(ids)) != len(ids):
            raise ValueError("member ids must be unique")
        self._order: list[str] = ids
        self._gone: set[str] = set()
        self._quarantined: set[str] = set()
        self._rr_cursor = 0

    # -- membership ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    @property
    def member_ids(self) -> list[str]:
        """All member ids, in registration order."""
        return list(self._order)

    def available_members(self) -> list[str]:
        """Ids still routable (not departed, not quarantined), in order."""
        return [
            mid
            for mid in self._order
            if mid not in self._gone and mid not in self._quarantined
        ]

    def available_count(self) -> int:
        """How many members are still routable."""
        return len(self._order) - len(self._gone | self._quarantined)

    def is_member_available(self, member_id: str) -> bool:
        """True when ``member_id`` may still be routed a question."""
        if member_id not in self._order:
            return False
        return member_id not in self._gone and member_id not in self._quarantined

    # -- availability facts ----------------------------------------------------

    def depart(self, member_id: str) -> None:
        """Record that ``member_id`` left the session for good. Idempotent."""
        if member_id not in self._order:
            raise KeyError(f"unknown member {member_id!r}")
        self._gone.add(member_id)

    def crash(self, member_id: str) -> None:
        """Fault-surface alias of :meth:`depart` (the injector's verb)."""
        self.depart(member_id)

    def quarantine(self, member_id: str) -> None:
        """Stop routing questions to ``member_id``. Idempotent."""
        if member_id not in self._order:
            raise KeyError(f"unknown member {member_id!r}")
        self._quarantined.add(member_id)

    def is_quarantined(self, member_id: str) -> bool:
        """True when the member is barred from routing."""
        return member_id in self._quarantined

    @property
    def quarantined_members(self) -> set[str]:
        """Ids currently under quarantine (a copy)."""
        return set(self._quarantined)

    # -- scheduling ------------------------------------------------------------

    def next_member(self, exclude: Collection[str] = ()) -> str | None:
        """Round-robin over available members, skipping ``exclude``.

        Identical contract (and cursor arithmetic) to
        :meth:`SimulatedCrowd.next_member
        <repro.crowd.crowd.SimulatedCrowd.next_member>`: raises
        :class:`~repro.errors.CrowdExhaustedError` when everyone has
        left, returns ``None`` when every available member is excluded
        (nobody free *right now*), and only a successful pick advances
        the rotation cursor.
        """
        available = self.available_members()
        if not available:
            raise CrowdExhaustedError("every roster member has left the session")
        if exclude:
            candidates = [mid for mid in available if mid not in exclude]
            if not candidates:
                return None
        else:
            candidates = available
        member_id = candidates[self._rr_cursor % len(candidates)]
        self._rr_cursor += 1
        return member_id

    # -- the question protocol (absent on purpose) ------------------------------

    def ask_closed(self, member_id: str, rule) -> None:
        raise TypeError(
            "roster members answer over the serving API, not in-process; "
            "drive this session through ServeSession, not miner.run()"
        )

    def ask_open(self, member_id: str, exclude=None, context=None) -> None:
        raise TypeError(
            "roster members answer over the serving API, not in-process; "
            "drive this session through ServeSession, not miner.run()"
        )
