"""The sim-vs-real differential harness.

One seeded :class:`Scenario` describes a complete world — domain
model, crowd composition, miner configuration — and the harness drives
that *same* world through the repo's execution modes:

- :func:`run_sync` — ``miner.run()``, the reference transcript;
- :func:`run_dispatch` — the simulated-clock :class:`Dispatcher`
  (window/shards/latency configurable), the PR 2/PR 7 rung;
- :func:`run_serve` — the live asyncio service: an in-process
  :class:`~repro.serve.app.MinerServer` on an ephemeral port, a
  :class:`SimulatedWorkerPool` answering over real HTTP exactly as the
  in-process crowd would, and the session's result fetched back over
  the wire.

Same seeds ⇒ byte-identical
:meth:`~repro.miner.result.MiningResult.fingerprint` across all three
— the serving surface's equivalence-ladder rung, extending the
``window=1 ≡ sync`` discipline of ``docs/scaling.md`` across a real
network boundary and a wall clock. The worker pool is the client-side
half of the determinism argument: it owns a crowd built from the very
same seeds, answers each question by *asking its own simulated member*
(consuming the member's RNG exactly once per question id — re-fetches
and post-resume re-offers replay the memoized answer), and reports
departures (``gone``/``leaving``) so the server's roster tracks the
same availability set the sync scheduler sees.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.core.itemset import Itemset
from repro.crowd import standard_answer_model
from repro.crowd.crowd import SimulatedCrowd
from repro.errors import CrowdExhaustedError
from repro.estimation import Thresholds
from repro.faults import build_adversarial_crowd
from repro.miner.crowdminer import CrowdMiner, CrowdMinerConfig
from repro.miner.result import MiningResult
from repro.serve.app import MinerServer
from repro.serve.http import JsonClient
from repro.serve.session import ServeConfig, ServeSession, SessionManager
from repro.serve.wire import answer_to_doc
from repro.storage.records import rule_from_key
from repro.synth import NAMED_MODELS, build_population


@dataclass(frozen=True, slots=True)
class Scenario:
    """One fully-seeded world to replay across execution modes."""

    domain: str = "folk_remedies"
    n_members: int = 12
    transactions_per_member: int = 80
    budget: int = 120
    support: float = 0.10
    confidence: float = 0.50
    model_seed: int = 11
    crowd_seed: int = 12
    miner_seed: int = 13
    patience: int | None = None
    adversary_mix: tuple[tuple[str, float], ...] = ()
    quarantine: bool = False
    reestimate_every: int = 10
    contextual_open_fraction: float = 0.0

    def build_crowd(self) -> SimulatedCrowd:
        """A fresh crowd for this world — deterministic from the seeds."""
        model = NAMED_MODELS[self.domain](seed=self.model_seed)
        population = build_population(
            model,
            n_members=self.n_members,
            transactions_per_member=self.transactions_per_member,
            seed=self.model_seed + 1,
        )
        crowd, _roles = build_adversarial_crowd(
            population,
            self.adversary_mix,
            answer_model=standard_answer_model(),
            patience=self.patience,
            seed=self.crowd_seed,
        )
        return crowd

    def miner_config(self, checkpoint_every: int = 0) -> CrowdMinerConfig:
        return CrowdMinerConfig(
            thresholds=Thresholds(self.support, self.confidence),
            budget=self.budget,
            quarantine=self.quarantine,
            reestimate_every=self.reestimate_every,
            contextual_open_fraction=self.contextual_open_fraction,
            checkpoint_every=checkpoint_every,
            seed=self.miner_seed,
        )

    def session_spec(self, member_ids: list[str], **overrides: Any) -> dict:
        """The POST /v1/sessions document for this world."""
        doc: dict[str, Any] = {
            "members": member_ids,
            "support": self.support,
            "confidence": self.confidence,
            "budget": self.budget,
            "seed": self.miner_seed,
            "quarantine": self.quarantine,
            "reestimate_every": self.reestimate_every,
            "contextual_open_fraction": self.contextual_open_fraction,
        }
        doc.update(overrides)
        return doc


# -- reference runs ------------------------------------------------------------


def run_sync(scenario: Scenario) -> MiningResult:
    """The synchronous reference transcript."""
    crowd = scenario.build_crowd()
    miner = CrowdMiner(crowd, scenario.miner_config())
    return miner.run()


def run_dispatch(
    scenario: Scenario,
    *,
    window: int = 1,
    shards: int = 1,
    latency: str = "0",
) -> MiningResult:
    """The simulated-clock dispatched transcript (stats attached)."""
    from repro.dispatch import DispatchConfig, Dispatcher, ShardedDispatcher
    from repro.dispatch.latency import parse_latency

    crowd = scenario.build_crowd()
    miner = CrowdMiner(crowd, scenario.miner_config())
    config = DispatchConfig(
        window=window,
        latency=parse_latency(latency),
        seed=scenario.miner_seed + 1000,
    )
    if shards > 1:
        dispatcher: Dispatcher | ShardedDispatcher = ShardedDispatcher(
            miner, config, shards=shards
        )
    else:
        dispatcher = Dispatcher(miner, config)
    return dispatcher.run()


# -- the live client -----------------------------------------------------------


@dataclass
class SimulatedWorkerPool:
    """The client-side crowd oracle behind the differential drive.

    Holds the same :class:`SimulatedCrowd` the sync run owns and
    answers wire questions by asking it. Answers are memoized by
    question id: every member RNG draw happens exactly once per
    question, however many times the question is (re-)offered across
    connection retries or a server restart.
    """

    crowd: SimulatedCrowd
    memo: dict[str, dict[str, Any]] = field(default_factory=dict)
    answered: int = 0

    def answer(self, question: dict[str, Any]) -> dict[str, Any]:
        qid = question["question_id"]
        cached = self.memo.get(qid)
        if cached is not None:
            return cached
        member_id = question["member"]
        try:
            if question["kind"] == "closed":
                answer = self.crowd.ask_closed(
                    member_id, rule_from_key(question["rule"])
                )
            else:
                context = question.get("context")
                answer = self.crowd.ask_open(
                    member_id,
                    exclude={rule_from_key(key) for key in question["exclude"]},
                    context=None if context is None else Itemset(context),
                )
            doc = answer_to_doc(answer)
            if not self.crowd.is_member_available(member_id):
                # Patience ran out on this very answer: tell the server
                # so its roster mirrors the simulated availability flip.
                doc["leaving"] = True
            self.answered += 1
        except CrowdExhaustedError:
            doc = {"gone": True}
        self.memo[qid] = doc
        return doc


async def drive_session(
    client: JsonClient,
    session_id: str,
    pool: SimulatedWorkerPool,
    *,
    poll_delay: float = 0.02,
    max_polls: int = 500,
    key_prefix: str | None = None,
    stop_after: int | None = None,
) -> dict[str, Any]:
    """Fetch/answer until the session reports done; returns final status.

    ``stop_after`` stops driving once the pool has computed that many
    fresh answers (``{"status": "crashed"}`` is returned) — the chaos
    harness's crash schedules are expressed in client progress.

    ``key_prefix`` arms exactly-once idempotency keys on every fetch
    and answer post (fetch keys ``{prefix}f{n}``, answer keys
    ``a-{question_id}``) — the client half of the dedup contract in
    ``docs/serving.md``. It must be unique per drive *phase*: a resumed
    drive reusing pre-crash fetch keys would replay stale hand-outs
    out of the rolled-back dedup table. Answer keys are derived from
    the question id, safe across phases because a re-offered question
    carries the same id and the same memoized answer.
    """
    polls = 0
    fetches = 0
    while True:
        fetch_doc = None
        if key_prefix is not None:
            fetch_doc = {"idempotency_key": f"{key_prefix}f{fetches}"}
            fetches += 1
        status, doc = await client.request(
            "POST", f"/v1/sessions/{session_id}/question", fetch_doc
        )
        if status in (429, 503):
            # Backpressure from a plain (non-retrying) client's view:
            # honor the hint and poll again with a fresh key.
            polls += 1
            if polls > max_polls:
                raise TimeoutError(f"session {session_id} shedding load: {doc!r}")
            try:
                hinted = float(client.last_headers.get("retry-after", "0"))
            except (AttributeError, ValueError):
                hinted = 0.0
            await asyncio.sleep(max(hinted, poll_delay))
            continue
        state = doc["status"]
        if state == "done":
            return doc.get("state", doc)
        if state in ("wait", "draining"):
            polls += 1
            if polls > max_polls:
                raise TimeoutError(
                    f"session {session_id} stuck waiting: {doc!r}"
                )
            await asyncio.sleep(poll_delay)
            continue
        polls = 0
        question = doc["question"]
        answer_doc = {
            "question_id": question["question_id"],
            "answer": pool.answer(question),
        }
        if key_prefix is not None:
            answer_doc["idempotency_key"] = f"a-{question['question_id']}"
        await client.request(
            "POST", f"/v1/sessions/{session_id}/answer", answer_doc
        )
        if stop_after is not None and pool.answered >= stop_after:
            return {"status": "crashed"}


async def _serve_once(
    scenario: Scenario, data_dir, session_overrides: dict[str, Any]
) -> dict[str, Any]:
    crowd = scenario.build_crowd()
    pool = SimulatedWorkerPool(crowd)
    manager = SessionManager(data_dir=data_dir)
    server = MinerServer(manager, "127.0.0.1", 0)
    await server.start()
    run_task = asyncio.create_task(server.run(install_signals=False))
    client = JsonClient("127.0.0.1", server.port)
    try:
        spec = scenario.session_spec(crowd.member_ids, **session_overrides)
        status, created = await client.request("POST", "/v1/sessions", spec)
        if status != 201:
            raise RuntimeError(f"session create failed: {created!r}")
        session_id = created["session"]
        await drive_session(client, session_id, pool)
        _status, result = await client.request(
            "GET", f"/v1/sessions/{session_id}/result"
        )
        return result
    finally:
        server.request_shutdown()
        await client.aclose()
        await run_task


def run_serve(
    scenario: Scenario,
    *,
    data_dir=None,
    **session_overrides: Any,
) -> dict[str, Any]:
    """The live-service transcript, over real HTTP on an ephemeral port.

    Returns the wire result document (``fingerprint``,
    ``questions_asked``, the serve counters). ``data_dir`` makes the
    session durable; extra keywords override the session spec (e.g.
    ``checkpoint_every=5``).
    """
    return asyncio.run(_serve_once(scenario, data_dir, session_overrides))


def run_session_inprocess(
    scenario: Scenario,
    *,
    storage=None,
    config: ServeConfig | None = None,
    checkpoint_every: int = 0,
) -> tuple[ServeSession, SimulatedWorkerPool]:
    """A serve session driven without HTTP (unit-test convenience).

    Builds the roster-backed miner and the client-side pool; the caller
    drives ``next_question``/``post_answer`` directly (no event loop
    needed while ``config.timeout`` is ``None``).
    """
    from repro.serve.clock import RealTimeClock
    from repro.serve.roster import WorkerRoster

    crowd = scenario.build_crowd()
    pool = SimulatedWorkerPool(crowd)
    roster = WorkerRoster(crowd.member_ids)
    miner = CrowdMiner(
        roster, scenario.miner_config(checkpoint_every), storage=storage
    )
    session = ServeSession("local", miner, RealTimeClock(), config=config)
    return session, pool


def drive_inprocess(
    session: ServeSession, pool: SimulatedWorkerPool, *, max_steps: int = 100_000
) -> MiningResult:
    """Drive an in-process session to completion; returns its result."""
    for _ in range(max_steps):
        doc = session.next_question()
        if doc["status"] == "done":
            return session.result()
        if doc["status"] != "ok":
            raise RuntimeError(f"unexpected fetch outcome: {doc!r}")
        question = doc["question"]
        session.post_answer(question["question_id"], pool.answer(question))
    raise RuntimeError("session did not terminate")
