"""Live mining sessions: the single-writer ingest seam over wall time.

One :class:`ServeSession` wraps one :class:`~repro.miner.crowdminer.
CrowdMiner` over a :class:`~repro.serve.roster.WorkerRoster` and turns
the propose/pose/ingest seam (PR 2) into a pull-model task queue:

- **fetch** (:meth:`next_question`) — the scheduler picks the next
  member (same round-robin the sync loop runs), the miner proposes
  their question, and the session hands it out with a fresh question
  id, holding the proposal in its pending book;
- **post** (:meth:`post_answer`) — the answer document is parsed
  against the held proposal and folded into the knowledge base through
  the *same* ``ingest_answer`` gate every other execution mode uses.

Everything mutating a session runs synchronously between awaits on one
event loop — asyncio's run-to-completion atomicity is the concurrency
story, there are no locks to hold or forget. The miner remains a
single-writer ingest stream exactly as under the dispatcher; many
*sessions* run concurrently, one event loop serving them all.

Equivalence posture (pinned by ``tests/serve/test_differential*.py``):
a session driven sequentially — fetch, answer, fetch, answer — issues
the same member sequence, consumes the miner's RNG at the same points,
charges budget at the same instants, and ends for the same reasons as
``miner.run()`` over a simulated crowd, so the final KB fingerprints
are byte-identical. The serve-specific bookkeeping (question ids, the
pending book, timeout retries) deliberately consumes no randomness.

Durability: sessions checkpoint through :mod:`repro.storage` like any
other execution mode. The session registers itself as the miner's
``dispatcher`` so mid-ingest checkpoint requests defer to the answer
boundary, and its :meth:`serve_snapshot` rides inside the checkpoint
pickle: the pending book (questions handed out but unanswered at the
instant of capture) travels with the miner and is *re-offered* — same
question id, same member, same proposal — after resume, so a client
replaying answers cannot tell the restart happened. Abandoned
proposals already consumed miner RNG; re-offering instead of
re-proposing is what keeps the post-resume stream byte-identical.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError, CrowdExhaustedError, ReproError
from repro.estimation.significance import Thresholds
from repro.miner.crowdminer import CrowdMiner, CrowdMinerConfig, QuestionProposal
from repro.miner.result import MiningResult, QuestionKind
from repro.serve.clock import RealTimeClock
from repro.serve.roster import WorkerRoster
from repro.serve.wire import answer_from_doc, question_to_doc
from repro.storage.records import rule_from_key, rule_key


class ServeError(ReproError):
    """A serving-surface request could not be satisfied."""


#: Session ids double as checkpoint file stems; keep them path-safe.
_SESSION_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Travelling outcome counters of one serve session (see
#: :meth:`ServeSession.stats`). Every issue — reissues of timed-out
#: questions included, exactly as in the dispatcher's books — meets
#: one fate::
#:
#:     issued == answered + stale + malformed + rejected + gone
#:               + timeouts + outstanding
#:     timeouts == retried + dropped + retry_queued
#:
#: ``dedup_hits`` and ``backpressured`` sit *outside* the books: a
#: deduplicated replay touched nothing, a backpressure rejection
#: issued nothing — both count traffic, not question fates.
_COUNTERS = (
    "issued",
    "answered",
    "timeouts",
    "retried",
    "dropped",
    "stale",
    "malformed",
    "rejected",
    "gone",
    "unknown",
    "dedup_hits",
    "backpressured",
)

#: FIFO cap on each session's idempotency-key dedup table. Generous —
#: a session's whole question budget typically fits — but bounded, so
#: a client inventing endless keys cannot grow the checkpoint pickle
#: without limit.
_DEDUP_CAP = 4096


@dataclass(slots=True)
class ServeConfig:
    """Per-session serving knobs (wall-time behaviour only).

    ``timeout`` is wall seconds before a fetched-but-unanswered
    question is reclaimed and queued for reassignment (``None`` waits
    forever — the deterministic-test default); ``max_retries`` bounds
    reissues of one reclaimed question before it is dropped.
    ``max_outstanding`` bounds the hand-out queue: fetches beyond it
    are rejected with 429 + ``Retry-After`` (overload backpressure;
    ``0`` disables the bound).
    """

    timeout: float | None = None
    max_retries: int = 2
    max_outstanding: int = 0

    def __post_init__(self) -> None:
        if self.timeout is not None and not self.timeout > 0:
            raise ConfigurationError(
                f"timeout must be positive (or None), got {self.timeout!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if self.max_outstanding < 0:
            raise ConfigurationError(
                f"max_outstanding must be non-negative, got {self.max_outstanding!r}"
            )


@dataclass(slots=True)
class _Issued:
    """One handed-out question awaiting its answer."""

    question_id: str
    proposal: QuestionProposal
    attempt: int
    timeout_event: Any = None


@dataclass(slots=True)
class ServeSnapshot:
    """A serve session's travelling state, as plain checkpoint data.

    What rides in the checkpoint pickle next to the miner: the pending
    book in issue order (each entry keeping its question id, proposal
    and attempt count), the not-yet-reissued retry queue, the question
    id counter, the outcome counters and the stall bookkeeping.
    :func:`repro.storage.checkpoint._restore_dispatcher` returns this
    object for ``kind="serve"`` checkpoints;
    :meth:`SessionManager.resume_all` folds it back into a live
    session. Anything else trying to resume a serve checkpoint (the
    CLI's ``mine --resume``, the E-series harness) sees the type and
    refuses with a pointer to ``repro serve --resume``.
    """

    session_id: str
    config: ServeConfig
    pending: list[tuple[str, QuestionProposal, int]]
    retry: list[tuple[QuestionProposal, int]]
    next_qid: int
    counters: dict[str, int]
    stalled: bool
    dry_attempts: int
    #: Idempotency-key dedup table (key → stored response document).
    #: Riding in the checkpoint is what makes it correct: entries for
    #: answers ingested after the checkpoint roll back *together with*
    #: those answers, so a replayed post after resume re-ingests
    #: instead of hitting a dedup entry for evidence that no longer
    #: exists.
    dedup: dict[str, dict[str, Any]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dedup is None:
            self.dedup = {}

    @property
    def kind(self) -> str:
        return "serve"

    def as_doc(self) -> dict[str, Any]:
        """The checkpoint dictionary (``kind`` discriminated)."""
        return {
            "kind": "serve",
            "session_id": self.session_id,
            "config": self.config,
            "pending": self.pending,
            "retry": self.retry,
            "next_qid": self.next_qid,
            "counters": dict(self.counters),
            "stalled": self.stalled,
            "dry_attempts": self.dry_attempts,
            "dedup": dict(self.dedup),
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "ServeSnapshot":
        return cls(
            session_id=doc["session_id"],
            config=doc["config"],
            pending=list(doc["pending"]),
            retry=list(doc["retry"]),
            next_qid=doc["next_qid"],
            counters=dict(doc["counters"]),
            stalled=doc["stalled"],
            dry_attempts=doc["dry_attempts"],
            dedup=dict(doc.get("dedup", {})),  # pre-chaos checkpoints lack it
        )


class ServeSession:
    """One live mining session behind the task-queue API."""

    def __init__(
        self,
        session_id: str,
        miner: CrowdMiner,
        clock: RealTimeClock,
        config: ServeConfig | None = None,
    ) -> None:
        self.session_id = session_id
        self.miner = miner
        self.clock = clock
        self.config = config or ServeConfig()
        # The dispatcher seat: mid-ingest checkpoint requests defer to
        # the answer boundary, and checkpoint capture picks up
        # serve_snapshot() through this back-reference.
        miner.dispatcher = self
        self._pending: dict[str, _Issued] = {}  # insertion order == issue order
        self._reoffer: deque[_Issued] = deque()  # restored, to re-offer verbatim
        self._retry: deque[tuple[QuestionProposal, int]] = deque()
        self._next_qid = 1
        self._issued = 0
        self._answered = 0
        self._timeouts = 0
        self._retried = 0
        self._dropped = 0
        self._stale = 0
        self._malformed = 0
        self._rejected = 0
        self._gone = 0
        self._unknown = 0
        self._dedup_hits = 0
        self._backpressured = 0
        #: Idempotency-key → stored response (insertion-ordered FIFO).
        self._dedup: dict[str, dict[str, Any]] = {}
        #: Mirrors the sync loop's end conditions: ``_stalled`` is the
        #: "propose_question returned None" outcome, ``_dry_attempts``
        #: counts consecutive no-evidence exchanges (malformed answers,
        #: vanished members) — a full crowd round of them ends the
        #: session, exactly like ``step()`` returning ``None``.
        self._stalled = False
        self._dry_attempts = 0
        self.draining = False
        self._checkpoint_requested = False

    # -- progress --------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Questions handed out (or held for re-offer) awaiting answers."""
        return len(self._pending) + len(self._reoffer)

    @property
    def overloaded(self) -> bool:
        """True when the hand-out queue is at its backpressure bound."""
        bound = getattr(self.config, "max_outstanding", 0)
        return bound > 0 and self.outstanding >= bound

    def count_backpressure(self) -> None:
        """Record one fetch rejected for overload (books untouched)."""
        self._backpressured += 1
        self.miner.obs.count("serve.backpressure_rejections")

    @property
    def is_done(self) -> bool:
        """True when the session can neither issue nor ingest anything."""
        if self._pending or self._reoffer or self._retry:
            return False
        if self.miner.budget_left <= 0:
            return True
        if self._stalled:
            return True
        if self._dry_attempts >= max(1, len(self.miner.crowd)):
            return True
        return self.miner.is_done

    def stats(self) -> dict[str, int]:
        """The outcome counters (see the books invariant above)."""
        counters = {name: getattr(self, f"_{name}") for name in _COUNTERS}
        counters["outstanding"] = self.outstanding
        return counters

    def status_doc(self) -> dict[str, Any]:
        """The session's public status document."""
        miner = self.miner
        return {
            "session": self.session_id,
            "done": self.is_done,
            "draining": self.draining,
            "questions_asked": miner.questions_asked,
            "budget": miner.config.budget,
            "budget_left": miner.budget_left,
            "rules_known": len(miner.state),
            "members": len(miner.crowd),
            "members_available": miner.crowd.available_count(),
            "serve": self.stats(),
        }

    def kb_doc(self, top: int | None = None) -> dict[str, Any]:
        """The knowledge base's significant rules, wire-encoded."""
        significant = self.miner.state.significant_rules(mode="decided")
        ranked = sorted(
            significant.items(),
            key=lambda kv: (-kv[1].support, -kv[1].confidence, str(kv[0])),
        )
        if top is not None:
            ranked = ranked[:top]
        return {
            "session": self.session_id,
            "rules_known": len(self.miner.state),
            "significant": [
                {
                    "rule": rule_key(rule),
                    "display": str(rule),
                    "support": stats.support,
                    "confidence": stats.confidence,
                }
                for rule, stats in ranked
            ],
        }

    def result(self) -> MiningResult:
        """The miner's result snapshot (fingerprintable)."""
        return self.miner.result()

    # -- exactly-once ----------------------------------------------------------

    def _dedup_get(self, key: str | None) -> dict[str, Any] | None:
        """The stored response for ``key``, counting the hit."""
        if key is None:
            return None
        stored = self._dedup.get(key)
        if stored is not None:
            self._dedup_hits += 1
            self.miner.obs.count("serve.dedup_hits")
        return stored

    def knows_key(self, key: str | None) -> bool:
        """True when ``key`` already has a stored response.

        The backpressure gate consults this: a replayed fetch whose
        original already issued must sail through a full queue — its
        replay costs nothing, and rejecting it would wedge a client
        that never saw the first response.
        """
        return key is not None and key in self._dedup

    def _dedup_put(self, key: str | None, doc: dict[str, Any]) -> None:
        if key is None:
            return
        while len(self._dedup) >= _DEDUP_CAP:
            self._dedup.pop(next(iter(self._dedup)))
        self._dedup[key] = doc

    # -- fetch -----------------------------------------------------------------

    def next_question(self, idempotency_key: str | None = None) -> dict[str, Any]:
        """Hand out the next question, or report why there is none.

        Returns ``{"status": "ok", "question": {...}}`` on a hand-out;
        ``{"status": "wait"}`` when nothing can be issued *right now*
        (all free members busy, budget fully reserved by in-flight
        questions); ``{"status": "done"}`` / ``{"status": "draining"}``
        when the session is over or shutting down.

        ``idempotency_key`` makes the fetch exactly-once across
        transport retries: a key that already handed out a question
        returns *that* hand-out verbatim instead of issuing a second
        one — the client never saw the lost response, and without the
        replay its question would sit outstanding forever while a
        duplicate consumed another member slot. Only ``"ok"``
        hand-outs are stored; ``"wait"``/``"done"`` polls re-evaluate
        freely.
        """
        replay = self._dedup_get(idempotency_key)
        if replay is not None:
            return replay
        if self.draining:
            return {"status": "draining"}
        if self._reoffer:
            # A question restored from a checkpoint: same id, same
            # member, same proposal — the hand-out before the restart,
            # replayed verbatim.
            entry = self._reoffer.popleft()
            self._pending[entry.question_id] = entry
            self._arm_timeout(entry)
            doc = {"status": "ok", "question": self._question_doc(entry)}
            self._dedup_put(idempotency_key, doc)
            return doc
        if self.is_done:
            return {"status": "done", "state": self.status_doc()}
        if self.miner.budget_left - len(self._pending) <= 0:
            # Every remaining budget slot is reserved by an in-flight
            # question; issuing more could overspend. Slots free up
            # when answers turn out malformed/stale or members vanish.
            return {"status": "wait", "reason": "budget reserved in flight"}
        busy = {entry.proposal.member_id for entry in self._pending.values()}
        try:
            member_id = self.miner.crowd.next_member(exclude=busy)
        except CrowdExhaustedError:
            return self._nothing_to_issue()
        if member_id is None:
            return {"status": "wait", "reason": "all available members busy"}
        entry = self._next_for_member(member_id)
        if entry is None:
            return self._nothing_to_issue()
        self._pending[entry.question_id] = entry
        self._issued += 1
        if entry.attempt > 0:
            self._retried += 1
            self.miner.obs.count("serve.retries")
        self.miner.obs.count("serve.issued")
        self._arm_timeout(entry)
        doc = {"status": "ok", "question": self._question_doc(entry)}
        self._dedup_put(idempotency_key, doc)
        return doc

    def _next_for_member(self, member_id: str) -> _Issued | None:
        """A reclaimed question for ``member_id``, or a fresh proposal."""
        while self._retry:
            proposal, attempt = self._retry[0]
            if self.miner.proposal_is_stale(proposal):
                self._retry.popleft()
                self._dropped += 1
                self.miner.obs.count("serve.dropped")
                continue
            if (
                proposal.kind is QuestionKind.CLOSED
                and not proposal.gold
                and proposal.rule is not None
                and self.miner.state.knowledge(proposal.rule).samples.has_answer_from(
                    member_id
                )
            ):
                # This member's answer for the rule is already counted;
                # leave the retry queued for somebody else and give
                # this member a fresh question instead.
                break
            self._retry.popleft()
            reissued = replace(
                proposal,
                member_id=member_id,
                kb_version=self.miner.state.version,
            )
            return self._new_entry(reissued, attempt)
        proposal = self.miner.propose_question(member_id)
        if proposal is None:
            self._stalled = True
            return None
        return self._new_entry(proposal, 0)

    def _new_entry(self, proposal: QuestionProposal, attempt: int) -> _Issued:
        question_id = f"q{self._next_qid}"
        self._next_qid += 1
        return _Issued(question_id=question_id, proposal=proposal, attempt=attempt)

    def _question_doc(self, entry: _Issued) -> dict[str, Any]:
        exclude = None
        if entry.proposal.kind is QuestionKind.OPEN:
            exclude = self.miner.open_question_exclude()
        return question_to_doc(entry.question_id, entry.proposal, exclude=exclude)

    def _nothing_to_issue(self) -> dict[str, Any]:
        if self.outstanding or self._retry:
            return {"status": "wait", "reason": "waiting on outstanding answers"}
        return {"status": "done", "state": self.status_doc()}

    # -- post ------------------------------------------------------------------

    def post_answer(
        self,
        question_id: str,
        doc: dict[str, Any],
        idempotency_key: str | None = None,
    ) -> dict[str, Any]:
        """Ingest one answer document against its handed-out question.

        Unknown (or already-settled) question ids are acknowledged and
        dropped — a client retrying a post after a connection hiccup
        must not double-count an answer. The entry leaves the pending
        book *before* ingest, so a checkpoint fired from inside
        ``_finish_step`` never captures (and later re-offers) a
        question whose answer is already in the knowledge base.

        ``idempotency_key`` upgrades retry-safety from "harmless" to
        exactly-once: a replayed post returns the original outcome
        document instead of an ``unknown`` acknowledgement, so the
        client can distinguish "my answer counted, the response was
        lost" from "I posted garbage".
        """
        replay = self._dedup_get(idempotency_key)
        if replay is not None:
            return replay
        entry = self._pending.pop(question_id, None)
        if entry is None:
            self._unknown += 1
            return {"status": "unknown", "question_id": question_id}
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        proposal = entry.proposal
        if not isinstance(doc, dict):
            doc = {"malformed": {"text": repr(doc), "error": "not a JSON object"}}
        if doc.get("gone"):
            # The member left instead of answering (the live analogue
            # of pose() raising CrowdExhaustedError): no budget spent,
            # stop routing to them, count the dry attempt.
            self._gone += 1
            self._dry_attempts += 1
            self.miner.obs.count("serve.gone")
            self._depart(proposal.member_id)
            outcome = {"status": "gone", "state": self.status_doc()}
            self._dedup_put(idempotency_key, outcome)
            self._maybe_checkpoint()
            return outcome
        answer = answer_from_doc(proposal, doc)
        obs = self.miner.obs
        malformed_before = obs.counter("answers.malformed")
        rejected_before = obs.counter("quality.rejected")
        event = self.miner.ingest_answer(proposal, answer)
        if event is not None:
            self._answered += 1
            self._stalled = False
            self._dry_attempts = 0
            status = "counted"
        elif obs.counter("answers.malformed") > malformed_before:
            self._malformed += 1
            self._dry_attempts += 1
            status = "malformed"
        elif obs.counter("quality.rejected") > rejected_before:
            self._rejected += 1
            self._dry_attempts += 1
            status = "rejected"
        else:
            self._stale += 1  # the miner counted obs "dispatch.stale"
            status = "stale"
        if doc.get("leaving"):
            # "That was my last answer": the answer above still counts
            # (exactly like a simulated member's final ask before their
            # patience flips), but the member leaves the rotation.
            self._depart(proposal.member_id)
        outcome = {"status": status, "state": self.status_doc()}
        # Store before the deferred checkpoint fires: the dedup entry
        # must ride in the same snapshot as the answer it covers.
        self._dedup_put(idempotency_key, outcome)
        self._maybe_checkpoint()
        return outcome

    def _depart(self, member_id: str) -> None:
        depart = getattr(self.miner.crowd, "depart", None)
        if depart is not None:
            depart(member_id)

    # -- timeouts --------------------------------------------------------------

    def _arm_timeout(self, entry: _Issued) -> None:
        if self.config.timeout is None:
            return
        entry.timeout_event = self.clock.schedule(
            self.config.timeout,
            lambda qid=entry.question_id: self._on_timeout(qid),
        )

    def _on_timeout(self, question_id: str) -> None:
        entry = self._pending.pop(question_id, None)
        if entry is None:
            return  # answered at the same instant
        self._timeouts += 1
        self.miner.obs.count("serve.timeouts")
        attempt = entry.attempt + 1
        if attempt > self.config.max_retries or self.miner.proposal_is_stale(
            entry.proposal
        ):
            self._dropped += 1
            self.miner.obs.count("serve.dropped")
        else:
            self._retry.append((entry.proposal, attempt))

    # -- checkpointing ---------------------------------------------------------

    def request_checkpoint(self) -> None:
        """Defer a mid-ingest checkpoint to the answer boundary."""
        self._checkpoint_requested = True

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_requested:
            self._checkpoint_requested = False
            self.miner.checkpoint()

    def serve_snapshot(self) -> dict[str, Any]:
        """This session's travelling state for the checkpoint pickle."""
        pending = [
            (entry.question_id, entry.proposal, entry.attempt)
            for entry in self._reoffer
        ] + [
            (entry.question_id, entry.proposal, entry.attempt)
            for entry in self._pending.values()
        ]
        return ServeSnapshot(
            session_id=self.session_id,
            config=self.config,
            pending=pending,
            retry=list(self._retry),
            next_qid=self._next_qid,
            counters={name: getattr(self, f"_{name}") for name in _COUNTERS},
            stalled=self._stalled,
            dry_attempts=self._dry_attempts,
            dedup=dict(self._dedup),
        ).as_doc()

    def restore(self, snapshot: ServeSnapshot) -> None:
        """Fold a restored snapshot's travelling state back in.

        Pending questions become re-offers: the next fetches replay
        them verbatim (id, member, proposal), so the post-resume answer
        stream lines up byte-for-byte with the uninterrupted run.
        """
        self.config = snapshot.config
        self._reoffer = deque(
            _Issued(question_id=qid, proposal=proposal, attempt=attempt)
            for qid, proposal, attempt in snapshot.pending
        )
        self._retry = deque(snapshot.retry)
        self._next_qid = snapshot.next_qid
        for name in _COUNTERS:
            setattr(self, f"_{name}", snapshot.counters.get(name, 0))
        self._stalled = snapshot.stalled
        self._dry_attempts = snapshot.dry_attempts
        self._dedup = dict(snapshot.dedup)

    def drain(self):
        """Stop issuing, cancel timeouts, capture the final checkpoint.

        Outstanding questions stay in the book and ride into the
        checkpoint as re-offers; their answers, if a client still posts
        them to *this* process, are accepted until shutdown completes.
        Returns the checkpoint info (``None`` for ephemeral sessions).
        """
        self.draining = True
        for entry in self._pending.values():
            if entry.timeout_event is not None:
                entry.timeout_event.cancel()
                entry.timeout_event = None
        return self.miner.checkpoint()


# -- the manager ---------------------------------------------------------------


class SessionManager:
    """All live sessions behind one server: create, resume, drain.

    ``data_dir`` makes sessions durable — each gets its own WAL-mode
    SQLite store at ``<data_dir>/<session_id>.db`` and
    :meth:`resume_all` rebuilds every session found there. Without it
    sessions are ephemeral (gone with the process).
    """

    def __init__(
        self,
        data_dir: str | Path | None = None,
        clock: RealTimeClock | None = None,
        storage_wrapper: Any = None,
    ) -> None:
        self.clock = clock or RealTimeClock()
        self.data_dir = None if data_dir is None else Path(data_dir)
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.sessions: dict[str, ServeSession] = {}
        self._auto_id = 0
        #: Chaos seam: a callable wrapping every opened backend (the
        #: chaos harness injects ``FaultyBackend`` here; ``None`` in
        #: production).
        self._storage_wrapper = storage_wrapper

    def _open_storage(self, path: Path, *, resume: bool = False) -> Any:
        from repro.storage import open_backend

        storage = open_backend(path, "sqlite", resume=resume)
        if self._storage_wrapper is not None:
            storage = self._storage_wrapper(storage)
        return storage

    # -- lifecycle -------------------------------------------------------------

    def create(self, doc: dict[str, Any]) -> ServeSession:
        """Create one session from its wire document.

        Required: ``members`` (list of ids) *or* ``n_members`` (ids
        ``w0..wN-1``), ``support``, ``confidence``. Optional: ``id``,
        ``budget``, ``seed``, ``checkpoint_every``, ``quarantine``,
        ``trust_model``, ``reestimate_every``, ``timeout``,
        ``max_retries``, ``seed_rules`` (list of rule keys),
        ``contextual_open_fraction``.
        """
        if not isinstance(doc, dict):
            raise ServeError("session spec must be a JSON object")
        session_id = doc.get("id")
        if session_id is None:
            self._auto_id += 1
            session_id = f"s{self._auto_id}"
            while session_id in self.sessions:
                self._auto_id += 1
                session_id = f"s{self._auto_id}"
        if not isinstance(session_id, str) or not _SESSION_ID.match(session_id):
            raise ServeError(
                f"invalid session id {session_id!r} "
                "(letters, digits, '._-', max 64 chars)"
            )
        if session_id in self.sessions:
            raise ServeError(f"session {session_id!r} already exists")
        members = doc.get("members")
        if members is None:
            n = doc.get("n_members")
            if not isinstance(n, int) or n < 1:
                raise ServeError("pass members (list of ids) or n_members (int ≥ 1)")
            members = [f"w{i}" for i in range(n)]
        if not isinstance(members, list) or not all(
            isinstance(m, str) for m in members
        ):
            raise ServeError("members must be a list of id strings")
        try:
            seed_rules = tuple(
                rule_from_key(key) for key in doc.get("seed_rules", ())
            )
            miner_config = CrowdMinerConfig(
                thresholds=Thresholds(
                    float(doc["support"]), float(doc["confidence"])
                ),
                budget=int(doc.get("budget", 1_000)),
                quarantine=bool(doc.get("quarantine", False)),
                trust_model=doc.get("trust_model", "latent"),
                reestimate_every=int(doc.get("reestimate_every", 10)),
                contextual_open_fraction=float(
                    doc.get("contextual_open_fraction", 0.0)
                ),
                checkpoint_every=(
                    int(doc.get("checkpoint_every", 25))
                    if self.data_dir is not None
                    else 0
                ),
                seed_rules=seed_rules,
                seed=int(doc.get("seed", 0)),
            )
            serve_config = ServeConfig(
                timeout=(
                    None if doc.get("timeout") is None else float(doc["timeout"])
                ),
                max_retries=int(doc.get("max_retries", 2)),
                max_outstanding=int(doc.get("max_outstanding", 0)),
            )
            roster = WorkerRoster(members)
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise ServeError(f"bad session spec: {exc}") from exc
        storage = None
        if self.data_dir is not None:
            storage = self._open_storage(self.data_dir / f"{session_id}.db")
        miner = CrowdMiner(roster, miner_config, storage=storage)
        session = ServeSession(
            session_id, miner, self.clock, config=serve_config
        )
        self.sessions[session_id] = session
        return session

    def resume_all(self, repair: bool = False) -> list[str]:
        """Rebuild every checkpointed session under ``data_dir``.

        ``repair=True`` scrubs each store on open and falls back to
        its last verified checkpoint (see
        :func:`repro.storage.checkpoint.load_session`); without it a
        corrupt latest checkpoint refuses the whole resume.
        """
        if self.data_dir is None:
            raise ServeError("resume requires a data directory")
        from repro.storage import StorageError, load_session

        resumed = []
        for path in sorted(self.data_dir.glob("*.db")):
            storage = self._open_storage(path, resume=True)
            try:
                miner, snapshot, _info = load_session(storage, repair=repair)
            except StorageError:
                storage.close()
                raise
            if not isinstance(snapshot, ServeSnapshot):
                storage.close()
                raise ServeError(
                    f"{path.name} is not a serve-session store; "
                    "resume it with `repro mine --resume` instead"
                )
            session = ServeSession(snapshot.session_id, miner, self.clock)
            session.restore(snapshot)
            self.sessions[snapshot.session_id] = session
            resumed.append(snapshot.session_id)
        return resumed

    def get(self, session_id: str) -> ServeSession:
        session = self.sessions.get(session_id)
        if session is None:
            raise KeyError(session_id)
        return session

    def delete(self, session_id: str) -> None:
        """Drain one session, close its storage, forget it."""
        session = self.sessions.pop(session_id)
        session.drain()
        if session.miner.storage is not None:
            session.miner.storage.close()

    def drain_all(self) -> int:
        """Final-checkpoint every session and close storages; count drained."""
        drained = 0
        for session in self.sessions.values():
            session.drain()
            if session.miner.storage is not None:
                session.miner.storage.close()
                session.miner.storage = None
            drained += 1
        return drained

    def abort_all(self) -> None:
        """Simulated process death: NO drain, NO final checkpoint.

        Every storage is told to discard its uncommitted batch (the
        exact state a SIGKILL leaves on disk) and the sessions are
        forgotten. The chaos harness crashes a live server with this,
        then proves ``resume_all`` rebuilds an equivalent world.
        """
        for session in self.sessions.values():
            storage = session.miner.storage
            if storage is not None:
                getattr(storage, "abort", storage.close)()
                session.miner.storage = None
        self.sessions.clear()

    def list_doc(self) -> dict[str, Any]:
        return {
            "sessions": [
                session.status_doc() for session in self.sessions.values()
            ]
        }


__all__ = [
    "ServeConfig",
    "ServeError",
    "ServeSession",
    "ServeSnapshot",
    "SessionManager",
]
