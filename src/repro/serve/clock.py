"""A wall-clock implementation of the scheduling contract.

:class:`RealTimeClock` satisfies the same
:class:`~repro.dispatch.clock.SchedulerClock` protocol as the
simulated :class:`~repro.dispatch.clock.EventClock`, over asyncio
monotonic time: ``now`` reads ``time.monotonic()`` (re-based to 0.0 at
construction, like a fresh simulated clock), and due events are fired
by an event-loop task instead of an explicit ``pop()`` driver.

The determinism-relevant half of the contract is identical — events
fire in ``(time, seq)`` order with schedule order as the only
tie-break, cancellation disarms, validation rejects the same inputs —
which is exactly what lets the differential harness
(:mod:`repro.serve.differential`) swap this clock in under a live
session and still assert byte-identical fingerprints. What changes is
*when* the firing happens: on the simulated clock the caller advances
time; here real time advances on its own and :meth:`start` arms a
background runner that sleeps until the next due instant.

Two driving modes:

- :meth:`start` / :meth:`stop` — the serving mode: a background task
  owns the queue and fires events as wall time reaches them. Firing
  happens on the event loop, so event actions enjoy the same
  run-to-completion atomicity as every other session mutation.
- :meth:`drain` — the test mode: await everything currently (and
  transitively) scheduled, without a background task, so tests control
  exactly when firing happens.
"""

from __future__ import annotations

import asyncio
import heapq
import math
import time
from collections.abc import Callable

from repro.dispatch.clock import ScheduledEvent


class RealTimeClock:
    """Monotonic wall time behind the ``SchedulerClock`` protocol.

    The queue layout — ``(time, seq, event)`` heap, monotone schedule
    counter, cancelled events skipped on the way out — mirrors
    :class:`~repro.dispatch.clock.EventClock` exactly; only the time
    source differs.
    """

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._wakeup: asyncio.Event | None = None
        self._runner: asyncio.Task | None = None

    @property
    def now(self) -> float:
        """Seconds of wall time since this clock was created."""
        return time.monotonic() - self._origin

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to fire ``delay`` wall seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` at an absolute clock time (≥ now)."""
        if math.isnan(time) or time < self.now:
            raise ValueError(
                f"cannot schedule at {time!r}: the clock is already at {self.now}"
            )
        if math.isinf(time):
            raise ValueError(
                "cannot schedule at infinity; skip scheduling a lost event instead"
            )
        event = ScheduledEvent(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        if self._wakeup is not None:
            self._wakeup.set()
        return event

    def peek_time(self) -> float | None:
        """The time of the next live event, or ``None`` when idle."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][0]

    # -- firing ----------------------------------------------------------------

    def fire_due(self) -> int:
        """Fire every live event whose instant has passed; returns the count.

        Events fire strictly in ``(time, seq)`` order. An action may
        schedule further events; newly due ones fire in the same call.
        """
        fired = 0
        while self._queue:
            at, _, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if at > self.now:
                break
            heapq.heappop(self._queue)
            event.action()
            fired += 1
        return fired

    async def drain(self) -> int:
        """Await and fire everything scheduled (transitively); count fired.

        Test-mode driver: no background task needed, and the caller
        knows the queue is empty when it returns. Sleeps real time up
        to each event's instant.
        """
        fired = 0
        while True:
            upcoming = self.peek_time()
            if upcoming is None:
                return fired
            delay = upcoming - self.now
            if delay > 0:
                await asyncio.sleep(delay)
            fired += self.fire_due()

    # -- the background runner -------------------------------------------------

    def start(self) -> None:
        """Arm the background runner on the running event loop (idempotent)."""
        if self._runner is not None and not self._runner.done():
            return
        self._wakeup = asyncio.Event()
        self._runner = asyncio.get_running_loop().create_task(
            self._run(), name="realtime-clock"
        )

    async def stop(self) -> None:
        """Cancel the background runner; pending events stay queued."""
        runner, self._runner = self._runner, None
        self._wakeup = None
        if runner is None:
            return
        runner.cancel()
        try:
            await runner
        except asyncio.CancelledError:
            pass

    async def _run(self) -> None:
        """Sleep until the next due instant, fire, repeat.

        A bare ``Event.wait()`` parks the runner while the queue is
        idle; every ``schedule``/``schedule_at`` sets the event so a
        nearer deadline interrupts the current sleep.
        """
        assert self._wakeup is not None
        while True:
            self._wakeup.clear()
            upcoming = self.peek_time()
            if upcoming is None:
                await self._wakeup.wait()
                continue
            delay = upcoming - self.now
            if delay > 0:
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                    continue  # re-evaluate: something (possibly nearer) arrived
                except asyncio.TimeoutError:
                    pass
            self.fire_due()
