"""Canonical experiment definitions E1–E9.

These are the reconstructed counterparts of the paper's evaluation
figures and tables (see DESIGN.md §4 for the full mapping and
EXPERIMENTS.md for measured outcomes). Each entry returns the base
config and the variant grid; the benchmark harness in ``benchmarks/``
executes them and prints the per-figure series.

Two size tiers are provided: ``scale="full"`` reproduces the headline
curves at meaningful sizes (minutes of wall-clock), ``scale="smoke"``
shrinks everything for CI-speed sanity runs (seconds). Both tiers run
the *same* code paths; only sizes change.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigurationError
from repro.eval.runner import ExperimentConfig


def _base(scale: str) -> ExperimentConfig:
    if scale == "full":
        return ExperimentConfig(
            n_items=120,
            n_patterns=20,
            n_members=40,
            transactions_per_member=200,
            budget=2_000,
            checkpoints=(100, 200, 400, 800, 1_200, 1_600, 2_000),
            repetitions=3,
            seed=7,
        )
    if scale == "smoke":
        return ExperimentConfig(
            n_items=60,
            n_patterns=8,
            n_members=15,
            transactions_per_member=80,
            budget=240,
            checkpoints=(60, 120, 240),
            repetitions=2,
            seed=7,
        )
    raise ConfigurationError(f"unknown scale: {scale!r}")


def e1_strategies(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E1 — strategy comparison (quality vs questions per strategy)."""
    base = replace(_base(scale), name="e1_strategies")
    variants = {
        "crowdminer": {"strategy": "crowdminer"},
        "roundrobin": {"strategy": "roundrobin"},
        "random": {"strategy": "random"},
        "horizontal": {"strategy": "horizontal"},
    }
    return base, variants


def e2_open_ratio(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E2 — open/closed mix (strict fixed ratios plus the adaptive policy)."""
    base = replace(_base(scale), name="e2_open_ratio")
    ratios = (0.05, 0.1, 0.25, 0.5, 1.0)
    variants: dict[str, dict] = {
        f"open_{int(r * 100):02d}%": {"open_policy": r} for r in ratios
    }
    variants["adaptive"] = {"open_policy": "adaptive"}
    return base, variants


def e3_noise(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E3 — answer noise (σ sweep, with and without Likert coarsening)."""
    base = replace(_base(scale), name="e3_noise")
    variants = {
        "exact": {"answer_sigma": 0.0, "likert": False},
        "likert_only": {"answer_sigma": 0.0, "likert": True},
        "sigma_0.05": {"answer_sigma": 0.05, "likert": True},
        "sigma_0.10": {"answer_sigma": 0.10, "likert": True},
        "sigma_0.20": {"answer_sigma": 0.20, "likert": True},
    }
    return base, variants


def e4_crowd_size(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E4 — crowd size (members sweep at fixed budget)."""
    base = replace(_base(scale), name="e4_crowd_size")
    sizes = (10, 30, 100) if scale == "smoke" else (10, 30, 100, 200)
    variants = {f"members_{n}": {"n_members": n} for n in sizes}
    return base, variants


def e5_scale(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E5 — domain scale (items × planted habits grid).

    The paper's point: cost tracks the number of *significant* rules,
    not the item-domain size.
    """
    base = replace(_base(scale), name="e5_scale")
    if scale == "smoke":
        grid = ((60, 8), (200, 8), (200, 16))
    else:
        grid = ((50, 10), (200, 10), (800, 10), (200, 40))
    variants = {
        f"items_{items}_rules_{rules}": {"n_items": items, "n_patterns": rules}
        for items, rules in grid
    }
    return base, variants


def e8_thresholds(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E8 — threshold sensitivity ((θ_s, θ_c) sweep)."""
    base = replace(_base(scale), name="e8_thresholds")
    grid = ((0.05, 0.4), (0.10, 0.5), (0.15, 0.6), (0.20, 0.7))
    variants = {
        f"th_{int(s * 100):02d}_{int(c * 100):02d}": {
            "support_threshold": s,
            "confidence_threshold": c,
        }
        for s, c in grid
    }
    return base, variants


def e8r_robustness(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E8-R — adversarial robustness (degradation curve, quarantine on/off).

    Sweeps the colluding-spammer fraction with the quality-control loop
    disabled and enabled. Colluders — not independent spammers — are
    the sweep's adversary because their coordinated lies *bias*
    aggregates rather than just widening them, which is what actually
    moves F1. The off rows trace graceful degradation; the on rows
    measure what the latent-ability trust model (joint member/truth
    estimation, no gold reference to poison — see
    :mod:`repro.faults.latent`) buys back. The floor asserted by
    ``benchmarks/bench_e8_robustness.py``: quality-on must be at least
    quality-off at *every* swept fraction — the poisoned-gold regime
    where enabling the defence made things worse is the bug this model
    fixed.
    """
    base = replace(
        _base(scale),
        name="e8r_robustness",
        quarantine=False,
        gold_rate=0.0,
    )
    fractions = (0.0, 0.1, 0.3, 0.5)
    variants: dict[str, dict] = {}
    for fraction in fractions:
        mix = (("colluder", fraction),) if fraction > 0 else ()
        label = f"spam_{int(fraction * 100):02d}"
        variants[f"{label}_q_off"] = {"adversary_mix": mix}
        variants[f"{label}_q_on"] = {"adversary_mix": mix, "quarantine": True}
    return base, variants


def e9_ablation(scale: str = "full") -> tuple[ExperimentConfig, dict[str, dict]]:
    """E9 — ablation of the miner's design choices."""
    base = replace(_base(scale), name="e9_ablation")
    variants = {
        "full": {},
        "no_covariance": {"use_covariance": False},
        "no_lattice_pruning": {"lattice_pruning": False},
        "no_expansion": {
            "expand_generalizations": False,
            "expand_splits": False,
        },
        "closed_only_lazy": {"open_policy": 0.0},
    }
    return base, variants


#: Registry of the sweep-style experiments (E6/E7 have bespoke harnesses).
EXPERIMENTS = {
    "e1": e1_strategies,
    "e2": e2_open_ratio,
    "e3": e3_noise,
    "e4": e4_crowd_size,
    "e5": e5_scale,
    "e8": e8_thresholds,
    "e8r": e8r_robustness,
    "e9": e9_ablation,
}
