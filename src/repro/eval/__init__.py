"""Evaluation harness: metrics, experiment runner, canonical configs."""

from repro.eval.configs import (
    EXPERIMENTS,
    e1_strategies,
    e2_open_ratio,
    e3_noise,
    e4_crowd_size,
    e5_scale,
    e8_thresholds,
    e9_ablation,
)
from repro.eval.export import results_to_csv, results_to_json, save_results
from repro.eval.metrics import (
    PRPoint,
    QualityCurve,
    TimedCurve,
    TimedPoint,
    average_curves,
    precision_recall,
    score_report,
)
from repro.eval.report import (
    ascii_chart,
    format_curve,
    format_experiment,
    format_rows,
    format_summary_table,
)
from repro.eval.runner import (
    ExperimentConfig,
    ExperimentResult,
    RepetitionOutcome,
    build_world,
    run_experiment,
    run_session,
    run_timed_session,
    run_variants,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "PRPoint",
    "QualityCurve",
    "RepetitionOutcome",
    "TimedCurve",
    "TimedPoint",
    "ascii_chart",
    "average_curves",
    "build_world",
    "e1_strategies",
    "e2_open_ratio",
    "e3_noise",
    "e4_crowd_size",
    "e5_scale",
    "e8_thresholds",
    "e9_ablation",
    "format_curve",
    "format_experiment",
    "format_rows",
    "format_summary_table",
    "precision_recall",
    "results_to_csv",
    "results_to_json",
    "run_experiment",
    "run_session",
    "run_timed_session",
    "run_variants",
    "save_results",
    "score_report",
]
