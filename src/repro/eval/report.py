"""Plain-text reporting of experiment outcomes.

The benchmark harness prints each figure's series the way the paper's
plots would read — one row per checkpoint, one block per variant — plus
compact summary tables. Everything is fixed-width text so results can
be diffed and archived in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.eval.metrics import QualityCurve
from repro.eval.runner import ExperimentResult


def format_curve(curve: QualityCurve) -> str:
    """One variant's quality-vs-questions series as a small table."""
    lines = [f"[{curve.label}]"]
    lines.append("  questions  precision  recall     F1")
    for point in curve.points:
        lines.append(
            f"  {point.questions:9d}  {point.precision:9.3f}  {point.recall:6.3f}  {point.f1:6.3f}"
        )
    return "\n".join(lines)


def format_experiment(
    title: str, results: Mapping[str, ExperimentResult]
) -> str:
    """The full printable report of a multi-variant experiment."""
    blocks = [f"=== {title} ==="]
    for label, result in results.items():
        blocks.append(format_curve(result.curve))
        blocks.append(
            f"  (truth size ≈ {result.mean_truth_size:.1f}, "
            f"{result.mean_wall_seconds:.2f}s/rep)"
        )
    blocks.append(format_summary_table(results))
    return "\n".join(blocks)


def format_summary_table(results: Mapping[str, ExperimentResult]) -> str:
    """One-line-per-variant summary: final quality and cost-to-quality."""
    width = max((len(label) for label in results), default=7)
    width = max(width, len("variant"))
    header = (
        f"{'variant':<{width}}  final_P  final_R  final_F1  "
        f"q_to_F1>=0.5  q_to_F1>=0.8"
    )
    lines = [header, "-" * len(header)]
    for label, result in results.items():
        final = result.curve.final()
        q50 = result.curve.questions_to_f1(0.5)
        q80 = result.curve.questions_to_f1(0.8)
        lines.append(
            f"{label:<{width}}  {final.precision:7.3f}  {final.recall:7.3f}  "
            f"{final.f1:8.3f}  {q50 if q50 is not None else '—':>12}  "
            f"{q80 if q80 is not None else '—':>12}"
        )
    return "\n".join(lines)


def ascii_chart(
    curves: Mapping[str, QualityCurve],
    metric: str = "f1",
    width: int = 60,
    height: int = 12,
) -> str:
    """A terminal plot of quality-vs-questions curves.

    Each variant gets a letter marker; the y-axis is the chosen metric
    in [0, 1], the x-axis is the (shared) question grid. Coarse on
    purpose — the numeric tables carry the precision; this carries the
    shape.
    """
    getters = {
        "precision": lambda p: p.precision,
        "recall": lambda p: p.recall,
        "f1": lambda p: p.f1,
    }
    if metric not in getters:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(getters)}")
    if not curves:
        return "(no curves)"
    get = getters[metric]
    max_q = max(p.questions for c in curves.values() for p in c.points)
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for marker, (label, curve) in zip(markers, curves.items()):
        legend.append(f"{marker}={label}")
        for point in curve.points:
            x = min(width - 1, int(point.questions / max_q * (width - 1)))
            y = min(height - 1, int(get(point) * (height - 1)))
            row = height - 1 - y
            grid[row][x] = marker
    lines = [f"{metric} (1.0 top) vs questions (0..{max_q})"]
    for i, row in enumerate(grid):
        y_label = "1.0" if i == 0 else ("0.0" if i == height - 1 else "   ")
        lines.append(f"{y_label} |{''.join(row)}")
    lines.append("    +" + "-" * width)
    lines.append("    " + "  ".join(legend))
    return "\n".join(lines)


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Generic fixed-width table used by the bespoke harnesses (E6/E7)."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(cell) for cell in col) for col in columns]
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    out = [render([str(h) for h in headers])]
    out.append("-" * len(out[0]))
    for row in rows:
        out.append(render([str(cell) for cell in row]))
    return "\n".join(out)
