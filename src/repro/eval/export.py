"""Exporting experiment results and knowledge bases for archival.

The text reports in :mod:`repro.eval.report` are for humans; these
exporters are for downstream tools — CSV for spreadsheets/plotting and
a JSON document for programmatic reuse. Experiment exports carry the
full checkpoint grid per variant, so a figure can be regenerated
without re-running the experiment; knowledge-base exports (used by the
``repro kb`` command) carry every rule with its decision, evidence
counts and per-member observations.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping
from pathlib import Path
from typing import TYPE_CHECKING

from repro.eval.runner import ExperimentResult

if TYPE_CHECKING:  # the CLI hands us a live MiningState; no import cycle
    from repro.miner.state import MiningState

CSV_COLUMNS = ("variant", "questions", "precision", "recall", "f1")

KB_CSV_COLUMNS = (
    "rule", "decision", "inferred", "origin", "answers", "support", "confidence"
)


def results_to_csv(results: Mapping[str, ExperimentResult]) -> str:
    """All variants' curves as one CSV string (one row per checkpoint)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for label, result in results.items():
        for point in result.curve.points:
            writer.writerow(
                [
                    label,
                    point.questions,
                    f"{point.precision:.6f}",
                    f"{point.recall:.6f}",
                    f"{point.f1:.6f}",
                ]
            )
    return buffer.getvalue()


def results_to_json(results: Mapping[str, ExperimentResult]) -> dict:
    """All variants' curves and metadata as a JSON-ready document."""
    return {
        "format": "experiment-results",
        "version": 1,
        "variants": {
            label: {
                "config": {
                    "n_items": result.config.n_items,
                    "n_patterns": result.config.n_patterns,
                    "n_members": result.config.n_members,
                    "budget": result.config.budget,
                    "strategy": result.config.strategy,
                    "open_policy": str(result.config.open_policy),
                    "support_threshold": result.config.support_threshold,
                    "confidence_threshold": result.config.confidence_threshold,
                    "repetitions": result.config.repetitions,
                    "seed": result.config.seed,
                },
                "mean_truth_size": result.mean_truth_size,
                "curve": [
                    {
                        "questions": point.questions,
                        "precision": point.precision,
                        "recall": point.recall,
                        "f1": point.f1,
                    }
                    for point in result.curve.points
                ],
            }
            for label, result in results.items()
        },
    }


def save_results(
    results: Mapping[str, ExperimentResult],
    directory: str | Path,
    name: str,
) -> tuple[Path, Path]:
    """Write both exports; returns the (csv_path, json_path) pair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{name}.csv"
    json_path = directory / f"{name}.json"
    csv_path.write_text(results_to_csv(results))
    json_path.write_text(json.dumps(results_to_json(results), indent=2))
    return csv_path, json_path


def kb_to_csv(state: "MiningState") -> str:
    """Every rule of a knowledge base as one CSV string (discovery order).

    ``support``/``confidence`` are the aggregated means; empty for rules
    that never received a counted answer.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(KB_CSV_COLUMNS)
    for knowledge in state.rules():
        if knowledge.samples.n:
            support, confidence = state.summary_for(knowledge).mean
            support_text = f"{support:.6f}"
            confidence_text = f"{confidence:.6f}"
        else:
            support_text = confidence_text = ""
        writer.writerow(
            [
                str(knowledge.rule),
                knowledge.decision.value,
                int(knowledge.inferred),
                knowledge.origin.value,
                knowledge.samples.n,
                support_text,
                confidence_text,
            ]
        )
    return buffer.getvalue()


def kb_to_json(state: "MiningState") -> dict:
    """A knowledge base as a JSON-ready document, evidence included."""
    rules = []
    for knowledge in state.rules():
        summary = state.summary_for(knowledge) if knowledge.samples.n else None
        rules.append(
            {
                "rule": str(knowledge.rule),
                "antecedent": sorted(knowledge.rule.antecedent),
                "consequent": sorted(knowledge.rule.consequent),
                "decision": knowledge.decision.value,
                "inferred": knowledge.inferred,
                "origin": knowledge.origin.value,
                "answers": knowledge.samples.n,
                "support": None if summary is None else summary.mean[0],
                "confidence": None if summary is None else summary.mean[1],
                "evidence": [
                    {
                        "member": member_id,
                        "support": stats.support,
                        "confidence": stats.confidence,
                    }
                    for member_id, stats in knowledge.samples.observations()
                ],
            }
        )
    return {"format": "knowledge-base", "version": 1, "rules": rules}


def save_kb(
    state: "MiningState", directory: str | Path, name: str = "kb"
) -> tuple[Path, Path]:
    """Write both KB exports; returns the (csv_path, json_path) pair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{name}.csv"
    json_path = directory / f"{name}.json"
    csv_path.write_text(kb_to_csv(state))
    json_path.write_text(json.dumps(kb_to_json(state), indent=2))
    return csv_path, json_path
