"""Exporting experiment results for archival and external plotting.

The text reports in :mod:`repro.eval.report` are for humans; these
exporters are for downstream tools — CSV for spreadsheets/plotting and
a JSON document for programmatic reuse. Both carry the full checkpoint
grid per variant, so a figure can be regenerated without re-running the
experiment.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping
from pathlib import Path

from repro.eval.runner import ExperimentResult

CSV_COLUMNS = ("variant", "questions", "precision", "recall", "f1")


def results_to_csv(results: Mapping[str, ExperimentResult]) -> str:
    """All variants' curves as one CSV string (one row per checkpoint)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for label, result in results.items():
        for point in result.curve.points:
            writer.writerow(
                [
                    label,
                    point.questions,
                    f"{point.precision:.6f}",
                    f"{point.recall:.6f}",
                    f"{point.f1:.6f}",
                ]
            )
    return buffer.getvalue()


def results_to_json(results: Mapping[str, ExperimentResult]) -> dict:
    """All variants' curves and metadata as a JSON-ready document."""
    return {
        "format": "experiment-results",
        "version": 1,
        "variants": {
            label: {
                "config": {
                    "n_items": result.config.n_items,
                    "n_patterns": result.config.n_patterns,
                    "n_members": result.config.n_members,
                    "budget": result.config.budget,
                    "strategy": result.config.strategy,
                    "open_policy": str(result.config.open_policy),
                    "support_threshold": result.config.support_threshold,
                    "confidence_threshold": result.config.confidence_threshold,
                    "repetitions": result.config.repetitions,
                    "seed": result.config.seed,
                },
                "mean_truth_size": result.mean_truth_size,
                "curve": [
                    {
                        "questions": point.questions,
                        "precision": point.precision,
                        "recall": point.recall,
                        "f1": point.f1,
                    }
                    for point in result.curve.points
                ],
            }
            for label, result in results.items()
        },
    }


def save_results(
    results: Mapping[str, ExperimentResult],
    directory: str | Path,
    name: str,
) -> tuple[Path, Path]:
    """Write both exports; returns the (csv_path, json_path) pair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{name}.csv"
    json_path = directory / f"{name}.json"
    csv_path.write_text(results_to_csv(results))
    json_path.write_text(json.dumps(results_to_json(results), indent=2))
    return csv_path, json_path
