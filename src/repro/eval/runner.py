"""The experiment runner: configured, repeated, checkpointed sessions.

One :class:`ExperimentConfig` describes a complete synthetic
experiment: the population (latent model parameters), the crowd's
answer behaviour, the query, and the miner configuration — plus the
checkpoint grid and repetition count. :func:`run_experiment` executes
it and returns averaged quality curves; :func:`run_variants` sweeps a
set of config overrides (the typical shape of every figure in the
evaluation: one curve per strategy / ratio / noise level / crowd size).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro._util import as_rng, check_positive
from repro.crowd.answer_models import (
    AnswerModel,
    ComposedAnswerModel,
    ExactAnswerModel,
    LikertAnswerModel,
    NoisyAnswerModel,
)
from repro.crowd.array_crowd import ArrayCrowd
from repro.crowd.crowd import SimulatedCrowd
from repro.crowd.open_behavior import OpenAnswerPolicy
from repro.errors import ConfigurationError
from repro.estimation.significance import Thresholds
from repro.eval.metrics import (
    QualityCurve,
    TimedCurve,
    TimedPoint,
    average_curves,
    precision_recall,
    score_report,
)
from repro.miner.crowdminer import CrowdMiner, CrowdMinerConfig
from repro.miner.open_policy import make_open_policy
from repro.miner.oracle import GroundTruth, compute_ground_truth
from repro.miner.strategy import make_strategy
from repro.obs import Instrumentation, ObsSnapshot
from repro.synth.array_population import ArrayPopulation
from repro.synth.factories import random_domain, random_habit_model
from repro.synth.latent import LatentHabitModel
from repro.synth.population import Population, build_population

if TYPE_CHECKING:  # the dispatch package imports the miner, never the reverse
    from repro.dispatch.dispatcher import DispatchConfig


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Everything one synthetic experiment needs.

    Population and crowd knobs map one-to-one onto the axes the
    evaluation sweeps (see ``DESIGN.md`` §4).
    """

    name: str = "experiment"
    # population
    n_items: int = 120
    n_patterns: int = 20
    n_members: int = 40
    transactions_per_member: int = 200
    background_rate: float = 0.01
    # crowd behaviour
    answer_sigma: float = 0.05
    likert: bool = True
    patience: int | None = None
    #: Adversary mix as ``(role, fraction)`` pairs (see
    #: :func:`repro.faults.parse_adversary_mix`); empty = honest crowd,
    #: built byte-identically to the pre-robustness harness.
    adversary_mix: tuple[tuple[str, float], ...] = ()
    # quality control (forwarded to the miner)
    quarantine: bool = False
    trust_model: str = "latent"
    gold_rate: float = 0.0
    trust_floor: float = 0.45
    quarantine_min_answers: int = 4
    reestimate_every: int = 10
    # query
    support_threshold: float = 0.10
    confidence_threshold: float = 0.50
    # miner
    budget: int = 1_000
    strategy: str = "crowdminer"
    open_policy: str | float = "adaptive"
    min_samples: int = 5
    decision_confidence: float = 0.9
    use_covariance: bool = True
    lattice_pruning: bool = True
    expand_generalizations: bool = True
    expand_splits: bool = True
    # harness
    checkpoints: tuple[int, ...] = (100, 200, 400, 600, 800, 1_000)
    repetitions: int = 3
    seed: int = 0
    max_body_size: int = 4
    # persistence (see repro.storage / docs/persistence.md): when
    # ``checkpoint_path`` is set, sessions keep a write-ahead answer log
    # there and capture a whole-session checkpoint every
    # ``checkpoint_every`` questions — a killed run resumes via
    # :func:`resume_session` with a byte-identical final summary.
    checkpoint_path: str | None = None
    checkpoint_every: int = 0
    storage_backend: str = "sqlite"
    # scale (see docs/scaling.md): "array" backs the population and
    # crowd with columnar state instead of per-member objects, and
    # ``shards`` > 1 splits dispatched sessions over crowd partitions.
    population_backend: str = "object"
    shards: int = 1

    def __post_init__(self) -> None:
        check_positive(self.budget, "budget")
        check_positive(self.repetitions, "repetitions")
        check_positive(self.shards, "shards")
        if self.population_backend not in ("object", "array"):
            raise ConfigurationError(
                f"unknown population backend {self.population_backend!r} "
                "(expected 'object' or 'array')"
            )
        if self.population_backend == "array" and self.adversary_mix:
            raise ConfigurationError(
                "adversary mixes need per-member objects; "
                "use population_backend='object'"
            )
        if not self.checkpoints:
            raise ConfigurationError("at least one checkpoint is required")
        if any(c <= 0 for c in self.checkpoints):
            raise ConfigurationError("checkpoints must be positive")
        if list(self.checkpoints) != sorted(self.checkpoints):
            raise ConfigurationError("checkpoints must be ascending")
        if max(self.checkpoints) > self.budget:
            raise ConfigurationError("checkpoints cannot exceed the budget")

    def thresholds(self) -> Thresholds:
        """The query thresholds as a value object."""
        return Thresholds(self.support_threshold, self.confidence_threshold)

    def answer_model(self) -> AnswerModel:
        """The member answer model implied by the noise knobs."""
        stages: list[AnswerModel] = []
        if self.answer_sigma > 0:
            stages.append(NoisyAnswerModel(self.answer_sigma))
        if self.likert:
            stages.append(LikertAnswerModel())
        if not stages:
            return ExactAnswerModel()
        if len(stages) == 1:
            return stages[0]
        return ComposedAnswerModel(stages)


@dataclass(frozen=True, slots=True)
class RepetitionOutcome:
    """Everything measured in a single repetition.

    ``obs`` carries the session's instrumentation snapshot — the
    knowledge-base and main-loop counters/timers plus the runner's own
    per-phase timers (``runner.mine``, ``runner.score``) — so harness
    runs expose where the wall-clock went.
    """

    curve: QualityCurve
    truth_size: int
    rules_discovered: int
    inferred_classifications: int
    open_questions: int
    wall_seconds: float
    obs: ObsSnapshot | None = None


@dataclass(frozen=True, slots=True)
class ExperimentResult:
    """Averaged outcome of one experiment."""

    config: ExperimentConfig
    curve: QualityCurve
    repetitions: tuple[RepetitionOutcome, ...]

    @property
    def mean_truth_size(self) -> float:
        """Average ground-truth size across repetitions."""
        return float(np.mean([r.truth_size for r in self.repetitions]))

    @property
    def mean_wall_seconds(self) -> float:
        """Average wall-clock time per repetition."""
        return float(np.mean([r.wall_seconds for r in self.repetitions]))


def build_world(
    config: ExperimentConfig, seed: int, ground_truth: bool = True
) -> tuple[LatentHabitModel, Population | ArrayPopulation, GroundTruth | None]:
    """Build one repetition's model, population and oracle.

    With ``population_backend="array"`` the population is columnar
    (its layout — and hence its random stream — differs from the
    object path's; array experiments are a scale axis, not a replay of
    object ones). ``ground_truth=False`` skips the oracle — at array
    scale computing it means scanning every member's transactions,
    which is exactly the cost the backend exists to avoid.
    """
    rng = as_rng(seed)
    domain = random_domain(config.n_items, seed=rng)
    model = random_habit_model(
        domain,
        config.n_patterns,
        seed=rng,
        background_rate=config.background_rate,
    )
    population: Population | ArrayPopulation
    if config.population_backend == "array":
        population = ArrayPopulation(
            model,
            config.n_members,
            config.transactions_per_member,
            seed=rng,
        )
    else:
        population = build_population(
            model,
            config.n_members,
            config.transactions_per_member,
            seed=rng,
        )
    truth = None
    if ground_truth:
        truth = compute_ground_truth(
            population, config.thresholds(), max_body_size=config.max_body_size
        )
    return model, population, truth


def build_crowd(
    config: ExperimentConfig,
    population: Population | ArrayPopulation,
    rng: np.random.Generator,
) -> SimulatedCrowd | ArrayCrowd:
    """The session's crowd, honest or adversarial per the config.

    With an empty ``adversary_mix`` this takes the plain
    :meth:`~repro.crowd.crowd.SimulatedCrowd.from_population` path and
    draws exactly the pre-robustness random stream; with a mix it
    delegates to :func:`repro.faults.build_adversarial_crowd`. An
    :class:`~repro.synth.array_population.ArrayPopulation` gets the
    columnar :class:`~repro.crowd.array_crowd.ArrayCrowd` (honest only
    — adversary mixes need per-member objects).
    """
    open_policy = OpenAnswerPolicy(max_body_size=config.max_body_size)
    if isinstance(population, ArrayPopulation):
        if config.adversary_mix:
            raise ConfigurationError(
                "adversary mixes need per-member objects; "
                "use population_backend='object'"
            )
        return ArrayCrowd(
            population,
            answer_model=config.answer_model(),
            open_policy=open_policy,
            patience=config.patience,
            seed=rng,
        )
    if not config.adversary_mix:
        return SimulatedCrowd.from_population(
            population,
            answer_model=config.answer_model(),
            open_policy=open_policy,
            patience=config.patience,
            seed=rng,
        )
    from repro.faults import build_adversarial_crowd

    crowd, _ = build_adversarial_crowd(
        population,
        config.adversary_mix,
        answer_model=config.answer_model(),
        open_policy=open_policy,
        patience=config.patience,
        seed=rng,
    )
    return crowd


def _miner_config(config: ExperimentConfig, rng: np.random.Generator) -> CrowdMinerConfig:
    return CrowdMinerConfig(
        thresholds=config.thresholds(),
        budget=config.budget,
        strategy=make_strategy(config.strategy),
        open_policy=make_open_policy(config.open_policy),
        min_samples=config.min_samples,
        decision_confidence=config.decision_confidence,
        use_covariance=config.use_covariance,
        lattice_pruning=config.lattice_pruning,
        expand_generalizations=config.expand_generalizations,
        expand_splits=config.expand_splits,
        quarantine=config.quarantine,
        trust_model=config.trust_model,
        gold_rate=config.gold_rate,
        trust_floor=config.trust_floor,
        quarantine_min_answers=config.quarantine_min_answers,
        reestimate_every=config.reestimate_every,
        checkpoint_every=config.checkpoint_every,
        seed=rng,
    )


def run_session(
    config: ExperimentConfig,
    population: Population,
    truth: GroundTruth,
    seed: int,
    obs: Instrumentation | None = None,
) -> RepetitionOutcome:
    """Run one mining session and measure it at every checkpoint.

    ``obs`` (a fresh instance when not given) is shared with the miner
    and knowledge base, and additionally times the runner's own phases:
    mining steps vs. checkpoint scoring.
    """
    rng = as_rng(seed)
    obs = obs or Instrumentation()
    crowd = build_crowd(config, population, rng)
    storage = None
    if config.checkpoint_path is not None:
        from repro.storage import open_backend

        storage = open_backend(config.checkpoint_path, config.storage_backend)
    miner = CrowdMiner(crowd, _miner_config(config, rng), obs=obs, storage=storage)

    points = []
    started = time.perf_counter()
    for checkpoint in config.checkpoints:
        with obs.timer("runner.mine"):
            while miner.questions_asked < checkpoint and not miner.is_done:
                if miner.step() is None:
                    break
        with obs.timer("runner.score"):
            reported = miner.state.significant_rules(mode="point")
            points.append(score_report(reported, truth, miner.questions_asked))
    elapsed = time.perf_counter() - started

    # Normalize the checkpoint grid (sessions that ended early repeat
    # their final quality at the remaining checkpoints).
    normalized = [
        type(points[0])(
            questions=checkpoint, precision=point.precision, recall=point.recall
        )
        for checkpoint, point in zip(config.checkpoints, points)
    ]
    result = miner.result()
    if storage is not None:
        storage.close()
    return RepetitionOutcome(
        curve=QualityCurve(label=config.name, points=tuple(normalized)),
        truth_size=len(truth),
        rules_discovered=result.rules_discovered,
        inferred_classifications=result.inferred_classifications,
        open_questions=result.open_questions,
        wall_seconds=elapsed,
        obs=result.obs,
    )


def resume_session(
    config: ExperimentConfig,
    truth: GroundTruth,
    storage=None,
) -> RepetitionOutcome:
    """Finish a killed :func:`run_session` from its latest checkpoint.

    Opens the experiment's checkpoint store (or takes an already-open
    ``storage`` backend), restores the session, and drives it through
    the *remaining* quality checkpoints — grid points the original run
    already passed were scored by that run and are skipped here. With
    the same seeds, the finished session's final summary (and
    :meth:`~repro.miner.result.MiningResult.fingerprint`) is
    byte-identical to an uninterrupted run's.

    Only synchronous sessions are resumable through this helper (the
    E-series harness drives miners synchronously); a checkpoint carrying
    dispatcher state is rejected.
    """
    from repro.storage import StorageError, load_session, open_backend

    owned = storage is None
    if storage is None:
        if config.checkpoint_path is None:
            raise ConfigurationError(
                "resume_session needs a checkpoint_path (or an open backend)"
            )
        storage = open_backend(
            config.checkpoint_path, config.storage_backend, resume=True
        )
    miner, dispatcher, _ = load_session(storage)
    if dispatcher is not None:
        if getattr(dispatcher, "kind", None) == "serve":
            raise StorageError(
                "this checkpoint carries live serve-session state; resume "
                "it with `repro serve --data-dir DIR --resume`, not the "
                "E-series harness"
            )
        raise StorageError(
            "this checkpoint carries dispatcher state; resume it with the "
            "dispatcher (repro.storage.load_session), not the E-series harness"
        )
    obs = miner.obs
    resumed_at = miner.questions_asked
    remaining = [c for c in config.checkpoints if c >= resumed_at]

    points = []
    started = time.perf_counter()
    for checkpoint in remaining:
        with obs.timer("runner.mine"):
            while miner.questions_asked < checkpoint and not miner.is_done:
                if miner.step() is None:
                    break
        with obs.timer("runner.score"):
            reported = miner.state.significant_rules(mode="point")
            points.append(score_report(reported, truth, miner.questions_asked))
    elapsed = time.perf_counter() - started

    normalized = [
        type(point)(
            questions=checkpoint, precision=point.precision, recall=point.recall
        )
        for checkpoint, point in zip(remaining, points)
    ]
    result = miner.result()
    if owned:
        storage.close()
    return RepetitionOutcome(
        curve=QualityCurve(label=config.name, points=tuple(normalized)),
        truth_size=len(truth),
        rules_discovered=result.rules_discovered,
        inferred_classifications=result.inferred_classifications,
        open_questions=result.open_questions,
        wall_seconds=elapsed,
        obs=result.obs,
    )


def run_timed_session(
    config: ExperimentConfig,
    population: Population,
    truth: GroundTruth,
    seed: int,
    dispatch: "DispatchConfig | None" = None,
    time_checkpoints: tuple[float, ...] | None = None,
    obs: Instrumentation | None = None,
) -> TimedCurve:
    """Run one *dispatched* session, scored on a simulated-time grid.

    The asynchronous counterpart of :func:`run_session`: the miner is
    driven by a :class:`~repro.dispatch.dispatcher.Dispatcher`, and
    quality is sampled at simulated-time checkpoints instead of
    question counts — the makespan axis that in-flight batching
    improves. When ``time_checkpoints`` is ``None`` the session is
    drained and scored only at its own makespan, yielding a one-point
    curve (useful for end-state and makespan comparisons). With
    ``config.shards`` > 1 the session is driven by a
    :class:`~repro.dispatch.sharded.ShardedDispatcher` instead.
    """
    from repro.dispatch.dispatcher import DispatchConfig, Dispatcher
    from repro.dispatch.sharded import ShardedDispatcher

    rng = as_rng(seed)
    obs = obs or Instrumentation()
    crowd = build_crowd(config, population, rng)
    miner = CrowdMiner(crowd, _miner_config(config, rng), obs=obs)
    if config.shards > 1:
        dispatcher = ShardedDispatcher(
            miner, dispatch or DispatchConfig(), shards=config.shards
        )
    else:
        dispatcher = Dispatcher(miner, dispatch or DispatchConfig())

    points: list[TimedPoint] = []

    def sample(at: float) -> None:
        with obs.timer("runner.score"):
            reported = miner.state.significant_rules(mode="point")
            precision, recall = precision_recall(reported, truth)
        points.append(
            TimedPoint(
                time=at,
                questions=miner.questions_asked,
                precision=precision,
                recall=recall,
            )
        )

    with obs.timer("runner.mine"):
        if time_checkpoints is None:
            dispatcher.run()
        else:
            for checkpoint in time_checkpoints:
                dispatcher.advance_to(checkpoint)
                sample(checkpoint)
            if not dispatcher.is_idle():
                dispatcher.run()
    sample(dispatcher.stats().makespan)
    return TimedCurve(label=config.name, points=tuple(points))


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run all repetitions of one experiment and average the curves.

    Each repetition re-draws the world (model, population, crowd) from
    a distinct sub-seed, so the averaged curve reflects the configured
    *distribution* of worlds rather than one lucky draw.
    """
    outcomes = []
    for rep in range(config.repetitions):
        # Deterministic sub-seeds (Python's hash() is salted per process
        # and would make experiments unreproducible).
        world_seed = zlib.crc32(f"{config.seed}:{rep}:world".encode())
        session_seed = zlib.crc32(f"{config.seed}:{rep}:session".encode())
        _, population, truth = build_world(config, world_seed)
        outcomes.append(run_session(config, population, truth, session_seed))
    curve = average_curves(config.name, [o.curve for o in outcomes])
    return ExperimentResult(
        config=config, curve=curve, repetitions=tuple(outcomes)
    )


def run_variants(
    base: ExperimentConfig, variants: dict[str, dict]
) -> dict[str, ExperimentResult]:
    """Run ``base`` once per variant with the given field overrides.

    >>> base = ExperimentConfig(budget=100, checkpoints=(100,), repetitions=1)
    >>> out = run_variants(base, {"a": {"strategy": "random"}})  # doctest: +SKIP
    """
    results: dict[str, ExperimentResult] = {}
    for label, overrides in variants.items():
        config = replace(base, name=label, **overrides)
        results[label] = run_experiment(config)
    return results
