"""Quality metrics: scoring mined rules against ground truth.

The paper's evaluation reports the quality of the reported
significant-rule set as a function of the number of questions asked.
The primitives here are set-retrieval metrics (precision, recall, F1)
against the exact oracle, plus curve containers that hold those metrics
at a series of question-count checkpoints.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.rule import Rule
from repro.miner.oracle import GroundTruth


@dataclass(frozen=True, slots=True)
class PRPoint:
    """Quality at one checkpoint of a session."""

    questions: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def precision_recall(
    reported: Iterable[Rule], truth: GroundTruth
) -> tuple[float, float]:
    """Precision and recall of ``reported`` against the oracle.

    Conventions for the degenerate cases: precision of an empty report
    is 1.0 (nothing claimed, nothing wrong) and recall against an empty
    truth is 1.0 (nothing to find).
    """
    reported = set(reported)
    true_set = truth.significant
    tp = len(reported & true_set)
    precision = tp / len(reported) if reported else 1.0
    recall = tp / len(true_set) if true_set else 1.0
    return precision, recall


def score_report(
    reported: Iterable[Rule], truth: GroundTruth, questions: int
) -> PRPoint:
    """One :class:`PRPoint` for a report produced after ``questions``."""
    precision, recall = precision_recall(reported, truth)
    return PRPoint(questions=questions, precision=precision, recall=recall)


@dataclass(frozen=True, slots=True)
class QualityCurve:
    """Quality checkpoints of one (or one averaged) session."""

    label: str
    points: tuple[PRPoint, ...]

    def __post_init__(self) -> None:
        qs = [p.questions for p in self.points]
        if qs != sorted(qs):
            raise ValueError("curve points must be ordered by question count")

    def final(self) -> PRPoint:
        """The last checkpoint (end-of-budget quality)."""
        if not self.points:
            raise ValueError("empty curve")
        return self.points[-1]

    def questions_to_recall(self, target: float) -> int | None:
        """First checkpoint reaching ``recall ≥ target`` (None if never)."""
        for point in self.points:
            if point.recall >= target:
                return point.questions
        return None

    def questions_to_f1(self, target: float) -> int | None:
        """First checkpoint reaching ``F1 ≥ target`` (None if never)."""
        for point in self.points:
            if point.f1 >= target:
                return point.questions
        return None


@dataclass(frozen=True, slots=True)
class TimedPoint:
    """Quality at one *simulated-time* checkpoint of a dispatched session.

    ``time`` is simulated seconds on the dispatcher's event clock;
    ``questions`` counts the answers ingested by then.
    """

    time: float
    questions: int
    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


@dataclass(frozen=True, slots=True)
class TimedCurve:
    """Quality over simulated time for one dispatched session.

    The asynchronous analogue of :class:`QualityCurve`: same metrics,
    but the x-axis is makespan, which is what in-flight batching
    improves — the question count stays roughly fixed while the time
    to reach a given quality collapses.
    """

    label: str
    points: tuple[TimedPoint, ...]

    def __post_init__(self) -> None:
        times = [p.time for p in self.points]
        if times != sorted(times):
            raise ValueError("curve points must be ordered by time")

    def final(self) -> TimedPoint:
        """The last checkpoint (end-of-session quality)."""
        if not self.points:
            raise ValueError("empty curve")
        return self.points[-1]

    def time_to_f1(self, target: float) -> float | None:
        """First checkpoint time reaching ``F1 ≥ target`` (None if never)."""
        for point in self.points:
            if point.f1 >= target:
                return point.time
        return None

    def time_to_recall(self, target: float) -> float | None:
        """First checkpoint time reaching ``recall ≥ target`` (None if never)."""
        for point in self.points:
            if point.recall >= target:
                return point.time
        return None


def average_curves(label: str, curves: Sequence[QualityCurve]) -> QualityCurve:
    """Average several repetitions' curves checkpoint-by-checkpoint.

    All curves must share the same checkpoint grid (the runner
    guarantees this).
    """
    if not curves:
        raise ValueError("need at least one curve to average")
    grids = {tuple(p.questions for p in c.points) for c in curves}
    if len(grids) != 1:
        raise ValueError("curves have mismatched checkpoint grids")
    points = []
    for idx, questions in enumerate(next(iter(grids))):
        precision = float(np.mean([c.points[idx].precision for c in curves]))
        recall = float(np.mean([c.points[idx].recall for c in curves]))
        points.append(PRPoint(questions=questions, precision=precision, recall=recall))
    return QualityCurve(label=label, points=tuple(points))
