"""JSON persistence for crowd-mining artifacts.

The prototype system kept its CrowdCache (collected answers) in a
database so sessions could stop, resume and share evidence. This module
is that layer for the library: stable, human-readable JSON round-trips
for the value objects a deployment needs to persist — rules, stats,
answer caches, mining results and transaction databases.

Format notes: every document carries a ``"format"`` tag and version so
future revisions can migrate; rules serialize as their two item lists
(not the display string) so item names may contain arbitrary
punctuation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB
from repro.errors import ReproError
from repro.miner.result import MiningResult
from repro.miner.session import AnswerCache

FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """A document could not be read: wrong tag, version or structure."""


# -- primitives ---------------------------------------------------------------


def rule_to_json(rule: Rule) -> dict[str, Any]:
    """``Rule`` → plain dict."""
    return {
        "antecedent": list(rule.antecedent),
        "consequent": list(rule.consequent),
    }


def rule_from_json(doc: dict[str, Any]) -> Rule:
    """Plain dict → ``Rule`` (raises :class:`PersistenceError`)."""
    try:
        return Rule(doc["antecedent"], doc["consequent"])
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed rule document: {doc!r}") from exc


def stats_to_json(stats: RuleStats) -> dict[str, float]:
    """``RuleStats`` → plain dict."""
    return {"support": stats.support, "confidence": stats.confidence}


def stats_from_json(doc: dict[str, Any]) -> RuleStats:
    """Plain dict → ``RuleStats``."""
    try:
        return RuleStats(float(doc["support"]), float(doc["confidence"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed stats document: {doc!r}") from exc


def _envelope(kind: str, body: dict[str, Any]) -> dict[str, Any]:
    return {"format": kind, "version": FORMAT_VERSION, **body}


def _check_envelope(doc: dict[str, Any], kind: str) -> None:
    if not isinstance(doc, dict) or doc.get("format") != kind:
        raise PersistenceError(f"not a {kind} document")
    if doc.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported {kind} version: {doc.get('version')!r}"
        )


# -- answer cache -------------------------------------------------------------------


def cache_to_json(cache: AnswerCache) -> dict[str, Any]:
    """Serialize an :class:`~repro.miner.session.AnswerCache`."""
    return _envelope(
        "answer-cache",
        {
            "closed": [
                {
                    "member": member_id,
                    "rule": rule_to_json(rule),
                    "stats": stats_to_json(stats),
                }
                for (member_id, rule), stats in cache.closed.items()
            ],
            "volunteered": [
                {"member": member_id, "rules": [rule_to_json(r) for r in rules]}
                for member_id, rules in cache.volunteered.items()
            ],
        },
    )


def cache_from_json(doc: dict[str, Any]) -> AnswerCache:
    """Deserialize an answer cache."""
    _check_envelope(doc, "answer-cache")
    cache = AnswerCache()
    for entry in doc.get("closed", []):
        cache.record_closed(
            entry["member"],
            rule_from_json(entry["rule"]),
            stats_from_json(entry["stats"]),
        )
    for entry in doc.get("volunteered", []):
        for rule_doc in entry["rules"]:
            cache.volunteered.setdefault(entry["member"], set()).add(
                rule_from_json(rule_doc)
            )
    return cache


# -- mining results ---------------------------------------------------------------------


def result_to_json(result: MiningResult) -> dict[str, Any]:
    """Serialize a mining result (the log is summarized, not replayed)."""
    return _envelope(
        "mining-result",
        {
            "significant": [
                {"rule": rule_to_json(rule), "stats": stats_to_json(stats)}
                for rule, stats in result.significant.items()
            ],
            "questions_asked": result.questions_asked,
            "closed_questions": result.closed_questions,
            "open_questions": result.open_questions,
            "rules_discovered": result.rules_discovered,
            "inferred_classifications": result.inferred_classifications,
        },
    )


def result_from_json(doc: dict[str, Any]) -> MiningResult:
    """Deserialize a mining result (without the per-question log)."""
    _check_envelope(doc, "mining-result")
    try:
        significant = {
            rule_from_json(entry["rule"]): stats_from_json(entry["stats"])
            for entry in doc["significant"]
        }
        return MiningResult(
            significant=significant,
            questions_asked=int(doc["questions_asked"]),
            closed_questions=int(doc["closed_questions"]),
            open_questions=int(doc["open_questions"]),
            rules_discovered=int(doc["rules_discovered"]),
            inferred_classifications=int(doc["inferred_classifications"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError("malformed mining-result document") from exc


# -- transaction databases -----------------------------------------------------------------


def db_to_json(db: TransactionDB) -> dict[str, Any]:
    """Serialize a transaction database (transactions as sorted lists)."""
    return _envelope(
        "transaction-db",
        {"transactions": [sorted(row) for row in db]},
    )


def db_from_json(doc: dict[str, Any]) -> TransactionDB:
    """Deserialize a transaction database."""
    _check_envelope(doc, "transaction-db")
    try:
        return TransactionDB(doc["transactions"])
    except (KeyError, TypeError) as exc:
        raise PersistenceError("malformed transaction-db document") from exc


# -- file helpers -----------------------------------------------------------------------------


def save_json(doc: dict[str, Any], path: str | Path) -> None:
    """Write a document to ``path`` (pretty-printed, stable key order)."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON document from ``path``."""
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"invalid JSON in {path}") from exc
