"""The significance test: classify rules from collected evidence.

A rule is *significant* when the crowd-mean support and confidence both
clear the query thresholds ``(θ_s, θ_c)``. Evidence about a rule is a
set of per-member observations; by the central limit theorem the sample
mean is approximately bivariate normal around the true mean, so the
probability that the rule is truly significant is the mass of that
normal in the upper-right threshold quadrant.

:class:`SignificanceTest` turns that probability into a three-way
decision (the multi-user algorithm's aggregator can answer *yes*, *no*
or *undecided*):

- ``p ≥ decision_confidence`` → **significant**;
- ``p ≤ 1 − decision_confidence`` → **insignificant**;
- otherwise → **undecided** (more answers needed).

The same probability drives question selection: the rule's
*uncertainty* ``min(p, 1 − p)`` is the probability of misclassifying it
if forced to decide now, and the adaptive strategy asks about the rule
whose uncertainty is largest.

Two practical guards temper the raw normal approximation:

- a **minimum sample count** before any final decision (a single
  enthusiastic answer must not settle a rule);
- a **variance floor** reflecting answer coarseness: Likert-coarsened
  answers can agree exactly, producing a zero sample variance that
  would otherwise make the test infinitely confident.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro._util import check_fraction, check_positive
from repro.estimation.normal import (
    quadrant_probability,
    quadrant_probability_independent,
)
from repro.estimation.samples import EstimateSummary


@dataclass(frozen=True, slots=True)
class Thresholds:
    """The query's significance thresholds ``(θ_s, θ_c)``.

    The support threshold has the paper's intuitive reading: a habit's
    minimum average frequency (e.g. ``3/365`` ≈ "at least three times a
    year").
    """

    support: float
    confidence: float

    def __post_init__(self) -> None:
        check_fraction(self.support, "support threshold")
        check_fraction(self.confidence, "confidence threshold")

    def as_tuple(self) -> tuple[float, float]:
        """``(θ_s, θ_c)`` as a plain tuple."""
        return (self.support, self.confidence)


class Decision(enum.Enum):
    """Three-way classification of a rule."""

    SIGNIFICANT = "significant"
    INSIGNIFICANT = "insignificant"
    UNDECIDED = "undecided"

    @property
    def is_final(self) -> bool:
        """True for the two settled outcomes."""
        return self is not Decision.UNDECIDED


@dataclass(frozen=True, slots=True)
class Assessment:
    """The test's full output for one rule."""

    decision: Decision
    probability_significant: float
    uncertainty: float
    n: int


class SignificanceTest:
    """Classify rules and quantify their uncertainty.

    Parameters
    ----------
    thresholds:
        The query thresholds.
    decision_confidence:
        One-sided confidence required to settle a rule (default 0.9).
    min_samples:
        Minimum distinct members answering before a final decision.
    variance_floor:
        Lower bound applied to each component's *per-observation*
        variance, encoding irreducible answer coarseness. The floor on
        the mean's variance therefore decays as ``floor / n``.
    use_covariance:
        When false, the upper-quadrant probability is the product of
        the two marginal probabilities (the E9 ablation).
    prior_std:
        Per-observation standard deviation assumed while ``n < 2``
        (before any sample covariance exists).
    """

    def __init__(
        self,
        thresholds: Thresholds,
        decision_confidence: float = 0.9,
        min_samples: int = 3,
        variance_floor: float = 0.01**2,
        use_covariance: bool = True,
        prior_std: float = 0.25,
    ) -> None:
        if not 0.5 < decision_confidence < 1.0:
            raise ValueError(
                f"decision_confidence must be in (0.5, 1), got {decision_confidence}"
            )
        self.thresholds = thresholds
        self.decision_confidence = float(decision_confidence)
        self.min_samples = check_positive(min_samples, "min_samples")
        if variance_floor < 0:
            raise ValueError("variance_floor must be non-negative")
        self.variance_floor = float(variance_floor)
        self.use_covariance = bool(use_covariance)
        if prior_std <= 0:
            raise ValueError("prior_std must be positive")
        self.prior_std = float(prior_std)

    # -- core computation -------------------------------------------------------

    def _effective_mean_cov(self, summary: EstimateSummary) -> np.ndarray:
        """The mean-estimate covariance with priors and floors applied."""
        n = max(summary.n, 1)
        cov = np.array(summary.mean_cov, dtype=float, copy=True)
        if summary.n < 2:
            # No sample covariance yet: fall back to the prior spread.
            prior_var = self.prior_std**2 / n
            cov = np.diag([prior_var, prior_var])
        floor = self.variance_floor / n
        cov[0, 0] = max(cov[0, 0], floor)
        cov[1, 1] = max(cov[1, 1], floor)
        return cov

    def probability_significant(self, summary: EstimateSummary) -> float:
        """``P(true mean lies in the significant quadrant | evidence)``.

        With no evidence at all the probability is 0.5 — maximal
        uncertainty, which makes unseen rules maximally interesting to
        strategies that rank by uncertainty.
        """
        if summary.n == 0:
            return 0.5
        cov = self._effective_mean_cov(summary)
        quadrant = (
            quadrant_probability
            if self.use_covariance
            else quadrant_probability_independent
        )
        return quadrant(summary.mean, cov, self.thresholds.as_tuple())

    def probability_support_exceeds(self, summary: EstimateSummary) -> float:
        """Marginal ``P(crowd-mean support ≥ θ_s | evidence)``.

        Confidence is *not* monotone along the rule lattice but support
        is, so lattice pruning may only rely on this marginal: a rule
        whose support is confidently below threshold condemns all of
        its specializations, whatever their confidences.
        """
        if summary.n == 0:
            return 0.5
        cov = self._effective_mean_cov(summary)
        var = float(cov[0, 0])
        mean = float(summary.mean[0])
        if var <= 0:
            return 1.0 if mean >= self.thresholds.support else 0.0
        return float(norm.sf(self.thresholds.support, loc=mean, scale=math.sqrt(var)))

    def assess(self, summary: EstimateSummary) -> Assessment:
        """Full three-way assessment of a rule's evidence."""
        p = self.probability_significant(summary)
        uncertainty = min(p, 1.0 - p)
        if summary.n < self.min_samples:
            decision = Decision.UNDECIDED
        elif p >= self.decision_confidence:
            decision = Decision.SIGNIFICANT
        elif p <= 1.0 - self.decision_confidence:
            decision = Decision.INSIGNIFICANT
        else:
            decision = Decision.UNDECIDED
        return Assessment(
            decision=decision,
            probability_significant=p,
            uncertainty=uncertainty,
            n=summary.n,
        )

    def point_decision(self, summary: EstimateSummary) -> Decision:
        """The forced (point-estimate) classification, ignoring confidence.

        Used when a budget runs out and every rule must be labelled:
        compare the mean estimate to the thresholds directly.
        """
        if summary.n == 0:
            return Decision.INSIGNIFICANT
        s, c = float(summary.mean[0]), float(summary.mean[1])
        # The same answers summed in a different order (live streaming
        # vs cache replay) can land a float ulp apart; a mean sitting
        # exactly on a threshold must classify the same either way.
        tolerance = 1e-9
        if (
            s >= self.thresholds.support - tolerance
            and c >= self.thresholds.confidence - tolerance
        ):
            return Decision.SIGNIFICANT
        return Decision.INSIGNIFICANT

    def __repr__(self) -> str:
        return (
            f"SignificanceTest(thresholds=({self.thresholds.support}, "
            f"{self.thresholds.confidence}), confidence={self.decision_confidence}, "
            f"min_samples={self.min_samples})"
        )
