"""Within-member consistency checking (spammer screening).

The papers point out a cheap, crowd-mining-specific quality signal:
support is antitone along the rule lattice, so a member who reports a
*higher* support for a more specific rule than for its generalization
is inconsistent with any possible personal database. Honest-but-noisy
members violate this only slightly; spammers violate it wildly.

:class:`ConsistencyChecker` accumulates every member's answers, scores
the monotonicity violations between comparable rule pairs, and exposes
trust weights (1 for perfectly consistent members, decaying with
violation magnitude) suitable for
:class:`~repro.estimation.aggregate.WeightedAggregator`.

Comparability is judged on rule *bodies*: a rule's support depends only
on ``antecedent ∪ consequent``, so any two answered rules whose bodies
are subset-ordered give a checkable support pair — a much denser test
than full rule-generalization comparability, which matters because each
member only ever answers a handful of questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.measures import RuleStats
from repro.core.rule import Rule


@dataclass(slots=True)
class MemberRecord:
    """One member's answer history and violation tally."""

    answers: dict[Rule, RuleStats] = field(default_factory=dict)
    violation_total: float = 0.0
    comparable_pairs: int = 0

    @property
    def mean_violation(self) -> float:
        """Average violation magnitude over comparable pairs (0 if none)."""
        if self.comparable_pairs == 0:
            return 0.0
        return self.violation_total / self.comparable_pairs


class ConsistencyChecker:
    """Trust scoring from support-monotonicity violations.

    Parameters
    ----------
    tolerance:
        *Mean* violation forgiven entirely. Honest members violate
        rarely and mildly (noise and Likert coarsening on borderline
        pairs), so their mean stays small even though an individual
        violation can reach a grid step; random answerers violate on
        roughly half of comparable pairs.
    severity:
        How fast trust decays past the tolerance; trust is
        ``1 / (1 + severity · excess)`` where ``excess`` is the mean
        violation beyond tolerance.
    """

    def __init__(self, tolerance: float = 0.05, severity: float = 20.0) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if severity < 0:
            raise ValueError("severity must be non-negative")
        self.tolerance = float(tolerance)
        self.severity = float(severity)
        self._members: dict[str, MemberRecord] = {}
        #: Monotonic change counter: any recorded answer may move some
        #: member's mean violation, hence their trust weight — consumers
        #: caching trust-weighted aggregates key on this.
        self.version = 0

    def record(self, member_id: str, rule: Rule, stats: RuleStats) -> None:
        """Record one answer and update the member's violation tally.

        The new answer is compared against every *comparable* rule the
        member answered before: for ``general ⪯ specific``, reported
        ``supp(specific) − supp(general)`` above zero is a violation.
        """
        self.version += 1
        record = self._members.setdefault(member_id, MemberRecord())
        body = rule.body
        for other_rule, other_stats in record.answers.items():
            other_body = other_rule.body
            if body < other_body:
                general_support, specific_support = stats.support, other_stats.support
            elif other_body < body:
                general_support, specific_support = other_stats.support, stats.support
            elif body == other_body and other_rule != rule:
                # Equal bodies must report equal supports (any split of
                # the same body has the same support); score the gap.
                general_support = max(stats.support, other_stats.support)
                specific_support = general_support
                record.comparable_pairs += 1
                record.violation_total += abs(stats.support - other_stats.support)
                continue
            else:
                continue
            record.comparable_pairs += 1
            violation = max(0.0, specific_support - general_support)
            record.violation_total += violation
        # Revised answers replace the old observation.
        record.answers[rule] = stats

    def violation_score(self, member_id: str) -> float:
        """Mean violation magnitude for the member (0 when unknown)."""
        record = self._members.get(member_id)
        return 0.0 if record is None else record.mean_violation

    def trust(self, member_id: str) -> float:
        """Trust weight in ``(0, 1]``; 1 means no evidence of spamming."""
        excess = max(0.0, self.violation_score(member_id) - self.tolerance)
        return 1.0 / (1.0 + self.severity * excess)

    def trust_weights(self) -> dict[str, float]:
        """Trust weights for every member seen so far."""
        return {member_id: self.trust(member_id) for member_id in self._members}

    def flagged(self, threshold: float = 0.5) -> list[str]:
        """Members whose trust fell below ``threshold`` (likely spammers)."""
        return sorted(
            member_id
            for member_id in self._members
            if self.trust(member_id) < threshold
        )
