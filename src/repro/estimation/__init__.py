"""Estimation framework: from collected answers to classified rules.

Streaming per-rule statistics, bivariate-normal significance testing
with three-way decisions, pluggable cross-member aggregation, and
consistency-based spammer screening.
"""

from repro.estimation.aggregate import (
    Aggregator,
    DynamicTrustAggregator,
    MeanAggregator,
    TrimmedMeanAggregator,
    WeightedAggregator,
)
from repro.estimation.consistency import ConsistencyChecker, MemberRecord
from repro.estimation.intervals import (
    EstimateIntervals,
    Interval,
    summary_intervals,
    wald_interval,
    wilson_interval,
)
from repro.estimation.normal import (
    quadrant_probability,
    quadrant_probability_independent,
)
from repro.estimation.samples import EstimateSummary, RuleSamples
from repro.estimation.significance import (
    Assessment,
    Decision,
    SignificanceTest,
    Thresholds,
)
from repro.estimation.welford import StreamingMeanCov

__all__ = [
    "Aggregator",
    "Assessment",
    "ConsistencyChecker",
    "Decision",
    "DynamicTrustAggregator",
    "EstimateIntervals",
    "EstimateSummary",
    "Interval",
    "MeanAggregator",
    "MemberRecord",
    "RuleSamples",
    "SignificanceTest",
    "StreamingMeanCov",
    "Thresholds",
    "TrimmedMeanAggregator",
    "WeightedAggregator",
    "quadrant_probability",
    "summary_intervals",
    "wald_interval",
    "wilson_interval",
    "quadrant_probability_independent",
]
