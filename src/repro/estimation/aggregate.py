"""Cross-member aggregation policies.

The paper treats the answer aggregator as a *black box*: given the
answers collected for a rule, decide the current estimate (and hence,
downstream, the significance classification). The default box is the
plain sample mean; this module provides it and two robust variants
used in the spammer-robustness experiments:

- :class:`MeanAggregator` — plain mean/covariance (O(1), streaming);
- :class:`TrimmedMeanAggregator` — drop the most extreme answers
  componentwise before averaging, which bounds the influence of a
  minority of spammers;
- :class:`WeightedAggregator` — per-member trust weights (e.g. from an
  external worker-quality system).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro._util import check_fraction
from repro.estimation.samples import EstimateSummary, RuleSamples


class Aggregator:
    """Base aggregation policy: turn a sample store into an estimate."""

    def summarize(self, samples: RuleSamples) -> EstimateSummary:
        """Compute the estimate snapshot for ``samples``."""
        raise NotImplementedError

    @property
    def version(self) -> int:
        """Monotonic cache token for the policy's *own* state.

        A summary computed for a sample store is reusable while both
        the store's version and this version are unchanged. Policies
        that are pure functions of the samples (the default) never
        change, hence the constant 0; policies reading live external
        state (:class:`DynamicTrustAggregator`) must bump this whenever
        that state may have moved.
        """
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MeanAggregator(Aggregator):
    """The plain sample mean — the paper's default black box.

    Delegates to the store's streaming estimator, so it costs O(1) per
    read regardless of sample count.
    """

    def summarize(self, samples: RuleSamples) -> EstimateSummary:
        return samples.summary()


def _summary_from_array(data: np.ndarray) -> EstimateSummary:
    n = data.shape[0]
    if n == 0:
        return EstimateSummary(0, np.zeros(2), np.zeros((2, 2)))
    mean = data.mean(axis=0)
    if n < 2:
        return EstimateSummary(n, mean, np.zeros((2, 2)))
    cov = np.cov(data, rowvar=False, ddof=1)
    return EstimateSummary(n, mean, cov / n)


class TrimmedMeanAggregator(Aggregator):
    """Symmetric componentwise trimming before averaging.

    ``trim`` is the fraction removed from *each* tail of each
    component (so ``trim=0.1`` drops the lowest and highest 10 % of
    support answers and, independently, of confidence answers). With a
    spammer fraction below ``trim``, spam answers cannot move the
    estimate beyond the trimmed range.

    Componentwise trimming technically breaks the joint-sample pairing
    for the covariance; we recompute the covariance on the rows that
    survive *both* components' trims, a standard practical compromise.
    """

    def __init__(self, trim: float = 0.1) -> None:
        check_fraction(trim, "trim")
        if trim >= 0.5:
            raise ValueError("trim must be < 0.5 (cannot trim everything)")
        self.trim = float(trim)

    def summarize(self, samples: RuleSamples) -> EstimateSummary:
        data = samples.as_array()
        n = data.shape[0]
        k = int(np.floor(self.trim * n))
        if n == 0 or k == 0:
            return _summary_from_array(data)
        keep = np.ones(n, dtype=bool)
        for component in range(2):
            order = np.argsort(data[:, component], kind="stable")
            keep[order[:k]] = False
            keep[order[n - k :]] = False
        survivors = data[keep]
        if survivors.shape[0] == 0:
            survivors = data
        return _summary_from_array(survivors)

    def __repr__(self) -> str:
        return f"TrimmedMeanAggregator(trim={self.trim})"


class DynamicTrustAggregator(Aggregator):
    """Trust-weighted aggregation with *live* weights.

    Wraps a :class:`~repro.estimation.consistency.ConsistencyChecker`
    (or any object with a ``trust(member_id) -> float`` method) and
    re-reads each member's trust at every summarize call, so estimates
    automatically discount members whose answers have since revealed
    them as inconsistent. This is the aggregation mode behind the
    miner's spammer screening.
    """

    def __init__(self, trust_source) -> None:
        if not callable(getattr(trust_source, "trust", None)):
            raise TypeError("trust_source must expose trust(member_id) -> float")
        self.trust_source = trust_source
        self._fallback_version = 0

    @property
    def version(self) -> int:
        """Tracks the trust source so cached summaries invalidate.

        A trust source without a ``version`` attribute (any object with
        just ``trust()``) gives no change signal, so every read reports
        a fresh version — caching is disabled rather than risking stale
        trust weights.
        """
        source_version = getattr(self.trust_source, "version", None)
        if source_version is None:
            self._fallback_version += 1
            return self._fallback_version
        return int(source_version)

    def summarize(self, samples: RuleSamples) -> EstimateSummary:
        weights = {
            member_id: self.trust_source.trust(member_id)
            for member_id in samples.member_ids
        }
        if all(w == 1.0 for w in weights.values()):
            # With full trust all round, the weighted mean *is* the
            # plain mean — but computed batch-wise it differs from the
            # streaming estimate in float ulps. Taking the exact
            # streaming path keeps trust-enabled sessions byte-identical
            # to plain ones until some member actually loses trust (and
            # reuses the O(1) estimator instead of an O(n) recompute).
            return samples.summary()
        return WeightedAggregator(weights).summarize(samples)

    def __repr__(self) -> str:
        return f"DynamicTrustAggregator({self.trust_source!r})"


class WeightedAggregator(Aggregator):
    """Trust-weighted mean with effective-sample-size covariance scaling.

    ``weights`` maps member ids to non-negative trust weights; members
    absent from the mapping get ``default_weight``. The covariance of
    the weighted mean uses Kish's effective sample size
    ``(Σw)² / Σw²`` in place of ``n``.
    """

    def __init__(
        self, weights: Mapping[str, float], default_weight: float = 1.0
    ) -> None:
        for member, w in weights.items():
            if w < 0:
                raise ValueError(f"negative weight for member {member!r}")
        if default_weight < 0:
            raise ValueError("default_weight must be non-negative")
        self.weights = dict(weights)
        self.default_weight = float(default_weight)

    def summarize(self, samples: RuleSamples) -> EstimateSummary:
        members = sorted(samples.member_ids)
        if not members:
            return EstimateSummary(0, np.zeros(2), np.zeros((2, 2)))
        data = np.array(
            [samples.observation_of(m).as_tuple() for m in members]  # type: ignore[union-attr]
        )
        w = np.array([self.weights.get(m, self.default_weight) for m in members])
        if w.sum() <= 0:
            # Every contributor has zero trust (e.g. all quarantined,
            # purge pending). Falling back to the unweighted mean would
            # count their evidence at full weight — report no usable
            # evidence instead, so the rule reads as unresolved.
            return EstimateSummary(0, np.zeros(2), np.zeros((2, 2)))
        w = w / w.sum()
        mean = (w[:, None] * data).sum(axis=0)
        n = data.shape[0]
        if n < 2:
            return EstimateSummary(n, mean, np.zeros((2, 2)))
        centred = data - mean
        cov = (w[:, None, None] * np.einsum("ni,nj->nij", centred, centred)).sum(axis=0)
        cov = cov / max(1e-12, (1.0 - float((w**2).sum())))  # unbiased-ish
        ess = 1.0 / float((w**2).sum())
        return EstimateSummary(n, mean, cov / ess)

    def __repr__(self) -> str:
        return f"WeightedAggregator({len(self.weights)} weights)"
