"""Confidence intervals for rule estimates.

The significance test answers "is this rule above the thresholds?";
users of mined results also want *how sure, and in what range* — error
bars on the reported support/confidence. This module provides the
standard constructions:

- Wald (normal-approximation) intervals from the sample mean and
  covariance — matches the test's own approximation, cheap, and fine
  for the moderate sample sizes the miner collects;
- Wilson score intervals for a single member's support answer when it
  can be traced back to a count over a known number of occasions —
  better behaved near 0 and 1;
- a joint confidence *ellipse* summary (axis-aligned bounding box of
  the Mahalanobis ellipse) for the 2-D (support, confidence) mean.

All intervals are clipped into ``[0, 1]`` since the quantities are
frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2, norm

from repro._util import check_fraction, check_positive, clamp01
from repro.errors import EstimationError
from repro.estimation.samples import EstimateSummary


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval within ``[0, 1]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError(f"invalid interval [{self.low}, {self.high}]")

    @property
    def width(self) -> float:
        """``high − low``."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True when ``low ≤ value ≤ high``."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"[{self.low:.3f}, {self.high:.3f}]"


def wald_interval(mean: float, variance: float, level: float = 0.95) -> Interval:
    """Normal-approximation interval ``mean ± z·σ``, clipped to [0, 1].

    ``variance`` is the variance *of the mean estimate* (i.e. already
    divided by the sample count).
    """
    check_fraction(level, "level")
    if variance < 0:
        raise EstimationError("variance must be non-negative")
    z = float(norm.ppf(0.5 + level / 2.0))
    half = z * math.sqrt(variance)
    return Interval(clamp01(mean - half), clamp01(mean + half))


def wilson_interval(successes: int, trials: int, level: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion.

    Appropriate for a support estimate backed by an explicit count
    (``successes`` occasions out of ``trials``), e.g. when a member
    reports "about 12 times out of the last year's 365 days".
    """
    check_positive(trials, "trials")
    if not 0 <= successes <= trials:
        raise EstimationError(
            f"successes ({successes}) must lie in [0, trials={trials}]"
        )
    check_fraction(level, "level")
    z = float(norm.ppf(0.5 + level / 2.0))
    p = successes / trials
    denom = 1.0 + z**2 / trials
    centre = (p + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return Interval(clamp01(centre - half), clamp01(centre + half))


@dataclass(frozen=True, slots=True)
class EstimateIntervals:
    """Error bars on a rule's aggregated (support, confidence) estimate."""

    support: Interval
    confidence: Interval
    level: float
    n: int

    def __str__(self) -> str:
        return (
            f"support {self.support}, confidence {self.confidence} "
            f"({self.level:.0%}, n={self.n})"
        )


def summary_intervals(
    summary: EstimateSummary,
    level: float = 0.95,
    joint: bool = False,
) -> EstimateIntervals:
    """Error bars for an :class:`~repro.estimation.samples.EstimateSummary`.

    Parameters
    ----------
    summary:
        The aggregated evidence snapshot.
    level:
        Coverage level of each interval.
    joint:
        When true, the two intervals are the axis-aligned bounding box
        of the joint ``level`` Mahalanobis ellipse (simultaneous
        coverage); when false (default), each is a marginal interval.

    Raises
    ------
    EstimationError
        When the summary holds no evidence at all.
    """
    if summary.n == 0:
        raise EstimationError("cannot build intervals from zero samples")
    cov = np.asarray(summary.mean_cov, dtype=float)
    if joint:
        # Bounding box of the χ²(2) ellipse: half-widths √(c·Σᵢᵢ).
        c = float(chi2.ppf(level, df=2))
        half_s = math.sqrt(max(0.0, c * cov[0, 0]))
        half_c = math.sqrt(max(0.0, c * cov[1, 1]))
        support = Interval(
            clamp01(summary.mean[0] - half_s), clamp01(summary.mean[0] + half_s)
        )
        confidence = Interval(
            clamp01(summary.mean[1] - half_c), clamp01(summary.mean[1] + half_c)
        )
    else:
        support = wald_interval(float(summary.mean[0]), float(cov[0, 0]), level)
        confidence = wald_interval(float(summary.mean[1]), float(cov[1, 1]), level)
    return EstimateIntervals(
        support=support, confidence=confidence, level=level, n=summary.n
    )
