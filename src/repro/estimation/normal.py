"""Bivariate-normal probability helpers.

The significance test needs one primitive: given the (approximately
normal) sampling distribution of a rule's mean ``(support, confidence)``
vector, what probability mass lies in the *significant quadrant*
``[θ_s, ∞) × [θ_c, ∞)``?

For a proper bivariate normal this is computed from the joint CDF by
inclusion–exclusion; degenerate cases (zero variance in one or both
components — common early in a session, or under Likert coarsening
where all answers coincide) collapse to univariate or deterministic
evaluations rather than feeding a singular covariance to scipy.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtr
from scipy.stats import multivariate_normal

try:  # scipy's deterministic bivariate-normal kernel (see _bvn_cdf)
    from scipy.stats._qmvnt import _bvn as _scipy_bvn
except ImportError:  # pragma: no cover - older/newer scipy layout
    _scipy_bvn = None

#: Variances below this are treated as exactly zero (deterministic).
DEGENERATE_VARIANCE = 1e-18

_NEG_INF_2 = np.array([-np.inf, -np.inf])


def _survival_1d(mean: float, var: float, threshold: float) -> float:
    """``P(X ≥ threshold)`` for ``X ~ N(mean, var)`` (var may be 0).

    ``ndtr`` is the exact kernel behind ``norm.sf`` — same values,
    without the distribution-object dispatch (this sits on the
    per-answer significance path; see :func:`_bvn_cdf`).
    """
    if var <= DEGENERATE_VARIANCE:
        return 1.0 if mean >= threshold else 0.0
    return float(ndtr(-(threshold - mean) / math.sqrt(var)))


def _bvn_cdf(point: np.ndarray, mean: np.ndarray, cov: np.ndarray) -> float:
    """``P(X ≤ point)`` for a proper bivariate normal.

    In two dimensions a frozen ``multivariate_normal(mean, cov)``
    ``.cdf(point)`` bottoms out in scipy's deterministic ``_bvn``
    closed form (Drezner–Wesolowsky via ``_bvnu``) — the QMC machinery
    and its rng are never touched. Calling that kernel directly gives
    identical values while skipping per-call frozen construction
    (docstring formatting, eigendecomposition) and the
    ``apply_along_axis`` wrapper, which together cost several times
    the kernel itself. The public path stays as a fallback against
    scipy internals moving.
    """
    if _scipy_bvn is not None:
        try:
            return float(_scipy_bvn(_NEG_INF_2, point - mean, cov))
        except (TypeError, ValueError):
            pass
    dist = multivariate_normal(mean=mean, cov=cov, allow_singular=True)
    return float(dist.cdf(point))


def quadrant_probability(
    mean: np.ndarray,
    cov: np.ndarray,
    thresholds: tuple[float, float],
) -> float:
    """``P(X ≥ θ_1 and Y ≥ θ_2)`` for ``(X, Y) ~ N(mean, cov)``.

    Parameters
    ----------
    mean:
        2-vector of means.
    cov:
        2×2 covariance matrix; may be singular or all-zero.
    thresholds:
        The quadrant corner ``(θ_1, θ_2)``.

    Returns
    -------
    float
        The upper-quadrant probability, in ``[0, 1]``.
    """
    mean = np.asarray(mean, dtype=float)
    cov = np.asarray(cov, dtype=float)
    t1, t2 = float(thresholds[0]), float(thresholds[1])
    v1, v2 = float(cov[0, 0]), float(cov[1, 1])

    deg1 = v1 <= DEGENERATE_VARIANCE
    deg2 = v2 <= DEGENERATE_VARIANCE
    if deg1 and deg2:
        return 1.0 if (mean[0] >= t1 and mean[1] >= t2) else 0.0
    if deg1:
        if mean[0] < t1:
            return 0.0
        return _survival_1d(mean[1], v2, t2)
    if deg2:
        if mean[1] < t2:
            return 0.0
        return _survival_1d(mean[0], v1, t1)

    # Guard against numerically singular correlation (|ρ| → 1): shrink
    # the off-diagonal slightly so the CDF is well defined.
    rho = cov[0, 1] / math.sqrt(v1 * v2)
    rho = max(-0.999, min(0.999, rho))
    safe_cov = np.array(
        [[v1, rho * math.sqrt(v1 * v2)], [rho * math.sqrt(v1 * v2), v2]]
    )
    # Inclusion–exclusion: P(X≥a, Y≥b) = 1 − F_X(a) − F_Y(b) + F(a, b).
    f_joint = _bvn_cdf(np.array([t1, t2]), mean, safe_cov)
    f_x = float(ndtr((t1 - mean[0]) / math.sqrt(v1)))
    f_y = float(ndtr((t2 - mean[1]) / math.sqrt(v2)))
    p = 1.0 - f_x - f_y + f_joint
    return float(min(1.0, max(0.0, p)))


def quadrant_probability_independent(
    mean: np.ndarray,
    cov: np.ndarray,
    thresholds: tuple[float, float],
) -> float:
    """Quadrant probability ignoring the support/confidence correlation.

    The product of the two marginal survival probabilities. This is
    the E9 ablation's "no covariance" variant — cheaper, but it
    misjudges rules whose support and confidence estimates co-vary
    (which they do: both derive from the same personal frequencies).
    """
    mean = np.asarray(mean, dtype=float)
    cov = np.asarray(cov, dtype=float)
    p1 = _survival_1d(float(mean[0]), float(cov[0, 0]), float(thresholds[0]))
    p2 = _survival_1d(float(mean[1]), float(cov[1, 1]), float(thresholds[1]))
    return p1 * p2
