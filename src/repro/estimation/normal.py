"""Bivariate-normal probability helpers.

The significance test needs one primitive: given the (approximately
normal) sampling distribution of a rule's mean ``(support, confidence)``
vector, what probability mass lies in the *significant quadrant*
``[θ_s, ∞) × [θ_c, ∞)``?

For a proper bivariate normal this is computed from the joint CDF by
inclusion–exclusion; degenerate cases (zero variance in one or both
components — common early in a session, or under Likert coarsening
where all answers coincide) collapse to univariate or deterministic
evaluations rather than feeding a singular covariance to scipy.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import multivariate_normal, norm

#: Variances below this are treated as exactly zero (deterministic).
DEGENERATE_VARIANCE = 1e-18


def _survival_1d(mean: float, var: float, threshold: float) -> float:
    """``P(X ≥ threshold)`` for ``X ~ N(mean, var)`` (var may be 0)."""
    if var <= DEGENERATE_VARIANCE:
        return 1.0 if mean >= threshold else 0.0
    return float(norm.sf(threshold, loc=mean, scale=math.sqrt(var)))


def quadrant_probability(
    mean: np.ndarray,
    cov: np.ndarray,
    thresholds: tuple[float, float],
) -> float:
    """``P(X ≥ θ_1 and Y ≥ θ_2)`` for ``(X, Y) ~ N(mean, cov)``.

    Parameters
    ----------
    mean:
        2-vector of means.
    cov:
        2×2 covariance matrix; may be singular or all-zero.
    thresholds:
        The quadrant corner ``(θ_1, θ_2)``.

    Returns
    -------
    float
        The upper-quadrant probability, in ``[0, 1]``.
    """
    mean = np.asarray(mean, dtype=float)
    cov = np.asarray(cov, dtype=float)
    t1, t2 = float(thresholds[0]), float(thresholds[1])
    v1, v2 = float(cov[0, 0]), float(cov[1, 1])

    deg1 = v1 <= DEGENERATE_VARIANCE
    deg2 = v2 <= DEGENERATE_VARIANCE
    if deg1 and deg2:
        return 1.0 if (mean[0] >= t1 and mean[1] >= t2) else 0.0
    if deg1:
        if mean[0] < t1:
            return 0.0
        return _survival_1d(mean[1], v2, t2)
    if deg2:
        if mean[1] < t2:
            return 0.0
        return _survival_1d(mean[0], v1, t1)

    # Guard against numerically singular correlation (|ρ| → 1): shrink
    # the off-diagonal slightly so the CDF is well defined.
    rho = cov[0, 1] / math.sqrt(v1 * v2)
    rho = max(-0.999, min(0.999, rho))
    safe_cov = np.array(
        [[v1, rho * math.sqrt(v1 * v2)], [rho * math.sqrt(v1 * v2), v2]]
    )
    dist = multivariate_normal(mean=mean, cov=safe_cov, allow_singular=True)
    # Inclusion–exclusion: P(X≥a, Y≥b) = 1 − F_X(a) − F_Y(b) + F(a, b).
    f_joint = float(dist.cdf(np.array([t1, t2])))
    f_x = float(norm.cdf(t1, loc=mean[0], scale=math.sqrt(v1)))
    f_y = float(norm.cdf(t2, loc=mean[1], scale=math.sqrt(v2)))
    p = 1.0 - f_x - f_y + f_joint
    return float(min(1.0, max(0.0, p)))


def quadrant_probability_independent(
    mean: np.ndarray,
    cov: np.ndarray,
    thresholds: tuple[float, float],
) -> float:
    """Quadrant probability ignoring the support/confidence correlation.

    The product of the two marginal survival probabilities. This is
    the E9 ablation's "no covariance" variant — cheaper, but it
    misjudges rules whose support and confidence estimates co-vary
    (which they do: both derive from the same personal frequencies).
    """
    mean = np.asarray(mean, dtype=float)
    cov = np.asarray(cov, dtype=float)
    p1 = _survival_1d(float(mean[0]), float(cov[0, 0]), float(thresholds[0]))
    p2 = _survival_1d(float(mean[1]), float(cov[1, 1]), float(thresholds[1]))
    return p1 * p2
