"""Streaming mean/covariance estimation (2-D Welford).

The miner updates per-rule estimates after every single answer, and the
question-selection step reads every rule's estimate; both need to be
cheap. Welford's online algorithm maintains the sample mean and the
sample covariance of the 2-vector ``(support, confidence)`` in O(1) per
update, with the usual numerical-stability advantages over naive
sum-of-squares accumulation.
"""

from __future__ import annotations

import numpy as np


class StreamingMeanCov:
    """Online sample mean and covariance of 2-D observations.

    Implements the Welford/Chan update: after ``add((s, c))`` calls,
    :attr:`mean` is the sample mean and :attr:`cov` the *unbiased*
    (ddof = 1) sample covariance. With fewer than two observations the
    covariance is reported as the zero matrix (callers apply their own
    priors/floors; see :mod:`repro.estimation.significance`).

    >>> est = StreamingMeanCov()
    >>> for x in [(0.2, 0.5), (0.4, 0.7)]:
    ...     est.add(x)
    >>> est.n
    2
    >>> bool(abs(est.mean[0] - 0.3) < 1e-12)
    True
    """

    __slots__ = ("_n", "_mean", "_m2")

    def __init__(self) -> None:
        self._n = 0
        self._mean = np.zeros(2)
        self._m2 = np.zeros((2, 2))

    def __getstate__(self) -> tuple:
        # Plain floats, not arrays: sessions checkpoint one estimator
        # per known rule, and pickling thousands of tiny numpy arrays
        # dominates the checkpoint budget. float() is exact, so the
        # round trip is bit-identical.
        return (
            self._n,
            (float(self._mean[0]), float(self._mean[1])),
            (
                float(self._m2[0, 0]), float(self._m2[0, 1]),
                float(self._m2[1, 0]), float(self._m2[1, 1]),
            ),
        )

    def __setstate__(self, state: tuple) -> None:
        n, mean, m2 = state
        self._n = n
        self._mean = np.array(mean)
        self._m2 = np.array([[m2[0], m2[1]], [m2[2], m2[3]]])

    def add(self, observation: tuple[float, float] | np.ndarray) -> None:
        """Incorporate one ``(support, confidence)`` observation."""
        x = np.asarray(observation, dtype=float)
        if x.shape != (2,):
            raise ValueError(f"observation must be a 2-vector, got shape {x.shape}")
        self._n += 1
        delta = x - self._mean
        self._mean = self._mean + delta / self._n
        delta2 = x - self._mean
        self._m2 = self._m2 + np.outer(delta, delta2)

    def remove(self, observation: tuple[float, float] | np.ndarray) -> None:
        """Remove a previously-added observation (reverse Welford).

        Supports the replace-a-member's-answer flow: when a member
        revises an answer, the old sample is removed and the new one
        added, keeping estimates exact without replaying history.
        """
        x = np.asarray(observation, dtype=float)
        if self._n == 0:
            raise ValueError("cannot remove from an empty estimator")
        if self._n == 1:
            self.__init__()  # back to the empty state
            return
        mean_prev = (self._n * self._mean - x) / (self._n - 1)
        delta = x - mean_prev
        delta2 = x - self._mean
        self._m2 = self._m2 - np.outer(delta, delta2)
        self._mean = mean_prev
        self._n -= 1
        # Guard against tiny negative diagonals from cancellation.
        np.fill_diagonal(self._m2, np.maximum(np.diag(self._m2), 0.0))

    @property
    def n(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> np.ndarray:
        """Sample mean (2-vector). Zeros when empty."""
        return self._mean.copy()

    @property
    def cov(self) -> np.ndarray:
        """Unbiased sample covariance (2×2). Zeros when ``n < 2``."""
        if self._n < 2:
            return np.zeros((2, 2))
        return self._m2 / (self._n - 1)

    @property
    def sem_cov(self) -> np.ndarray:
        """Covariance of the *sample mean*: ``cov / n`` (zeros when n<2)."""
        if self._n < 2:
            return np.zeros((2, 2))
        return self.cov / self._n

    def copy(self) -> "StreamingMeanCov":
        """An independent copy of the estimator state."""
        clone = StreamingMeanCov()
        clone._n = self._n
        clone._mean = self._mean.copy()
        clone._m2 = self._m2.copy()
        return clone

    def __repr__(self) -> str:
        return f"StreamingMeanCov(n={self._n}, mean={self._mean.round(4).tolist()})"
