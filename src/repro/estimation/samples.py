"""Per-rule sample stores.

For each rule the system knows about, it accumulates the answers
collected from distinct members. The statistical model treats *members*
as the sampling unit — each member contributes (at most) one
observation of the latent ``(support, confidence)`` vector — so the
store keys samples by member id: a member who answers the same rule
twice *revises* their observation rather than adding a second one,
keeping the i.i.d.-across-members assumption intact.

A streaming estimator is maintained incrementally (including through
revisions, via reverse-Welford removal) so reading the current estimate
is O(1) no matter how the answers arrived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.estimation.welford import StreamingMeanCov


@dataclass(frozen=True, slots=True)
class EstimateSummary:
    """A snapshot of a rule's aggregated evidence.

    ``mean`` estimates the crowd-mean ``(support, confidence)``;
    ``mean_cov`` is the covariance of that *mean estimate* (i.e. the
    sample covariance divided by ``n``), which is what the normal
    approximation of the significance test consumes.
    """

    n: int
    mean: np.ndarray
    mean_cov: np.ndarray


class RuleSamples:
    """All evidence collected about one rule.

    >>> store = RuleSamples(None)
    >>> store.add("u1", RuleStats(0.2, 0.6))
    >>> store.add("u2", RuleStats(0.4, 0.8))
    >>> store.n
    2
    """

    __slots__ = ("rule", "_by_member", "_estimator", "_version")

    def __init__(self, rule: Rule | None) -> None:
        self.rule = rule
        self._by_member: dict[str, RuleStats] = {}
        self._estimator = StreamingMeanCov()
        self._version = 0

    def add(self, member_id: str, stats: RuleStats) -> None:
        """Record (or revise) ``member_id``'s observation."""
        previous = self._by_member.get(member_id)
        if previous is not None:
            self._estimator.remove(previous.as_tuple())
        self._by_member[member_id] = stats
        self._estimator.add(stats.as_tuple())
        self._version += 1

    def remove(self, member_id: str) -> bool:
        """Purge ``member_id``'s observation (reverse Welford).

        Returns True when an observation was actually removed. Used by
        the quality-control layer to release a quarantined member's
        evidence from the knowledge base.
        """
        previous = self._by_member.pop(member_id, None)
        if previous is None:
            return False
        self._estimator.remove(previous.as_tuple())
        self._version += 1
        return True

    @property
    def version(self) -> int:
        """Monotonic change counter; bumps on every :meth:`add`.

        Cache token for derived aggregates: a summary computed at
        version ``v`` stays valid while ``version == v`` (and the
        aggregation policy itself reports no change).
        """
        return self._version

    @property
    def n(self) -> int:
        """Number of distinct members who have answered."""
        return len(self._by_member)

    @property
    def member_ids(self) -> set[str]:
        """Ids of the members who have contributed."""
        return set(self._by_member)

    def has_answer_from(self, member_id: str) -> bool:
        """True when ``member_id`` already contributed an observation."""
        return member_id in self._by_member

    def observation_of(self, member_id: str) -> RuleStats | None:
        """The member's current observation, or ``None``."""
        return self._by_member.get(member_id)

    def observations(self) -> list[tuple[str, RuleStats]]:
        """All ``(member_id, stats)`` pairs, in answer-arrival order.

        The deterministic iteration the storage layer serializes from.
        """
        return list(self._by_member.items())

    def as_array(self) -> np.ndarray:
        """All observations as an ``(n, 2)`` array (member order arbitrary)."""
        if not self._by_member:
            return np.zeros((0, 2))
        return np.array([s.as_tuple() for s in self._by_member.values()])

    def summary(self) -> EstimateSummary:
        """The streaming (plain-mean) estimate snapshot."""
        return EstimateSummary(
            n=self._estimator.n,
            mean=self._estimator.mean,
            mean_cov=self._estimator.sem_cov,
        )

    def __repr__(self) -> str:
        return f"RuleSamples({self.rule}, n={self.n})"
