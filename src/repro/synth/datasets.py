"""Reading and writing transaction datasets in common text formats.

Association-mining research distributes datasets in two line-oriented
formats; supporting them makes the library's classic substrate and the
crowd-from-real-data pipeline (experiment E6) usable with actual
published data instead of only synthetic Quest output:

- **basket format** (FIMI repository style: ``retail.dat``,
  ``kosarak.dat``): one transaction per line, items separated by
  whitespace. Items are opaque tokens (often integers).
- **CSV basket format**: same, comma-separated, optionally with a
  header line to skip.

Both readers stream — they never hold more than one line of text in
memory beyond the accumulated transactions — and both writers produce
files the readers round-trip exactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.core.items import ItemDomain
from repro.core.transactions import TransactionDB
from repro.errors import ReproError


class DatasetFormatError(ReproError):
    """A dataset file could not be parsed."""


def _read_lines(path: str | Path) -> Iterator[str]:
    with open(path, "r", encoding="utf-8") as handle:
        yield from handle


def parse_basket_lines(
    lines: Iterable[str], separator: str | None = None
) -> Iterator[frozenset[str]]:
    """Parse basket-format lines into transactions.

    ``separator=None`` splits on arbitrary whitespace (the FIMI
    convention); otherwise the explicit separator is used and items are
    stripped. Empty lines are skipped (some published files end with
    one); a line yielding no items after stripping is treated as empty.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        raw = line.split() if separator is None else line.split(separator)
        items = frozenset(item.strip() for item in raw if item.strip())
        if items:
            yield items


def load_basket_file(
    path: str | Path,
    separator: str | None = None,
    max_transactions: int | None = None,
) -> TransactionDB:
    """Load a basket-format file as a :class:`TransactionDB`.

    Parameters
    ----------
    path:
        The file to read.
    separator:
        ``None`` (whitespace, FIMI style) or an explicit separator
        (e.g. ``","``).
    max_transactions:
        Optional cap — useful for sampling the head of a large file.
    """
    def rows() -> Iterator[frozenset[str]]:
        count = 0
        for row in parse_basket_lines(_read_lines(path), separator):
            if max_transactions is not None and count >= max_transactions:
                return
            count += 1
            yield row

    db = TransactionDB(rows())
    if len(db) == 0:
        raise DatasetFormatError(f"no transactions found in {path}")
    return db


def save_basket_file(
    db: TransactionDB, path: str | Path, separator: str = " "
) -> None:
    """Write a database in basket format (items sorted within each line)."""
    if any(separator in item for row in db for item in row):
        raise DatasetFormatError(
            f"separator {separator!r} occurs inside an item name; "
            f"choose a different separator"
        )
    with open(path, "w", encoding="utf-8") as handle:
        for row in db:
            handle.write(separator.join(sorted(row)))
            handle.write("\n")


def load_csv_baskets(
    path: str | Path, skip_header: bool = False
) -> TransactionDB:
    """Load comma-separated baskets (optionally skipping a header line)."""
    lines = _read_lines(path)
    if skip_header:
        next(lines, None)
    db = TransactionDB(parse_basket_lines(lines, separator=","))
    if len(db) == 0:
        raise DatasetFormatError(f"no transactions found in {path}")
    return db


def domain_from_db(db: TransactionDB, category: str = "item") -> ItemDomain:
    """Build an :class:`ItemDomain` covering every item in a database.

    Loaded datasets have no category structure; everything lands in one
    category (the NL renderer falls back to generic phrasing).
    """
    items = db.items
    return ItemDomain(items, categories={item: category for item in items})
