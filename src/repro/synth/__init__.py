"""Synthetic data substrate: latent habit models, generators, populations.

Everything the simulation needs that the real system would get from the
world: an item vocabulary, a population with habits, and materialized
personal databases standing in for the crowd's (virtual) memories.
"""

from repro.synth.datasets import (
    DatasetFormatError,
    domain_from_db,
    load_basket_file,
    load_csv_baskets,
    parse_basket_lines,
    save_basket_file,
)
from repro.synth.domains import (
    NAMED_MODELS,
    culinary_domain,
    culinary_model,
    folk_remedies_domain,
    folk_remedies_model,
    travel_domain,
    travel_model,
)
from repro.synth.array_population import ArrayPopulation
from repro.synth.factories import random_domain, random_habit_model
from repro.synth.latent import HabitPattern, LatentHabitModel, UserHabit, UserProfile
from repro.synth.population import (
    Member,
    Population,
    build_population,
    partition_global_db,
)
from repro.synth.quest import QuestConfig, QuestGenerator

__all__ = [
    "ArrayPopulation",
    "DatasetFormatError",
    "HabitPattern",
    "LatentHabitModel",
    "Member",
    "NAMED_MODELS",
    "Population",
    "QuestConfig",
    "QuestGenerator",
    "UserHabit",
    "UserProfile",
    "build_population",
    "culinary_domain",
    "domain_from_db",
    "load_basket_file",
    "load_csv_baskets",
    "parse_basket_lines",
    "save_basket_file",
    "culinary_model",
    "folk_remedies_domain",
    "folk_remedies_model",
    "partition_global_db",
    "random_domain",
    "random_habit_model",
    "travel_domain",
    "travel_model",
]
