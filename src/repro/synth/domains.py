"""Named example domains with preset habit models.

Three ready-made scenarios matching the application domains the
crowd-mining line of work draws its examples from:

- **folk remedies** — the 2013 paper's motivating domain: which
  treatments do people actually use for which ailments ("ginger tea
  for a sore throat")?
- **travel** — the vacation-planning scenario (activities at
  attractions plus nearby restaurants);
- **culinary** — dish/drink combinations (useful, per the papers, for
  composing menus or dietician studies).

Each accessor returns a fully parameterized
:class:`~repro.synth.latent.LatentHabitModel`; the planted habits are
this library's stand-in for the unknown real-world truth, so examples
and benchmarks can score themselves.
"""

from __future__ import annotations

import numpy as np

from repro.core.items import ItemDomain
from repro.core.rule import Rule
from repro.synth.latent import HabitPattern, LatentHabitModel

#: Category labels used by the NL question renderer.
SYMPTOM, REMEDY = "symptom", "remedy"
PLACE, ACTIVITY, RESTAURANT = "place", "activity", "restaurant"
DISH, DRINK = "dish", "drink"


def folk_remedies_domain() -> ItemDomain:
    """Symptoms and remedies of the folk-medicine scenario."""
    return ItemDomain.from_categories(
        {
            SYMPTOM: [
                "sore throat",
                "headache",
                "insomnia",
                "nausea",
                "cough",
                "back pain",
                "cold",
                "heartburn",
                "fatigue",
                "stress",
            ],
            REMEDY: [
                "ginger tea",
                "honey",
                "chamomile tea",
                "coffee",
                "chicken soup",
                "hot bath",
                "peppermint tea",
                "lemon",
                "garlic",
                "yoga",
                "nap",
                "baking soda",
                "ice pack",
                "whiskey",
                "eucalyptus oil",
                "meditation",
            ],
        }
    )


def folk_remedies_model(seed: int | np.random.Generator | None = 0) -> LatentHabitModel:
    """The folk-medicine population: a dozen planted treatment habits."""
    domain = folk_remedies_domain()
    patterns = [
        HabitPattern(Rule.parse("sore throat -> ginger tea"), 0.8, 0.30, 0.85),
        HabitPattern(Rule.parse("sore throat -> ginger tea, honey"), 0.6, 0.30, 0.70),
        HabitPattern(Rule.parse("headache -> coffee"), 0.7, 0.40, 0.75),
        HabitPattern(Rule.parse("insomnia -> chamomile tea"), 0.6, 0.25, 0.80),
        HabitPattern(Rule.parse("nausea -> peppermint tea"), 0.5, 0.20, 0.75),
        HabitPattern(Rule.parse("cough -> honey, lemon"), 0.7, 0.30, 0.80),
        HabitPattern(Rule.parse("cold -> chicken soup"), 0.8, 0.30, 0.85),
        HabitPattern(Rule.parse("back pain -> hot bath"), 0.5, 0.25, 0.70),
        HabitPattern(Rule.parse("heartburn -> baking soda"), 0.3, 0.20, 0.60),
        HabitPattern(Rule.parse("stress -> meditation"), 0.4, 0.35, 0.65),
        HabitPattern(Rule.parse("stress -> yoga"), 0.3, 0.35, 0.60),
        HabitPattern(Rule.parse("fatigue -> nap"), 0.9, 0.40, 0.85),
    ]
    return LatentHabitModel(domain, patterns, background_rate=0.01, seed=seed)


def travel_domain() -> ItemDomain:
    """Attractions, activities and restaurants of the travel scenario."""
    return ItemDomain.from_categories(
        {
            PLACE: [
                "central park",
                "bronx zoo",
                "madison square",
                "brooklyn bridge",
                "high line",
                "coney island",
            ],
            ACTIVITY: [
                "biking",
                "basketball",
                "baseball",
                "feed a monkey",
                "rent bikes",
                "picnic",
                "jogging",
                "street show",
                "swimming",
            ],
            RESTAURANT: [
                "maoz vegetarian",
                "pine restaurant",
                "shake shack",
                "katz deli",
                "pizza corner",
            ],
        }
    )


def travel_model(seed: int | np.random.Generator | None = 0) -> LatentHabitModel:
    """The vacation-planning population (the running-example flavour)."""
    domain = travel_domain()
    # Note on calibration: when several habits share an antecedent item
    # (e.g. central park), occasions created by one habit dilute the
    # measured confidence of the others, so shared-context habits carry
    # deliberately higher conditional rates than solo ones.
    patterns = [
        HabitPattern(Rule.parse("central park -> biking"), 0.8, 0.40, 0.80),
        HabitPattern(
            Rule.parse("central park, biking -> rent bikes"), 0.7, 0.45, 0.90
        ),
        HabitPattern(
            Rule.parse("madison square -> maoz vegetarian"), 0.6, 0.30, 0.70
        ),
        HabitPattern(Rule.parse("bronx zoo -> feed a monkey"), 0.7, 0.30, 0.80),
        HabitPattern(
            Rule.parse("bronx zoo -> pine restaurant"), 0.6, 0.30, 0.70
        ),
        HabitPattern(Rule.parse("high line -> picnic"), 0.6, 0.30, 0.70),
        HabitPattern(Rule.parse("high line -> street show"), 0.4, 0.30, 0.55),
        HabitPattern(Rule.parse("coney island -> swimming"), 0.6, 0.25, 0.75),
        HabitPattern(
            Rule.parse("madison square -> shake shack"), 0.7, 0.30, 0.80
        ),
        HabitPattern(Rule.parse("brooklyn bridge -> jogging"), 0.5, 0.25, 0.65),
    ]
    return LatentHabitModel(domain, patterns, background_rate=0.015, seed=seed)


def culinary_domain() -> ItemDomain:
    """Dishes and drinks of the culinary scenario."""
    return ItemDomain.from_categories(
        {
            DISH: [
                "steak",
                "fries",
                "muesli",
                "yogurt",
                "pizza",
                "salad",
                "falafel",
                "pasta",
                "sushi",
                "pancakes",
                "burger",
                "hummus",
            ],
            DRINK: [
                "coke",
                "apple juice",
                "red wine",
                "beer",
                "green tea",
                "orange juice",
                "espresso",
                "lemonade",
            ],
        }
    )


def culinary_model(seed: int | np.random.Generator | None = 0) -> LatentHabitModel:
    """The culinary population (dish/drink pairing habits)."""
    domain = culinary_domain()
    patterns = [
        HabitPattern(Rule.parse("steak, fries -> coke"), 0.5, 0.25, 0.70),
        HabitPattern(Rule.parse("muesli, yogurt -> apple juice"), 0.4, 0.30, 0.65),
        HabitPattern(Rule.parse("steak -> red wine"), 0.5, 0.25, 0.60),
        HabitPattern(Rule.parse("pizza -> beer"), 0.6, 0.30, 0.70),
        HabitPattern(Rule.parse("sushi -> green tea"), 0.5, 0.20, 0.75),
        HabitPattern(Rule.parse("pancakes -> orange juice"), 0.5, 0.25, 0.70),
        HabitPattern(Rule.parse("falafel -> lemonade"), 0.3, 0.25, 0.55),
        HabitPattern(Rule.parse("pasta -> red wine"), 0.4, 0.30, 0.55),
        HabitPattern(Rule.parse("burger, fries -> coke"), 0.6, 0.30, 0.75),
        HabitPattern(Rule.parse("salad -> lemonade"), 0.2, 0.30, 0.45),
    ]
    return LatentHabitModel(domain, patterns, background_rate=0.02, seed=seed)


NAMED_MODELS = {
    "folk_remedies": folk_remedies_model,
    "travel": travel_model,
    "culinary": culinary_model,
}
