"""IBM Quest-style synthetic transaction generator.

The synthetic-market-basket generator of Agrawal & Srikant (VLDB 1994)
is the de-facto workload for association-mining papers. We reimplement
its core mechanism:

1. draw a pool of *potential patterns* — correlated itemsets whose
   sizes are Poisson-distributed and whose items partially overlap with
   previously drawn patterns;
2. assign each pattern a weight (exponentially distributed) and a
   *corruption level* (how often items are dropped when the pattern is
   emitted);
3. build each transaction by sampling patterns by weight and emitting
   their (possibly corrupted) items until the Poisson-drawn transaction
   size is filled.

The output feeds two places: "real-data-like" global databases that are
partitioned into personal databases (experiment E6), and stress inputs
for the classic miners' tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, check_fraction, check_positive
from repro.core.items import ItemDomain
from repro.core.transactions import TransactionDB
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class QuestConfig:
    """Parameters of the Quest generator (names follow the paper).

    Attributes
    ----------
    n_items:
        Size of the item universe (``N``).
    n_transactions:
        Number of transactions to generate (``|D|``).
    avg_transaction_size:
        Mean transaction length (``|T|``), Poisson-distributed.
    avg_pattern_size:
        Mean potential-pattern length (``|I|``), Poisson-distributed.
    n_patterns:
        Size of the potential-pattern pool (``|L|``).
    correlation:
        Fraction of a new pattern's items drawn from the previous
        pattern (0.5 in the original generator).
    corruption_mean:
        Mean of the per-pattern corruption level (normally distributed,
        clamped to ``[0, 1]``); a corrupted emission drops items.
    """

    n_items: int = 200
    n_transactions: int = 5_000
    avg_transaction_size: float = 8.0
    avg_pattern_size: float = 3.0
    n_patterns: int = 50
    correlation: float = 0.5
    corruption_mean: float = 0.25

    def __post_init__(self) -> None:
        check_positive(self.n_items, "n_items")
        check_positive(self.n_transactions, "n_transactions")
        check_positive(self.n_patterns, "n_patterns")
        check_fraction(self.correlation, "correlation")
        check_fraction(self.corruption_mean, "corruption_mean")
        if self.avg_transaction_size <= 0 or self.avg_pattern_size <= 0:
            raise ConfigurationError("average sizes must be positive")


@dataclass(slots=True)
class _Pattern:
    items: tuple[str, ...]
    weight: float
    corruption: float


@dataclass(slots=True)
class QuestGenerator:
    """A seeded Quest generator.

    >>> gen = QuestGenerator(QuestConfig(n_items=50, n_transactions=100), seed=7)
    >>> db = gen.generate()
    >>> len(db)
    100
    """

    config: QuestConfig
    seed: int | np.random.Generator | None = None
    _rng: np.random.Generator = field(init=False, repr=False)
    _patterns: list[_Pattern] = field(init=False, repr=False)
    _domain: ItemDomain = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = as_rng(self.seed)
        self._domain = ItemDomain(
            [f"item{i:04d}" for i in range(self.config.n_items)]
        )
        self._patterns = self._draw_patterns()

    @property
    def domain(self) -> ItemDomain:
        """The item universe the generator draws from."""
        return self._domain

    @property
    def patterns(self) -> list[tuple[tuple[str, ...], float]]:
        """The potential patterns and their (normalized) weights."""
        total = sum(p.weight for p in self._patterns)
        return [(p.items, p.weight / total) for p in self._patterns]

    def _draw_pattern_size(self, mean: float) -> int:
        # Poisson shifted so sizes are at least 1.
        return 1 + int(self._rng.poisson(max(mean - 1.0, 0.0)))

    def _draw_patterns(self) -> list[_Pattern]:
        cfg = self.config
        items = self._domain.items
        patterns: list[_Pattern] = []
        previous: tuple[str, ...] = ()
        weights = self._rng.exponential(1.0, size=cfg.n_patterns)
        for k in range(cfg.n_patterns):
            size = min(self._draw_pattern_size(cfg.avg_pattern_size), cfg.n_items)
            chosen: set[str] = set()
            # Correlated part: reuse items from the previous pattern.
            if previous:
                n_reuse = int(round(cfg.correlation * size))
                n_reuse = min(n_reuse, len(previous))
                if n_reuse:
                    chosen.update(
                        self._rng.choice(previous, size=n_reuse, replace=False)
                    )
            while len(chosen) < size:
                chosen.add(items[int(self._rng.integers(cfg.n_items))])
            corruption = float(
                np.clip(self._rng.normal(cfg.corruption_mean, 0.1), 0.0, 1.0)
            )
            pattern = _Pattern(tuple(sorted(chosen)), float(weights[k]), corruption)
            patterns.append(pattern)
            previous = pattern.items
        return patterns

    def _emit_pattern(self, pattern: _Pattern) -> list[str]:
        kept = [
            item for item in pattern.items if self._rng.random() >= pattern.corruption
        ]
        # The original generator keeps at least something of a chosen
        # pattern half of the time it corrupts everything away.
        if not kept and pattern.items:
            kept = [pattern.items[int(self._rng.integers(len(pattern.items)))]]
        return kept

    def generate_transaction(self) -> frozenset[str]:
        """Generate one transaction."""
        cfg = self.config
        target = max(1, int(self._rng.poisson(cfg.avg_transaction_size)))
        weights = np.array([p.weight for p in self._patterns])
        weights = weights / weights.sum()
        chosen: set[str] = set()
        guard = 0
        while len(chosen) < target and guard < 20:
            pattern = self._patterns[int(self._rng.choice(len(self._patterns), p=weights))]
            emitted = self._emit_pattern(pattern)
            # If the pattern overflows the target size, accept it anyway
            # half the time (as the original generator does), else stop.
            if chosen and len(chosen) + len(emitted) > target and self._rng.random() < 0.5:
                break
            chosen.update(emitted)
            guard += 1
        return frozenset(chosen)

    def generate(self, n_transactions: int | None = None) -> TransactionDB:
        """Generate a full database (defaults to the configured size)."""
        n = n_transactions if n_transactions is not None else self.config.n_transactions
        check_positive(n, "n_transactions")
        return TransactionDB(self.generate_transaction() for _ in range(n))
