"""Vectorized populations: member state as columns of shared arrays.

:class:`~repro.synth.population.Population` materializes every member
as a Python object holding a personal :class:`TransactionDB` — perfect
for paper-scale crowds, hopeless at a million members. An
:class:`ArrayPopulation` stores the same latent state *columnar*:
habit membership, per-member antecedent/conditional rates, and trust
priors are columns of shared numpy arrays, generated lazily in fixed
blocks, and individual :class:`Member` facades (with a genuinely
materialized database) are built on demand for the call sites that
need an object.

Determinism contract (see ``docs/scaling.md``): every random stream is
keyed by ``(root_entropy, kind, index...)`` — profile blocks by
``(root, 0, block)`` on a seeded generator, habit occasion draws by
``(root, 1, member, 2·pattern[+1])`` and background item draws by
``(root, 2, member, item)`` on counter-based splitmix64 streams — so
any member's state is a pure function of the root entropy, independent
of access order, crowd size paging, or shard layout. Pickling stores
only the recipe ``(model, n, transactions, entropy)``; state is
regenerated on demand after a restore.

The layout is *not* stream-compatible with
:func:`~repro.synth.population.build_population` (which interleaves
data-dependent draws on one generator); equivalence tests therefore
compare the array path against the object path run on
:meth:`ArrayPopulation.materialize`, which shares these columns
exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro._util import check_positive
from repro.core.items import ItemDomain
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB
from repro.errors import ConfigurationError
from repro.synth.latent import LatentHabitModel, UserHabit, UserProfile
from repro.synth.population import Member, Population

#: Members per lazily-generated profile block.
BLOCK_SIZE = 4096

#: Default number of member facades / item matrices kept alive.
FACADE_CACHE = 1024

_MASK64 = (1 << 64) - 1
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MIX1 = 0xBF58476D1CE4E5B9
_SM_MIX2 = 0x94D049BB133111EB


def _absorb(h: int, value: int) -> int:
    """Fold ``value`` into hash state ``h`` (splitmix64 finalizer)."""
    h = (h + value + _SM_GAMMA) & _MASK64
    h ^= h >> 30
    h = (h * _SM_MIX1) & _MASK64
    h ^= h >> 27
    h = (h * _SM_MIX2) & _MASK64
    return h ^ (h >> 31)


def _stream_key(entropy: int, kind: int, a: int, b: int) -> int:
    """64-bit key for the occasion stream ``(entropy, kind, a, b)``."""
    return _absorb(_absorb(_absorb(entropy & _MASK64, kind), a), b)


_U64_GAMMA = np.uint64(_SM_GAMMA)
_U64_MIX1 = np.uint64(_SM_MIX1)
_U64_MIX2 = np.uint64(_SM_MIX2)
_U64_30 = np.uint64(30)
_U64_27 = np.uint64(27)
_U64_31 = np.uint64(31)
_U64_11 = np.uint64(11)


def _bernoulli_streams(
    keys: list[int], idx: np.ndarray, rates: list[float]
) -> np.ndarray:
    """Deterministic Bernoulli columns, one row per ``(key, rate)`` pair.

    Counter-based splitmix64 streams: element ``(r, i)`` is a pure
    function of ``(keys[r], idx[i])``, so columns never depend on
    access order and need no generator objects — per-call
    ``default_rng`` seed hashing was the dominant cost of
    materializing occasion columns at the 100k-member scale. All of a
    question's streams hash in one 2-d pass to amortize ufunc
    dispatch.
    """
    x = np.asarray(keys, dtype=np.uint64)[:, None] + idx[None, :] * _U64_GAMMA
    x ^= x >> _U64_30
    x *= _U64_MIX1
    x ^= x >> _U64_27
    x *= _U64_MIX2
    x ^= x >> _U64_31
    # Top 53 bits against rate * 2**53: P(true) = rate to within 2⁻⁵³.
    thresholds = np.array([int(r * (1 << 53)) for r in rates], dtype=np.uint64)
    return (x >> _U64_11) < thresholds[:, None]


def _bernoulli_stream(key: int, idx: np.ndarray, rate: float) -> np.ndarray:
    """Single-stream convenience wrapper over :func:`_bernoulli_streams`."""
    return _bernoulli_streams([key], idx, [rate])[0]


class ArrayPopulation:
    """A crowd of ``n_members`` sampled from ``model``, stored columnar.

    Parameters
    ----------
    model:
        The latent habit model to sample from.
    n_members:
        Crowd size; member ids are ``u0000``-style, same scheme as
        :func:`~repro.synth.population.build_population`.
    transactions_per_member:
        Personal database size (equal for everyone, keeping the
        ground-truth oracle exact).
    seed:
        Root entropy. An int is used directly; a generator contributes
        one draw; ``None`` samples fresh OS entropy.
    """

    def __init__(
        self,
        model: LatentHabitModel,
        n_members: int,
        transactions_per_member: int = 200,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        check_positive(n_members, "n_members")
        check_positive(transactions_per_member, "transactions_per_member")
        self.model = model
        self.n_members = int(n_members)
        self.transactions_per_member = int(transactions_per_member)
        if isinstance(seed, np.random.Generator):
            self.entropy = int(seed.integers(2**63))
        elif seed is None:
            self.entropy = int(np.random.SeedSequence().entropy)
        else:
            self.entropy = int(seed)
        self._init_layout()

    def _init_layout(self) -> None:
        model = self.model
        self.domain: ItemDomain = model.domain
        self._items: tuple[str, ...] = tuple(model.domain.items)
        self._item_index = {item: j for j, item in enumerate(self._items)}
        patterns = model.patterns
        self._n_patterns = len(patterns)
        self._prevalence = np.array([p.prevalence for p in patterns])
        self._ant_mean = np.array([p.antecedent_rate for p in patterns])
        self._cond_mean = np.array([p.conditional_rate for p in patterns])
        self._rate_std = np.array([p.rate_std for p in patterns])
        self._is_itemset = [p.rule.is_itemset_rule for p in patterns]
        self._ant_items = [tuple(p.rule.antecedent) for p in patterns]
        self._cons_items = [tuple(p.rule.consequent) for p in patterns]
        self._body_items = [tuple(p.rule.body) for p in patterns]
        # item -> patterns whose occasion draws can place the item.
        touches: dict[str, list[int]] = {}
        for p, pattern in enumerate(patterns):
            for item in pattern.rule.body:
                touches.setdefault(item, []).append(p)
        self._item_patterns = touches
        # Counter axis shared by every occasion stream (1-based so a
        # zero key never meets a zero counter).
        self._stream_idx = np.arange(
            1, self.transactions_per_member + 1, dtype=np.uint64
        )
        # Lazy caches (never pickled).
        self._profile_blocks: dict[int, tuple] = {}
        self._facades: OrderedDict[int, Member] = OrderedDict()
        self._matrices: OrderedDict[int, np.ndarray] = OrderedDict()

    # -- identity -------------------------------------------------------------

    def member_id_at(self, index: int) -> str:
        """The id of the member at ``index`` (``u``-prefixed, zero-padded)."""
        return f"u{index:04d}"

    def index_of(self, member_id: str) -> int:
        """O(1) inverse of :meth:`member_id_at`; raises ``KeyError``."""
        try:
            index = int(member_id[1:])
        except (ValueError, IndexError):
            raise KeyError(member_id) from None
        if (
            not member_id.startswith("u")
            or not 0 <= index < self.n_members
            or self.member_id_at(index) != member_id
        ):
            raise KeyError(member_id)
        return index

    def __len__(self) -> int:
        return self.n_members

    def __iter__(self) -> Iterator[Member]:
        for k in range(self.n_members):
            yield self.member_at(k)

    def member(self, member_id: str) -> Member:
        """Facade lookup by id (lazy materialization)."""
        return self.member_at(self.index_of(member_id))

    @property
    def members(self) -> list[Member]:
        """Every member facade, in index order.

        Materializes one facade per member — small scales only (the
        exact-scoring oracle walks this; at array scale exact scoring
        is skipped instead).
        """
        return [self.member_at(k) for k in range(self.n_members)]

    # -- columnar state -------------------------------------------------------

    def _block(self, b: int) -> tuple:
        """Profile columns for member block ``b`` (lazily generated).

        Returns ``(has, ant, cond, trust)``: habit membership (bool,
        block × patterns), per-member antecedent/conditional rates
        (float32 columns sharing the habit axis), and a per-member
        trust prior column (Beta(8, 2) — the latent-ability layer's
        optimistic starting point).
        """
        cached = self._profile_blocks.get(b)
        if cached is not None:
            return cached
        rng = np.random.default_rng([self.entropy, 0, b])
        start = b * BLOCK_SIZE
        size = min(BLOCK_SIZE, self.n_members - start)
        shape = (size, self._n_patterns)
        has = rng.random(shape) < self._prevalence
        # Standard normals are always drawn (fixed stream layout); a
        # zero rate_std collapses to the exact pattern mean.
        ant = np.clip(
            self._ant_mean + self._rate_std * rng.standard_normal(shape), 0.0, 1.0
        ).astype(np.float32)
        cond = np.clip(
            self._cond_mean + self._rate_std * rng.standard_normal(shape), 0.0, 1.0
        ).astype(np.float32)
        trust = rng.beta(8.0, 2.0, size=size).astype(np.float32)
        block = (has, ant, cond, trust)
        self._profile_blocks[b] = block
        return block

    def _profile_row(self, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        has, ant, cond, _ = self._block(k // BLOCK_SIZE)
        r = k % BLOCK_SIZE
        return has[r], ant[r], cond[r]

    def trust_prior_at(self, index: int) -> float:
        """The member's latent trust prior (a shared Beta(8,2) column)."""
        _, _, _, trust = self._block(index // BLOCK_SIZE)
        return float(trust[index % BLOCK_SIZE])

    def profile_at(self, index: int) -> UserProfile:
        """The member's latent profile, built from the shared columns."""
        has, ant, cond = self._profile_row(index)
        habits = tuple(
            UserHabit(
                pattern=self.model.patterns[p],
                antecedent_rate=float(ant[p]),
                conditional_rate=float(cond[p]),
            )
            for p in range(self._n_patterns)
            if has[p]
        )
        return UserProfile(habits)

    # -- occasion draws -------------------------------------------------------

    def _habit_fires(self, k: int, p: int, ant_rate: float, cond_rate: float):
        """Occasion vectors for held habit ``p`` of member ``k``.

        Returns ``(ant_fire, body_fire)`` boolean vectors over the
        member's transactions: occasions where the antecedent items
        appear, and occasions where the full body appears.
        """
        idx = self._stream_idx
        if self._is_itemset[p]:
            key = _stream_key(self.entropy, 1, k, 2 * p)
            fire = _bernoulli_stream(key, idx, ant_rate * cond_rate)
            return fire, fire
        ant_fire = _bernoulli_stream(_stream_key(self.entropy, 1, k, 2 * p), idx, ant_rate)
        cond_fire = _bernoulli_stream(
            _stream_key(self.entropy, 1, k, 2 * p + 1), idx, cond_rate
        )
        return ant_fire, ant_fire & cond_fire

    def _background_column(self, k: int, j: int) -> np.ndarray:
        rate = self.model.background_rate
        if rate <= 0.0:
            return np.zeros(self.transactions_per_member, dtype=bool)
        key = _stream_key(self.entropy, 2, k, j)
        return _bernoulli_stream(key, self._stream_idx, rate)

    def _columns_for(self, k: int, items: tuple[str, ...]) -> dict[str, np.ndarray]:
        """Presence columns of ``items`` in member ``k``'s database.

        Only the requested items are generated — a closed question
        touches two to four columns, never the full item matrix — and
        all their occasion streams hash in one batched pass (the keys
        match :meth:`_background_column` / :meth:`_habit_fires` stream
        for stream).
        """
        has, ant, cond = self._profile_row(k)
        t = self.transactions_per_member
        bg_rate = self.model.background_rate
        entropy = self.entropy
        # Plan every stream the requested items need, then hash once.
        keys: list[int] = []
        rates: list[float] = []
        pattern_rows: dict[int, tuple[int, int]] = {}
        plan: list[tuple[str, int | None, tuple[int, ...]]] = []
        for item in items:
            j = self._item_index.get(item)
            if j is None:
                plan.append((item, None, ()))
                continue
            bg_row: int | None = None
            if bg_rate > 0.0:
                bg_row = len(keys)
                keys.append(_stream_key(entropy, 2, k, j))
                rates.append(bg_rate)
            held = tuple(p for p in self._item_patterns.get(item, ()) if has[p])
            for p in held:
                if p in pattern_rows:
                    continue
                row = len(keys)
                if self._is_itemset[p]:
                    keys.append(_stream_key(entropy, 1, k, 2 * p))
                    rates.append(float(ant[p]) * float(cond[p]))
                    pattern_rows[p] = (row, row)
                else:
                    keys.append(_stream_key(entropy, 1, k, 2 * p))
                    rates.append(float(ant[p]))
                    keys.append(_stream_key(entropy, 1, k, 2 * p + 1))
                    rates.append(float(cond[p]))
                    pattern_rows[p] = (row, row + 1)
            plan.append((item, bg_row, held))
        streams = _bernoulli_streams(keys, self._stream_idx, rates) if keys else None
        body_fires: dict[int, np.ndarray] = {}
        columns: dict[str, np.ndarray] = {}
        for item, bg_row, held in plan:
            if bg_row is None and not held:
                columns[item] = np.zeros(t, dtype=bool)
                continue
            col = streams[bg_row].copy() if bg_row is not None else np.zeros(t, dtype=bool)
            for p in held:
                ant_row, cond_row = pattern_rows[p]
                if item in self._ant_items[p] and not self._is_itemset[p]:
                    col |= streams[ant_row]
                    continue
                body = body_fires.get(p)
                if body is None:
                    if self._is_itemset[p]:
                        body = streams[ant_row]
                    else:
                        body = streams[ant_row] & streams[cond_row]
                    body_fires[p] = body
                col |= body
            columns[item] = col
        return columns

    def item_matrix(self, index: int) -> np.ndarray:
        """Member ``index``'s full boolean (transactions × items) matrix."""
        cached = self._matrices.get(index)
        if cached is not None:
            self._matrices.move_to_end(index)
            return cached
        columns = self._columns_for(index, self._items)
        matrix = np.column_stack([columns[item] for item in self._items])
        self._matrices[index] = matrix
        while len(self._matrices) > FACADE_CACHE:
            self._matrices.popitem(last=False)
        return matrix

    # -- per-member queries ---------------------------------------------------

    def rule_stats_at(self, index: int, rule: Rule) -> RuleStats:
        """Exact ``(support, confidence)`` of ``rule`` for one member.

        Matches ``self.db_at(index).rule_stats(rule)`` bit for bit:
        both divide the same integer occasion counts.
        """
        t = self.transactions_per_member
        columns = self._columns_for(index, tuple(rule.body))
        body = np.ones(t, dtype=bool)
        for item in rule.body:
            body &= columns[item]
        body_count = int(body.sum())
        support = body_count / t
        if rule.is_itemset_rule:
            return RuleStats(support, support)
        ant = np.ones(t, dtype=bool)
        for item in rule.antecedent:
            ant &= columns[item]
        ant_count = int(ant.sum())
        confidence = 0.0 if ant_count == 0 else body_count / ant_count
        return RuleStats(support, confidence)

    def db_at(self, index: int) -> TransactionDB:
        """Member ``index``'s materialized personal database."""
        return self.member_at(index).db

    def member_at(self, index: int) -> Member:
        """The lazily-built object facade of member ``index``.

        Facades live in a bounded LRU cache; the same index always
        rebuilds an identical facade (same columns, same matrix), so
        eviction is invisible apart from object identity.
        """
        if not 0 <= index < self.n_members:
            raise IndexError(index)
        cached = self._facades.get(index)
        if cached is not None:
            self._facades.move_to_end(index)
            return cached
        matrix = self.item_matrix(index)
        items = self._items
        rows = (
            frozenset(items[j] for j in np.flatnonzero(matrix[t]))
            for t in range(self.transactions_per_member)
        )
        member = Member(
            member_id=self.member_id_at(index),
            db=TransactionDB(rows),
            profile=self.profile_at(index),
        )
        self._facades[index] = member
        while len(self._facades) > FACADE_CACHE:
            self._facades.popitem(last=False)
        return member

    # -- population-level API (oracle primitives) ----------------------------

    def materialize(self) -> Population:
        """The equivalent object-backed :class:`Population`.

        Small-scale only (it builds every facade); the equivalence
        tests run the object pipeline on this and compare byte-for-byte
        against the array pipeline.
        """
        if self.n_members > 100_000:
            raise ConfigurationError(
                f"refusing to materialize {self.n_members} members as objects"
            )
        return Population(
            domain=self.domain,
            members=tuple(self.member_at(k) for k in range(self.n_members)),
        )

    def mean_rule_stats(self, rule: Rule) -> tuple[float, float]:
        """Exact crowd-mean ``(support, confidence)`` of ``rule``."""
        supports = np.empty(self.n_members)
        confidences = np.empty(self.n_members)
        for k in range(self.n_members):
            stats = self.rule_stats_at(k, rule)
            supports[k] = stats.support
            confidences[k] = stats.confidence
        return (float(supports.mean()), float(confidences.mean()))

    def mean_itemset_support(self, itemset) -> float:
        """Exact crowd-mean support of an itemset."""
        t = self.transactions_per_member
        items = tuple(itemset)
        total = 0
        for k in range(self.n_members):
            columns = self._columns_for(k, items)
            row = np.ones(t, dtype=bool)
            for item in items:
                row &= columns[item]
            total += int(row.sum())
        return total / (self.n_members * t)

    def union_db(self) -> TransactionDB:
        """All members' transactions in one database (small-scale only)."""
        return TransactionDB.concatenate(
            [self.member_at(k).db for k in range(self.n_members)]
        )

    @property
    def equal_sized(self) -> bool:
        """Always true: every member draws the same number of occasions."""
        return True

    # -- pickling: recipe only ------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "model": self.model,
            "n_members": self.n_members,
            "transactions_per_member": self.transactions_per_member,
            "entropy": self.entropy,
        }

    def __setstate__(self, state: dict) -> None:
        self.model = state["model"]
        self.n_members = state["n_members"]
        self.transactions_per_member = state["transactions_per_member"]
        self.entropy = state["entropy"]
        self._init_layout()

    def __repr__(self) -> str:
        return (
            f"ArrayPopulation({self.n_members} members, "
            f"{self._n_patterns} patterns, {len(self.domain)} items)"
        )
