"""Crowd populations: collections of materialized personal databases.

A :class:`Population` is the simulation-side stand-in for "the crowd":
for each member it holds the materialized personal database (and, when
generated from a latent model, the member's latent profile). The
simulated members of :mod:`repro.crowd` answer questions by consulting
these databases; the ground-truth oracle of :mod:`repro.miner` scores
mining output against them.

Two builders are provided, mirroring the paper's two synthetic setups:

- :func:`build_population` — sample members from a
  :class:`~repro.synth.latent.LatentHabitModel` (planted habits, known
  structure);
- :func:`partition_global_db` — split a single "real" transaction
  database (e.g. Quest-generated) into per-member databases with
  controllable taste heterogeneity.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, check_nonnegative, check_positive
from repro.core.items import ItemDomain
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB
from repro.errors import ConfigurationError, EmptyDatabaseError
from repro.synth.latent import LatentHabitModel, UserProfile


@dataclass(frozen=True, slots=True)
class Member:
    """One crowd member's simulation-side data.

    ``profile`` is ``None`` for members built by partitioning a global
    database (there is no latent truth beyond the database itself).
    """

    member_id: str
    db: TransactionDB
    profile: UserProfile | None = None


@dataclass(frozen=True, slots=True)
class Population:
    """A fixed crowd of members over a common item domain."""

    domain: ItemDomain
    members: tuple[Member, ...]
    _id_index: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.members:
            raise ConfigurationError("a population needs at least one member")
        index = {m.member_id: i for i, m in enumerate(self.members)}
        if len(index) != len(self.members):
            raise ConfigurationError("member ids must be unique")
        object.__setattr__(self, "_id_index", index)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def member(self, member_id: str) -> Member:
        """Look up a member by id (raises ``KeyError`` when absent)."""
        return self.members[self._id_index[member_id]]

    # -- exact crowd-level measures (the oracle's primitives) -----------------

    def mean_rule_stats(self, rule: Rule) -> tuple[float, float]:
        """Exact crowd-mean ``(support, confidence)`` of ``rule``.

        This reads the materialized databases directly — something the
        *miner* is never allowed to do; it exists for ground truth and
        evaluation only.
        """
        supports = []
        confidences = []
        for m in self.members:
            stats = m.db.rule_stats(rule)
            supports.append(stats.support)
            confidences.append(stats.confidence)
        return (float(np.mean(supports)), float(np.mean(confidences)))

    def mean_itemset_support(self, itemset) -> float:
        """Exact crowd-mean support of an itemset."""
        return float(np.mean([m.db.support(itemset) for m in self.members]))

    def union_db(self) -> TransactionDB:
        """All members' transactions in one database.

        When all personal databases have equal size, itemset support in
        the union equals the crowd-mean support — the property the
        ground-truth oracle exploits to enumerate candidates.
        """
        return TransactionDB.concatenate([m.db for m in self.members])

    @property
    def equal_sized(self) -> bool:
        """True when every member has the same number of transactions."""
        sizes = {len(m.db) for m in self.members}
        return len(sizes) == 1


def build_population(
    model: LatentHabitModel,
    n_members: int,
    transactions_per_member: int = 200,
    seed: int | np.random.Generator | None = None,
) -> Population:
    """Sample a crowd from a latent habit model.

    Every member gets an equal-sized personal database (which keeps the
    ground-truth oracle exact — see :meth:`Population.union_db`).
    """
    check_positive(n_members, "n_members")
    check_positive(transactions_per_member, "transactions_per_member")
    rng = as_rng(seed)
    members = []
    for k in range(n_members):
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, transactions_per_member, rng)
        members.append(Member(member_id=f"u{k:04d}", db=db, profile=profile))
    return Population(domain=model.domain, members=tuple(members))


def partition_global_db(
    db: TransactionDB,
    domain: ItemDomain,
    n_members: int,
    transactions_per_member: int | None = None,
    heterogeneity: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> Population:
    """Split a global database into per-member personal databases.

    Models the paper's "crowd simulated from real data" setup: each
    member is given a personal database resampled from the global one
    according to individual *tastes*.

    Parameters
    ----------
    db:
        The global transaction database.
    domain:
        Item domain covering the database's items.
    n_members:
        Number of members to create.
    transactions_per_member:
        Size of each personal database; defaults to
        ``len(db) // n_members`` (at least 1).
    heterogeneity:
        Controls how different members' tastes are. 0 makes every
        member an unbiased bootstrap of the global database; larger
        values concentrate each member on fewer item preferences
        (implemented as a Dirichlet over items with concentration
        ``1 / (heterogeneity + eps)``).
    seed:
        Seed or generator.
    """
    check_positive(n_members, "n_members")
    check_nonnegative(heterogeneity, "heterogeneity")
    if len(db) == 0:
        raise EmptyDatabaseError("cannot partition an empty database")
    rng = as_rng(seed)
    if transactions_per_member is None:
        transactions_per_member = max(1, len(db) // n_members)
    check_positive(transactions_per_member, "transactions_per_member")

    rows: Sequence[frozenset[str]] = list(db)
    item_index = {item: i for i, item in enumerate(domain.items)}
    members = []
    for k in range(n_members):
        if heterogeneity == 0.0:
            weights = np.ones(len(rows))
        else:
            concentration = 1.0 / heterogeneity
            taste = rng.dirichlet(np.full(len(domain), concentration))
            weights = np.array(
                [
                    sum(taste[item_index[i]] for i in row if i in item_index)
                    for row in rows
                ]
            )
            # Empty or out-of-domain rows keep a tiny base weight so the
            # distribution stays proper.
            weights = weights + 1e-9
        weights = weights / weights.sum()
        chosen = rng.choice(len(rows), size=transactions_per_member, p=weights)
        personal = TransactionDB(rows[int(i)] for i in chosen)
        members.append(Member(member_id=f"u{k:04d}", db=personal, profile=None))
    return Population(domain=domain, members=tuple(members))
