"""Latent habit model: the population-level ground truth.

The paper's synthetic experiments need a crowd whose behaviour has
*known* structure, so the quality of the mined answer can be scored
exactly. This module provides that structure.

A :class:`LatentHabitModel` holds a set of :class:`HabitPattern`\\ s.
Each pattern is a rule (e.g. ``{sore throat} → {ginger tea}``) with
population parameters: what fraction of people have the habit at all
(*prevalence*), how often the antecedent situation arises in a habit
holder's life (*antecedent rate*), and how reliably the consequent
follows (*conditional rate*). Individual crowd members are *sampled*
from the model: each member gets their own subset of habits and their
own per-habit rates (population mean plus across-user spread), from
which a materialized personal :class:`~repro.core.transactions.TransactionDB`
is generated occasion by occasion.

Because personal databases are materialized, every quantity a simulated
member later reports (supports, confidences, open-question rules) is
*internally consistent* — e.g. support is automatically antitone along
the rule lattice — which is exactly the property the mining algorithm's
lattice-based inferences rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, check_fraction, check_nonnegative, check_positive
from repro.core.items import ItemDomain
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB
from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class HabitPattern:
    """One population-level habit.

    Attributes
    ----------
    rule:
        The rule describing the habit.
    prevalence:
        Fraction of the population that has the habit at all.
    antecedent_rate:
        Mean per-occasion probability that the antecedent situation
        arises for a habit holder. For itemset rules (empty
        antecedent) this is the per-occasion probability of the body.
    conditional_rate:
        Mean probability that the consequent accompanies the
        antecedent, for a habit holder (the habit's "confidence").
    rate_std:
        Across-user standard deviation applied to both rates
        (truncated to ``[0, 1]``). Zero makes every holder identical.
    """

    rule: Rule
    prevalence: float
    antecedent_rate: float
    conditional_rate: float
    rate_std: float = 0.05

    def __post_init__(self) -> None:
        check_fraction(self.prevalence, "prevalence")
        check_fraction(self.antecedent_rate, "antecedent_rate")
        check_fraction(self.conditional_rate, "conditional_rate")
        check_nonnegative(self.rate_std, "rate_std")

    @property
    def expected_support(self) -> float:
        """Population-mean support of the rule among habit holders."""
        return self.antecedent_rate * self.conditional_rate

    @property
    def population_support(self) -> float:
        """Approximate crowd-mean support including non-holders."""
        return self.prevalence * self.expected_support


@dataclass(frozen=True, slots=True)
class UserHabit:
    """A habit as realized for one specific member."""

    pattern: HabitPattern
    antecedent_rate: float
    conditional_rate: float


@dataclass(frozen=True, slots=True)
class UserProfile:
    """The latent truth about one crowd member: their realized habits."""

    habits: tuple[UserHabit, ...]

    def has_rule(self, rule: Rule) -> bool:
        """True when the member holds a habit with exactly this rule."""
        return any(h.pattern.rule == rule for h in self.habits)


@dataclass(slots=True)
class LatentHabitModel:
    """A population model over an item domain.

    Parameters
    ----------
    domain:
        The item universe. Every pattern rule must draw its items from
        this domain.
    patterns:
        The planted habits.
    background_rate:
        Per-occasion probability that any individual item occurs
        spontaneously (independent of habits). Gives every rule a small
        nonzero floor support, so the miner faces realistic noise rather
        than exact zeros.
    seed:
        Seed (or generator) controlling all sampling from the model.
    """

    domain: ItemDomain
    patterns: list[HabitPattern]
    background_rate: float = 0.01
    seed: int | np.random.Generator | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_fraction(self.background_rate, "background_rate")
        for pattern in self.patterns:
            self.domain.validate_items(pattern.rule.body)
        rules = [p.rule for p in self.patterns]
        if len(set(rules)) != len(rules):
            raise ConfigurationError("duplicate pattern rules in latent model")
        self._rng = as_rng(self.seed)

    # -- sampling ---------------------------------------------------------------

    def _truncated_rate(self, mean: float, std: float, rng: np.random.Generator) -> float:
        if std == 0.0:
            return mean
        return float(np.clip(rng.normal(mean, std), 0.0, 1.0))

    def realize_user(self, rng: np.random.Generator | None = None) -> UserProfile:
        """Sample one member's latent profile (which habits, what rates)."""
        rng = self._rng if rng is None else rng
        habits: list[UserHabit] = []
        for pattern in self.patterns:
            if rng.random() < pattern.prevalence:
                habits.append(
                    UserHabit(
                        pattern=pattern,
                        antecedent_rate=self._truncated_rate(
                            pattern.antecedent_rate, pattern.rate_std, rng
                        ),
                        conditional_rate=self._truncated_rate(
                            pattern.conditional_rate, pattern.rate_std, rng
                        ),
                    )
                )
        return UserProfile(tuple(habits))

    def generate_transaction(
        self, profile: UserProfile, rng: np.random.Generator | None = None
    ) -> frozenset[str]:
        """Generate one occasion of a member's life.

        Habit mechanics: for each habit the member holds, the
        antecedent situation arises with the member's antecedent rate;
        when it does, the antecedent items are in the occasion, and the
        consequent items join with the member's conditional rate.
        Background items occur independently at ``background_rate``.
        """
        rng = self._rng if rng is None else rng
        items: set[str] = set()
        for habit in profile.habits:
            rule = habit.pattern.rule
            if rule.is_itemset_rule:
                if rng.random() < habit.antecedent_rate * habit.conditional_rate:
                    items.update(rule.body)
                continue
            if rng.random() < habit.antecedent_rate:
                items.update(rule.antecedent)
                if rng.random() < habit.conditional_rate:
                    items.update(rule.consequent)
        if self.background_rate > 0.0:
            mask = rng.random(len(self.domain)) < self.background_rate
            if mask.any():
                items.update(
                    item for item, hit in zip(self.domain.items, mask) if hit
                )
        return frozenset(items)

    def generate_personal_db(
        self,
        profile: UserProfile,
        n_transactions: int,
        rng: np.random.Generator | None = None,
    ) -> TransactionDB:
        """Materialize a member's personal database of ``n_transactions``."""
        check_positive(n_transactions, "n_transactions")
        rng = self._rng if rng is None else rng
        return TransactionDB(
            self.generate_transaction(profile, rng) for _ in range(n_transactions)
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def rules(self) -> list[Rule]:
        """The planted rules, in declaration order."""
        return [p.rule for p in self.patterns]

    def expected_crowd_stats(self, rule: Rule) -> tuple[float, float]:
        """Analytic approximation of the crowd-mean (support, confidence).

        Exact only for planted rules whose bodies do not overlap other
        patterns or background items; used by tests as a coarse oracle
        (the exact oracle measures materialized databases instead).
        """
        for pattern in self.patterns:
            if pattern.rule == rule:
                support = pattern.prevalence * pattern.expected_support
                confidence = pattern.prevalence * pattern.conditional_rate
                return (support, confidence)
        floor = self.background_rate ** len(rule.body)
        return (floor, self.background_rate ** len(rule.consequent))
