"""Factories for randomized latent models.

The synthetic experiments (E1–E5, E8, E9) sweep structural parameters —
domain size, number of planted habits, habit strengths — over many
seeded repetitions. These factories build the corresponding
:class:`~repro.synth.latent.LatentHabitModel` instances.

The construction keeps planted rules *pairwise body-disjoint by
default*: each habit draws fresh items. That makes the planted set an
exact subset of the ground-truth significant set (no accidental
cross-habit combinations above threshold at moderate thresholds), which
in turn makes experiment quality curves interpretable. Overlap can be
re-enabled for stress tests via ``allow_overlap``.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_fraction, check_positive
from repro.core.items import ItemDomain
from repro.core.rule import Rule
from repro.errors import ConfigurationError
from repro.synth.latent import HabitPattern, LatentHabitModel


def random_domain(
    n_items: int,
    categories: tuple[str, ...] = ("context", "action"),
    seed: int | np.random.Generator | None = None,
) -> ItemDomain:
    """A synthetic domain of ``n_items`` spread round-robin over categories."""
    check_positive(n_items, "n_items")
    if not categories:
        raise ConfigurationError("at least one category is required")
    items = [f"{categories[i % len(categories)]}{i:04d}" for i in range(n_items)]
    cat_map = {item: categories[i % len(categories)] for i, item in enumerate(items)}
    return ItemDomain(items, categories=cat_map)


def random_habit_model(
    domain: ItemDomain,
    n_patterns: int,
    seed: int | np.random.Generator | None = None,
    antecedent_size: tuple[int, int] = (1, 2),
    consequent_size: tuple[int, int] = (1, 1),
    prevalence_range: tuple[float, float] = (0.6, 1.0),
    antecedent_rate_range: tuple[float, float] = (0.15, 0.35),
    conditional_rate_range: tuple[float, float] = (0.6, 0.95),
    rate_std: float = 0.05,
    background_rate: float = 0.01,
    allow_overlap: bool = False,
) -> LatentHabitModel:
    """A latent model with ``n_patterns`` randomly planted habits.

    Parameters mirror :class:`~repro.synth.latent.HabitPattern`; each
    habit's parameters are drawn uniformly from the given ranges.
    Raises :class:`~repro.errors.ConfigurationError` when the domain is
    too small to host ``n_patterns`` disjoint habits.
    """
    check_positive(n_patterns, "n_patterns")
    check_fraction(background_rate, "background_rate")
    rng = as_rng(seed)

    max_body = antecedent_size[1] + consequent_size[1]
    if not allow_overlap and n_patterns * max_body > len(domain):
        raise ConfigurationError(
            f"domain of {len(domain)} items cannot host {n_patterns} disjoint "
            f"habits of up to {max_body} items; pass allow_overlap=True or "
            f"grow the domain"
        )

    available = list(domain.items)
    rng.shuffle(available)
    patterns: list[HabitPattern] = []
    used_rules: set[Rule] = set()
    cursor = 0
    for _ in range(n_patterns):
        a_size = int(rng.integers(antecedent_size[0], antecedent_size[1] + 1))
        c_size = int(rng.integers(consequent_size[0], consequent_size[1] + 1))
        if allow_overlap:
            body = list(
                rng.choice(domain.items, size=a_size + c_size, replace=False)
            )
        else:
            body = available[cursor : cursor + a_size + c_size]
            cursor += a_size + c_size
        rule = Rule(body[:a_size], body[a_size:])
        if rule in used_rules:
            continue
        used_rules.add(rule)
        patterns.append(
            HabitPattern(
                rule=rule,
                prevalence=float(rng.uniform(*prevalence_range)),
                antecedent_rate=float(rng.uniform(*antecedent_rate_range)),
                conditional_rate=float(rng.uniform(*conditional_rate_range)),
                rate_std=rate_std,
            )
        )
    return LatentHabitModel(
        domain=domain,
        patterns=patterns,
        background_rate=background_rate,
        seed=rng,
    )
