"""Open/closed mix policies.

Before each question the miner decides its *type*: open (discover new
candidate rules) or closed (refine a known rule's estimate). The paper
studies this trade-off explicitly — too few open questions and
significant rules are never discovered; too many and the budget is
spent re-soliciting what is already known instead of settling it.

Two policies:

- :class:`FixedRatioPolicy` — flip a coin with probability ``p_open``,
  the knob the mix experiment (E2) sweeps;
- :class:`AdaptiveOpenPolicy` — start discovery-heavy and back off as
  open questions stop yielding novelty (tracked by an exponential
  moving average of "new rule per open question"), the practical
  default.

Both fall back sensibly when one option is impossible: if the member
has no eligible closed question the policy answers "open", and vice
versa the caller handles a dry open answer.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_fraction


class OpenClosedPolicy:
    """Base class: decides the type of the next question."""

    def choose_open(
        self,
        rng: np.random.Generator,
        has_closed_candidate: bool,
        open_supply_exhausted: bool,
    ) -> bool:
        """True → ask an open question next.

        ``has_closed_candidate`` tells the policy whether a closed
        question is even possible for the member about to be served;
        ``open_supply_exhausted`` reports that recent open questions
        all came back empty (every member's memory dry).
        """
        raise NotImplementedError

    def observe_open_outcome(self, yielded_new_rule: bool) -> None:
        """Feedback hook: called after each open answer."""

    @property
    def name(self) -> str:
        """Short name used in experiment reports."""
        return type(self).__name__.removesuffix("Policy").lower()


class FixedRatioPolicy(OpenClosedPolicy):
    """Ask open questions a fixed fraction of the time.

    ``fallback_to_open`` controls what happens when no closed question
    is available (nothing unresolved the member can answer): ``True``
    (default) asks an open question instead — "discover when idle" —
    while ``False`` keeps the ratio strict, so ``p_open=0`` is the
    genuinely closed-only ablation (it can only ever examine seeded
    rules and will end the session once they are settled).
    """

    def __init__(self, p_open: float = 0.1, fallback_to_open: bool = True) -> None:
        self.p_open = check_fraction(p_open, "p_open")
        self.fallback_to_open = bool(fallback_to_open)

    def choose_open(
        self,
        rng: np.random.Generator,
        has_closed_candidate: bool,
        open_supply_exhausted: bool,
    ) -> bool:
        if open_supply_exhausted:
            return False
        if not has_closed_candidate:
            return self.fallback_to_open or self.p_open > 0.0
        return bool(rng.random() < self.p_open)

    def __repr__(self) -> str:
        return (
            f"FixedRatioPolicy(p_open={self.p_open}, "
            f"fallback_to_open={self.fallback_to_open})"
        )


class AdaptiveOpenPolicy(OpenClosedPolicy):
    """Back off from open questions as their yield dries up.

    Maintains an exponential moving average of the fraction of open
    questions that produced a *new* rule. The probability of the next
    question being open is clamped between ``floor`` and ``ceiling``
    and tracks that yield: productive discovery keeps the rate high,
    a stretch of redundant or empty answers drives it to the floor.
    """

    def __init__(
        self,
        initial_yield: float = 1.0,
        smoothing: float = 0.85,
        floor: float = 0.02,
        ceiling: float = 0.3,
    ) -> None:
        check_fraction(smoothing, "smoothing")
        self.floor = check_fraction(floor, "floor")
        self.ceiling = check_fraction(ceiling, "ceiling")
        if self.floor > self.ceiling:
            raise ValueError("floor must not exceed ceiling")
        self.smoothing = float(smoothing)
        self.yield_estimate = check_fraction(initial_yield, "initial_yield")

    def choose_open(
        self,
        rng: np.random.Generator,
        has_closed_candidate: bool,
        open_supply_exhausted: bool,
    ) -> bool:
        if not has_closed_candidate:
            return True
        if open_supply_exhausted:
            return False
        p = min(self.ceiling, max(self.floor, self.yield_estimate * self.ceiling))
        return bool(rng.random() < p)

    def observe_open_outcome(self, yielded_new_rule: bool) -> None:
        self.yield_estimate = (
            self.smoothing * self.yield_estimate
            + (1.0 - self.smoothing) * (1.0 if yielded_new_rule else 0.0)
        )

    def __repr__(self) -> str:
        return (
            f"AdaptiveOpenPolicy(yield={self.yield_estimate:.2f}, "
            f"floor={self.floor}, ceiling={self.ceiling})"
        )


def make_open_policy(spec: str | float) -> OpenClosedPolicy:
    """Build a policy from an experiment-config spec.

    A float builds a :class:`FixedRatioPolicy` with that ratio; the
    string ``"adaptive"`` builds an :class:`AdaptiveOpenPolicy`.
    """
    if isinstance(spec, str):
        if spec.lower() == "adaptive":
            return AdaptiveOpenPolicy()
        raise ValueError(f"unknown open policy spec: {spec!r}")
    return FixedRatioPolicy(float(spec))
