"""The CrowdMiner main loop — the paper's primary contribution.

One session mines the significant rules of a crowd while spending as
few questions as possible. Each step:

1. the crowd's scheduler hands the miner the next available member;
2. the open/closed **mix policy** decides the question type;
3. for closed questions, the **selection strategy** picks the rule
   whose classification currently carries the highest error risk; for
   open questions, the member is asked to volunteer a habit the system
   does not already know;
4. the answer updates the **knowledge base**: per-rule evidence, the
   significance re-assessment, and (when a rule's support is
   confidently dead) lattice propagation condemning its known
   specializations for free;
5. rules that get **confirmed significant** are expanded with their
   immediate generalizations and the alternative splits of their body,
   seeding the candidate pool around proven structure (expansion on
   confirmation, not on discovery, keeps junk from multiplying).

The loop ends when the question budget is exhausted, when every member
has left, or when nothing useful remains to ask (all known rules
settled and every member's open-answer memory dry).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, check_fraction, check_positive
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.order import generalizations
from repro.core.rule import Rule
from repro.crowd.crowd import SimulatedCrowd
from repro.crowd.questions import AnyAnswer, ClosedAnswer, MalformedAnswer, OpenAnswer
from repro.errors import BudgetExhaustedError, ConfigurationError, CrowdExhaustedError
from repro.estimation.aggregate import Aggregator, DynamicTrustAggregator
from repro.estimation.consistency import ConsistencyChecker
from repro.estimation.samples import EstimateSummary
from repro.estimation.significance import Decision, SignificanceTest, Thresholds
from repro.faults.latent import LatentAbilityModel
from repro.faults.quality import CompositeTrust, QualityController
from repro.miner.open_policy import AdaptiveOpenPolicy, OpenClosedPolicy
from repro.miner.result import MiningResult, QuestionEvent, QuestionKind
from repro.miner.state import MiningState, RuleOrigin
from repro.miner.strategy import MaxUncertaintyStrategy, QuestionStrategy
from repro.obs import Instrumentation


#: Bucket edges of the ``quality.ability`` histogram: posterior
#: *relative* noise scales (1 = typical honest scatter for the rules
#: answered); the quarantine-relevant mass sits above ~1.8.
ABILITY_BUCKETS: tuple[float, ...] = (0.5, 0.8, 1.0, 1.3, 1.8, 2.5, 4.0)


def _available_count(crowd) -> int:
    """Available-member count without materializing the id list.

    Indexed crowds (``SimulatedCrowd``, ``ArrayCrowd``, partitions)
    answer in O(1); duck-typed wrappers without the method fall back to
    the list scan.
    """
    counter = getattr(crowd, "available_count", None)
    if counter is not None:
        return counter()
    return len(crowd.available_members())


@dataclass(frozen=True, slots=True)
class QuestionProposal:
    """One question the miner wants asked, separated from its answer.

    The miner's step used to be an atomic ask-and-record; the
    asynchronous dispatcher needs the two halves apart, with arbitrary
    time (and other members' answers) in between:

    - :meth:`CrowdMiner.propose_question` chooses the question for a
      member and stamps it with the knowledge-base version;
    - :meth:`CrowdMiner.ingest_answer` folds the answer in *when it
      arrives*, revalidating against the version stamp — the rule may
      have been settled directly, or condemned by lattice propagation,
      while the question was in flight, in which case the answer is
      discarded as stale instead of double-counted.

    ``rule`` is the closed-question target (``None`` for open
    questions); ``context`` is the open question's specialization
    context (``None`` for blind open questions and for closed ones).
    """

    member_id: str
    kind: QuestionKind
    rule: Rule | None
    context: Itemset | None
    kb_version: int
    #: Gold probe: a closed question about an already-settled rule,
    #: asked to *score the member* against the settled aggregate rather
    #: than to collect evidence. Gold answers never enter the knowledge
    #: base and are never stale (the rule being resolved is the point).
    gold: bool = False


@dataclass(slots=True)
class CrowdMinerConfig:
    """Configuration of a mining session.

    Attributes
    ----------
    thresholds:
        The query's significance thresholds ``(θ_s, θ_c)``.
    budget:
        Maximum number of questions for the whole session.
    strategy:
        Closed-question selection strategy.
    open_policy:
        Open/closed mix policy.
    aggregator:
        Cross-member aggregation black box (``None`` → plain mean).
    decision_confidence / min_samples / variance_floor / use_covariance:
        Forwarded to :class:`~repro.estimation.significance.SignificanceTest`.
    lattice_pruning:
        Enable support-based downward propagation of insignificance.
    expand_generalizations:
        When a rule is *decided significant*, also register its
        immediate generalizations as candidates. (Expansion happens on
        confirmation, not on discovery: expanding every volunteered
        rule would multiply the junk candidates tenfold and starve the
        true borderline rules of verification budget.)
    expand_splits:
        On the same trigger, register every alternative antecedent/
        consequent split of the confirmed rule's body. All splits share
        the body's support, and which split carries the confidence is
        exactly what the crowd must be asked — volunteering members
        report only *their* favourite phrasing.
    count_open_evidence:
        Whether the numeric part of an open answer enters the rule's
        evidence. Default off: the volunteering member is, by
        construction, someone who *has* the habit, so their answer is
        an upward-biased sample of the crowd mean. Discovery and
        estimation are then cleanly separated — open answers only seed
        candidates, and all counted evidence comes from members the
        scheduler picked independently of the rule.
    contextual_open_fraction:
        Fraction of open questions asked *in context*: "think of
        occasions involving X — what else do you do then?", where X is
        the body of a confirmed-significant rule. These are the papers'
        *specialization questions*: they dig for refinements and
        co-occurring extras around proven structure instead of fishing
        blind. Applied only once at least one rule is confirmed.
        Default 0 (off): contextual probing pays off in domains whose
        habits actually have refinements (a tip attached to an
        activity, an extra ingredient); in worlds of disjoint habits
        the probes surface junk supersets and waste verification
        budget — enable it deliberately for refinement-rich domains.
    screen_spammers:
        Enable consistency-based trust screening: every answer is
        checked against the member's previous answers for support-
        monotonicity violations, and all estimates become trust-weighted
        (:class:`~repro.estimation.aggregate.DynamicTrustAggregator`).
        Mutually exclusive with a custom ``aggregator``.
    quarantine:
        Enable the answer quality-control loop: trust weights discount
        low-quality members, and members falling below ``trust_floor``
        are quarantined — no longer routed to, their evidence purged
        from the knowledge base. Which trust model scores members is
        chosen by ``trust_model``. Composes with ``screen_spammers``
        (trust is the product of both sources); mutually exclusive
        with a custom ``aggregator``. With no adversaries present
        every member keeps trust exactly 1.0 and the session is
        byte-identical to one with the loop disabled.
    trust_model:
        ``"latent"`` (default) — the gold-free latent-ability model
        (:class:`~repro.faults.latent.LatentAbilityModel`): member
        ability and rule truth are jointly re-estimated from the full
        answer matrix every ``reestimate_every`` counted answers, so
        there is no aggregate reference for colluders to poison.
        ``"gold"`` — the legacy gold-probe loop
        (:class:`~repro.faults.quality.QualityController`): counted
        answers are screened for outliers against the rule's running
        aggregate and gold probes (see ``gold_rate``) score members
        against settled rules — which colluders can poison once their
        fabricated rules settle (EXPERIMENTS.md E8-R); kept for
        comparison experiments.
    gold_rate:
        Probability that a question slot becomes a gold probe: the
        member is re-asked a rule whose classification is already
        settled on enough direct evidence, and their answer is scored
        against that aggregate instead of being counted. Costs budget
        (the probe is a real question) — the price of quality control.
        Requires ``trust_model="gold"``; 0 disables probing without
        perturbing the random stream.
    reestimate_every:
        Counted answers between latent-model re-estimations
        (answer-count driven, so deterministic from seeds — replay
        stays byte-identical). Only read when ``trust_model="latent"``.
    trust_floor / quarantine_min_answers:
        Quarantine triggers when a member's trust falls below
        ``trust_floor`` with at least ``quarantine_min_answers`` scored
        answers (see the two trust-model classes).
    checkpoint_every:
        Questions between automatic whole-session checkpoints, when a
        storage backend is attached (0 = never checkpoint
        automatically; the write-ahead answer log is kept either way).
        In dispatched sessions the checkpoint is deferred to the next
        event boundary so the in-flight books are never captured
        half-updated.
    seed_rules:
        Rules known before any question is asked (a query's candidate
        patterns); they enter the knowledge base with SEED origin.
    seed:
        Randomness for type coin-flips and strategy tie-breaking.
    """

    thresholds: Thresholds
    budget: int = 1_000
    strategy: QuestionStrategy = field(default_factory=MaxUncertaintyStrategy)
    open_policy: OpenClosedPolicy = field(default_factory=AdaptiveOpenPolicy)
    aggregator: Aggregator | None = None
    decision_confidence: float = 0.9
    min_samples: int = 5
    variance_floor: float = 0.15**2
    use_covariance: bool = True
    lattice_pruning: bool = True
    expand_generalizations: bool = True
    expand_splits: bool = True
    count_open_evidence: bool = False
    contextual_open_fraction: float = 0.0
    screen_spammers: bool = False
    quarantine: bool = False
    trust_model: str = "latent"
    gold_rate: float = 0.0
    reestimate_every: int = 10
    trust_floor: float = 0.45
    quarantine_min_answers: int = 4
    checkpoint_every: int = 0
    seed_rules: tuple[Rule, ...] = ()
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        check_positive(self.budget, "budget")
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be non-negative, "
                f"got {self.checkpoint_every!r}"
            )
        check_fraction(self.contextual_open_fraction, "contextual_open_fraction")
        check_fraction(self.gold_rate, "gold_rate")
        check_positive(self.reestimate_every, "reestimate_every")
        check_fraction(self.trust_floor, "trust_floor")
        check_positive(self.quarantine_min_answers, "quarantine_min_answers")
        if self.trust_model not in ("latent", "gold"):
            raise ConfigurationError(
                f"unknown trust_model {self.trust_model!r}; "
                "expected 'latent' or 'gold'"
            )
        if (self.screen_spammers or self.quarantine) and self.aggregator is not None:
            raise ConfigurationError(
                "screen_spammers/quarantine install their own trust-weighted "
                "aggregator; pass one or the other"
            )
        if self.gold_rate > 0.0 and not self.quarantine:
            raise ConfigurationError(
                "gold_rate without quarantine would spend budget on probes "
                "nobody scores; enable quarantine"
            )
        if self.gold_rate > 0.0 and self.trust_model != "gold":
            raise ConfigurationError(
                "gold_rate is only read by the gold-probe loop; "
                "set trust_model='gold' (the latent model needs no probes)"
            )

    def build_test(self) -> SignificanceTest:
        """The significance test implied by this configuration."""
        return SignificanceTest(
            thresholds=self.thresholds,
            decision_confidence=self.decision_confidence,
            min_samples=self.min_samples,
            variance_floor=self.variance_floor,
            use_covariance=self.use_covariance,
        )


class CrowdMiner:
    """A mining session over one crowd.

    The engine is *stepwise*: :meth:`step` spends exactly one question
    (or reports that nothing useful remains), so callers — examples,
    the evaluation harness, interactive front-ends — can interleave
    their own bookkeeping (checkpoints, progress display) between
    questions. :meth:`run` is the run-to-completion convenience.
    """

    def __init__(
        self,
        crowd: SimulatedCrowd,
        config: CrowdMinerConfig,
        obs: Instrumentation | None = None,
        storage=None,
    ) -> None:
        self.crowd = crowd
        self.config = config
        self._rng = as_rng(config.seed)
        #: Storage backend (:mod:`repro.storage`) receiving the
        #: write-ahead answer log and checkpoints; ``None`` keeps the
        #: session purely in-process. Never pickled — resume re-attaches
        #: the live backend (see ``repro.storage.checkpoint``).
        self.storage = storage
        #: Back-reference set by the asynchronous dispatcher, so
        #: checkpoint requests can be deferred to an event boundary.
        self.dispatcher = None
        #: Session instrumentation, shared with the knowledge base.
        self.obs = obs or Instrumentation()
        # An instrumented backend (the chaos layer's FaultyBackend)
        # reports its fault counters through the session's obs.
        bind_obs = getattr(storage, "bind_obs", None)
        if bind_obs is not None:
            bind_obs(self.obs)
        self.consistency: ConsistencyChecker | None = None
        self.quality: QualityController | None = None
        self.latent: LatentAbilityModel | None = None
        aggregator = config.aggregator
        trust_sources: list = []
        if config.screen_spammers:
            self.consistency = ConsistencyChecker()
            trust_sources.append(self.consistency)
        if config.quarantine:
            if config.trust_model == "gold":
                self.quality = QualityController(
                    trust_floor=config.trust_floor,
                    min_answers=config.quarantine_min_answers,
                )
                trust_sources.append(self.quality)
            else:
                self.latent = LatentAbilityModel(
                    trust_floor=config.trust_floor,
                    min_answers=config.quarantine_min_answers,
                    reestimate_every=config.reestimate_every,
                )
                trust_sources.append(self.latent)
        if len(trust_sources) == 1:
            aggregator = DynamicTrustAggregator(trust_sources[0])
        elif trust_sources:
            aggregator = DynamicTrustAggregator(CompositeTrust(tuple(trust_sources)))
        self.state = MiningState(
            test=config.build_test(),
            aggregator=aggregator,
            lattice_pruning=config.lattice_pruning,
            obs=self.obs,
            index=None if storage is None else storage.make_index(),
        )
        for rule in config.seed_rules:
            self.state.add_rule(rule, RuleOrigin.SEED)
        self.log: list[QuestionEvent] = []
        self._questions = 0
        self._consecutive_dry_opens = 0
        self._expanded: set[Rule] = set()

    # -- progress ------------------------------------------------------------

    @property
    def questions_asked(self) -> int:
        """Questions spent so far in this session."""
        return self._questions

    @property
    def budget_left(self) -> int:
        """Remaining question budget."""
        return self.config.budget - self._questions

    @property
    def open_supply_exhausted(self) -> bool:
        """True when a full crowd round of open questions came back dry.

        The round is measured against the members still *available* —
        comparing against the total member count (including departures)
        would keep burning budget on dry open questions long after the
        remaining crowd proved empty-handed.
        """
        available = _available_count(self.crowd)
        return self._consecutive_dry_opens >= max(1, available)

    @property
    def is_done(self) -> bool:
        """True when no further step can make progress."""
        if self.budget_left <= 0:
            return True
        available_n = _available_count(self.crowd)
        if available_n == 0:
            return True
        # A rule with fewer contributors than there are available
        # members certainly has an unasked available member — the id
        # set (O(crowd)) is only built when counts cannot decide.
        available: set[str] | None = None
        has_closed = False
        for k in self.state.unresolved():
            if available_n > len(k.samples.member_ids):
                has_closed = True
                break
            if available is None:
                available = set(self.crowd.available_members())
            if not available <= k.samples.member_ids:
                has_closed = True
                break
        return not has_closed and self.open_supply_exhausted

    # -- the step ------------------------------------------------------------------

    def step(self) -> QuestionEvent | None:
        """Spend one question; returns its event, or ``None`` when done.

        Raises :class:`~repro.errors.BudgetExhaustedError` when called
        past the budget (use :attr:`is_done` / :meth:`run` to avoid).
        """
        if self.budget_left <= 0:
            raise BudgetExhaustedError(
                f"budget of {self.config.budget} questions already spent"
            )
        # A member may turn out to have left mid-question (their answer
        # stream ran dry, their patience expired between scheduling and
        # asking); retry with the next member, up to one full round.
        with self.obs.timer("miner.step"):
            for _ in range(max(1, len(self.crowd))):
                try:
                    member_id = self.crowd.next_member()
                except CrowdExhaustedError:
                    return None
                proposal = self.propose_question(member_id)
                if proposal is None:
                    # Nothing askable for this member *or anyone else*
                    # (the proposal depends on the state, not the
                    # member), so the session is over.
                    return None
                try:
                    answer = self.pose(proposal)
                except CrowdExhaustedError:
                    continue
                event = self.ingest_answer(proposal, answer)
                if event is None:
                    # Discarded at the validation gate (a malformed
                    # reply, in the synchronous path): the member's
                    # effort is spent but no evidence landed. Try the
                    # next member rather than reporting the session
                    # over — one garbage line must not end a run.
                    continue
                return event
            return None

    # -- propose / pose / ingest ------------------------------------------------

    def propose_question(self, member_id: str) -> QuestionProposal | None:
        """Choose the next question for ``member_id`` without asking it.

        Returns ``None`` when nothing useful can be asked (strict
        closed-only policies with an empty candidate pool end the
        session here). The proposal is stamped with the current
        knowledge-base version so :meth:`ingest_answer` can detect
        answers made stale while in flight.
        """
        # Gold probes ride in regular question slots. The coin is only
        # flipped when probing is actually configured, so a disabled
        # quality loop leaves the random stream — and hence question
        # selection — untouched.
        if self.quality is not None and self.config.gold_rate > 0.0:
            if self._rng.random() < self.config.gold_rate:
                gold = self._pick_gold(member_id)
                if gold is not None:
                    return gold
        with self.obs.timer("miner.select"):
            closed_rule = self.config.strategy.select(self.state, member_id, self._rng)
        ask_open = self.config.open_policy.choose_open(
            self._rng,
            has_closed_candidate=closed_rule is not None,
            open_supply_exhausted=self.open_supply_exhausted,
        )
        if ask_open and not self.open_supply_exhausted:
            return QuestionProposal(
                member_id=member_id,
                kind=QuestionKind.OPEN,
                rule=None,
                context=self._pick_context(),
                kb_version=self.state.version,
            )
        # Either the policy chose closed, or it chose open but the
        # crowd's open-answer supply ran dry: fall back to closed.
        if closed_rule is not None:
            # Closed questions are only ever asked about rules the
            # strategy read out of the state, so the rule's origin is
            # already on record — recording under a fabricated origin
            # would misreport how the rule was discovered.
            assert (
                closed_rule in self.state
            ), "strategy selected a rule unknown to the state"
            return QuestionProposal(
                member_id=member_id,
                kind=QuestionKind.CLOSED,
                rule=closed_rule,
                context=None,
                kb_version=self.state.version,
            )
        return None

    def _pick_gold(self, member_id: str) -> QuestionProposal | None:
        """A gold-probe proposal for ``member_id``, or ``None``.

        Gold rules are taken from settled, directly-evidenced rules
        with the test's minimum direct sample count — their aggregate
        is the best ground truth the session owns — and restricted to
        rules this member has not answered (their old answer is already
        *in* that aggregate, which would let them grade their own
        exam).
        """
        candidates = [
            k
            for k in self.state.rules()
            if k.is_resolved
            and not k.inferred
            and k.samples.n >= self.config.min_samples
            and not k.samples.has_answer_from(member_id)
        ]
        if not candidates:
            return None
        knowledge = candidates[int(self._rng.integers(len(candidates)))]
        return QuestionProposal(
            member_id=member_id,
            kind=QuestionKind.CLOSED,
            rule=knowledge.rule,
            context=None,
            kb_version=self.state.version,
            gold=True,
        )

    def pose(self, proposal: QuestionProposal) -> AnyAnswer:
        """Put the proposed question to the crowd and return the raw answer.

        Raises :class:`~repro.errors.CrowdExhaustedError` when the
        member turns out to have left between scheduling and asking.
        The answer may be a
        :class:`~repro.crowd.questions.MalformedAnswer` (the reply
        never parsed); :meth:`ingest_answer` counts and drops those.
        Callers that cannot ingest immediately (the dispatcher) hold on
        to the answer and deliver it to :meth:`ingest_answer` later.
        """
        if proposal.kind is QuestionKind.CLOSED:
            assert proposal.rule is not None
            return self.crowd.ask_closed(proposal.member_id, proposal.rule)
        return self.crowd.ask_open(
            proposal.member_id,
            exclude=self.open_question_exclude(),
            context=proposal.context,
        )

    def open_question_exclude(self) -> set[Rule]:
        """The rules an open question should exclude, as of right now.

        The knowledge the question form shows the member ("tell us
        something we *don't* already know") — snapshotted at pose time
        by the synchronous path, at issue time by the dispatcher and
        the serving surface (:mod:`repro.serve.wire` sends it over the
        wire so a remote client answers from the same information).
        Treat the returned set as read-only: it is the state's live
        view.
        """
        return self.state.known_rule_set()

    def pose_async(
        self,
        proposal: QuestionProposal,
        *,
        latency,
        rng: np.random.Generator,
        now: float = 0.0,
    ):
        """Put the question to the crowd's asynchronous interface.

        Returns the crowd's
        :class:`~repro.crowd.questions.InFlightAnswer` — content
        resolved now, visibility delayed by a ``latency`` draw on
        ``rng``. The dispatcher owns the event clock and hands the
        wrapped answer back to :meth:`ingest_answer` when it lands.
        """
        if proposal.kind is QuestionKind.CLOSED:
            assert proposal.rule is not None
            return self.crowd.ask_closed_async(
                proposal.member_id, proposal.rule, latency=latency, rng=rng, now=now
            )
        return self.crowd.ask_open_async(
            proposal.member_id,
            latency=latency,
            rng=rng,
            now=now,
            exclude=self.open_question_exclude(),
            context=proposal.context,
        )

    def proposal_is_stale(self, proposal: QuestionProposal) -> bool:
        """True when the in-flight question is no longer worth an answer.

        Only meaningful for closed questions (an open answer can always
        seed candidates): the rule was resolved — directly or by
        lattice propagation — while the question was in flight, or the
        member's answer for it was already counted (a timed-out
        question reassigned to someone who answered meanwhile).
        The knowledge-base version stamp makes the common case free:
        an unchanged version proves nothing relevant happened.
        """
        if proposal.gold:
            # A gold probe's rule is settled *by construction*; the
            # answer is wanted for scoring regardless of what the
            # knowledge base did meanwhile.
            return False
        if proposal.kind is not QuestionKind.CLOSED:
            return False
        if proposal.kb_version == self.state.version:
            return False
        assert proposal.rule is not None
        knowledge = self.state.knowledge(proposal.rule)
        return knowledge.is_resolved or knowledge.samples.has_answer_from(
            proposal.member_id
        )

    def ingest_answer(
        self, proposal: QuestionProposal, answer: AnyAnswer
    ) -> QuestionEvent | None:
        """Fold one answer into the knowledge base, in completion order.

        Returns the recorded event, or ``None`` when the answer was
        discarded instead of counted. Discards, in gate order:

        - **malformed** — the reply never parsed
          (:class:`~repro.crowd.questions.MalformedAnswer`); counted
          under ``answers.malformed`` and dropped. One garbage line
          from one member must never raise out of the session. When
          the quality loop is on, the garbage also counts as a
          quality strike (an unparseable reply is indistinguishable
          from a maximal outlier), so a member who *only* sends
          garbage still ends up quarantined instead of holding a
          routing slot forever.
        - **rejected** — the member was quarantined while this answer
          was in flight; counted under ``quality.rejected``. Their
          evidence was purged, so late answers must not re-enter.
        - **stale** (see :meth:`proposal_is_stale`) — counted under
          ``dispatch.stale``; stale answers must never be
          double-counted as evidence.
        """
        if isinstance(answer, MalformedAnswer):
            self.obs.count("answers.malformed")
            if self.quality is not None:
                self.quality.record_answer(proposal.member_id, float("inf"))
                self._maybe_quarantine(proposal.member_id)
            elif self.latent is not None:
                self.latent.observe_malformed(proposal.member_id)
                self._maybe_reestimate()
            return None
        guard = self.trust_guard
        if guard is not None and guard.is_quarantined(proposal.member_id):
            self.obs.count("quality.rejected")
            return None
        if proposal.gold:
            assert isinstance(answer, ClosedAnswer)
            return self._ingest_gold(proposal, answer)
        if proposal.kind is QuestionKind.CLOSED:
            assert isinstance(answer, ClosedAnswer)
            return self._ingest_closed(proposal, answer)
        assert isinstance(answer, OpenAnswer)
        return self._ingest_open(proposal, answer)

    def _ingest_gold(
        self, proposal: QuestionProposal, answer: ClosedAnswer
    ) -> QuestionEvent:
        """Score a gold-probe answer; it never becomes evidence.

        The expected stats are the settled rule's current aggregate
        (the same clamped point estimate reporting uses). The probe
        still spends budget and is logged like any closed question —
        dispatch accounting cannot tell probes apart, by design.
        """
        assert self.quality is not None and proposal.rule is not None
        knowledge = self.state.knowledge(proposal.rule)
        mean = self.state.summary_for(knowledge).mean
        support = float(min(1.0, max(0.0, mean[0])))
        confidence = float(min(1.0, max(0.0, mean[1])))
        expected = RuleStats(support, max(support, confidence))
        error = self.quality.record_gold(proposal.member_id, answer.stats, expected)
        self.obs.count("quality.gold")
        if error > self.quality.gold_tolerance:
            self.obs.count("quality.gold_failed")
        self._maybe_quarantine(proposal.member_id)
        event = QuestionEvent(
            index=self._questions,
            kind=QuestionKind.CLOSED,
            member_id=proposal.member_id,
            rule=proposal.rule,
            stats=answer.stats,
        )
        self._finish_step(event)
        return event

    def _outlier_z(self, rule: Rule, stats: RuleStats) -> float | None:
        """The answer's distance from the rule's aggregate, in sample SDs.

        ``None`` while the aggregate is too thin to judge against. The
        per-component sample variance is floored by the significance
        test's ``variance_floor`` so a unanimous crowd does not turn
        every honest wobble into infinite z.
        """
        knowledge = self.state.knowledge(rule)
        summary = self.state.summary_for(knowledge)
        if summary.n < self.config.min_samples:
            return None
        sample_var = np.diag(summary.mean_cov) * summary.n
        sd = np.sqrt(np.maximum(sample_var, self.config.variance_floor))
        delta = np.abs(np.array(stats.as_tuple()) - summary.mean)
        return float(np.max(delta / sd))

    @property
    def trust_guard(self) -> QualityController | LatentAbilityModel | None:
        """The active quarantine guard — gold or latent — or ``None``.

        Both models share the quarantine surface
        (``is_quarantined`` / ``quarantined`` / ``trust``), so callers
        that only need that surface stay trust-model agnostic.
        """
        return self.quality if self.quality is not None else self.latent

    def _maybe_reestimate(self) -> None:
        """Run a latent re-estimation when one is due, then react to it.

        The cadence is answer-count driven (every ``reestimate_every``
        counted observations), so it is a pure function of the answer
        stream — replay stays byte-identical. When the fit moves some
        member's trust, members whose posterior ability now warrants
        exile are quarantined (in sorted order, deterministically) and
        every evidenced rule is re-assessed under the shifted weights —
        rules settled on newly-distrusted answers reopen through the
        regular purge/reopen machinery.
        """
        assert self.latent is not None
        if not self.latent.due():
            return
        with self.obs.timer("quality.estimate"):
            changed = self.latent.reestimate()
        self.obs.count("quality.reestimates")
        for _, ability in self.latent.abilities():
            self.obs.observe(
                "quality.ability", ability.sigma, edges=ABILITY_BUCKETS
            )
        if not changed:
            return
        for member_id in self.latent.quarantine_candidates():
            self.latent.mark_quarantined(member_id)
            self.crowd.quarantine(member_id)
            self.state.purge_member(member_id)
            self.obs.count("quality.quarantined")
        self.state.reassess_trust_shift()

    def _maybe_quarantine(self, member_id: str) -> None:
        """Exile ``member_id`` if their quality record now warrants it.

        Quarantine is the full loop closing: routing stops
        (:meth:`~repro.crowd.crowd.SimulatedCrowd.quarantine`), trust
        pins to zero, and every observation the member contributed is
        released from the knowledge base
        (:meth:`~repro.miner.state.MiningState.purge_member`) —
        re-opening any rule that was settled on their say-so.
        """
        assert self.quality is not None
        if not self.quality.should_quarantine(member_id):
            return
        self.quality.mark_quarantined(member_id)
        self.crowd.quarantine(member_id)
        self.state.purge_member(member_id)
        self.obs.count("quality.quarantined")

    def _ingest_closed(
        self, proposal: QuestionProposal, answer: ClosedAnswer
    ) -> QuestionEvent | None:
        rule, member_id = proposal.rule, proposal.member_id
        assert rule is not None and rule in self.state, (
            "closed answer about a rule unknown to the state"
        )
        if self.proposal_is_stale(proposal):
            self.obs.count("dispatch.stale")
            return None
        origin = self.state.knowledge(rule).origin
        if self.consistency is not None:
            self.consistency.record(member_id, rule, answer.stats)
        if self.quality is not None:
            # Scored against the aggregate *before* this answer joins
            # it — an answer must not soften its own z-score.
            self.quality.record_answer(
                member_id, self._outlier_z(rule, answer.stats)
            )
        if self.latent is not None:
            # Only counted closed answers enter the matrix: open
            # answers are volunteer-biased by construction, and gold
            # does not exist in this mode.
            self.latent.observe_answer(member_id, rule, answer.stats)
        self.state.record_answer(rule, member_id, answer.stats, origin)
        if self.quality is not None:
            self._maybe_quarantine(member_id)
        elif self.latent is not None:
            self._maybe_reestimate()
        self.obs.count("miner.closed")
        self._expand_confirmed()
        event = QuestionEvent(
            index=self._questions,
            kind=QuestionKind.CLOSED,
            member_id=member_id,
            rule=rule,
            stats=answer.stats,
        )
        self._finish_step(event)
        return event

    def _pick_context(self):
        """A specialization-question context, or ``None`` for fully open.

        With the configured probability, the context is the body of a
        random confirmed-significant rule — "think of occasions
        involving <body>: what else do you do then?" — steering the
        member's memory toward refinements of proven structure.
        """
        fraction = self.config.contextual_open_fraction
        if fraction <= 0.0 or self._rng.random() >= fraction:
            return None
        confirmed = [
            k.rule
            for k in self.state.rules()
            if k.decision is Decision.SIGNIFICANT
        ]
        if not confirmed:
            return None
        rule = confirmed[int(self._rng.integers(len(confirmed)))]
        return rule.antecedent | rule.consequent

    def _ingest_open(
        self, proposal: QuestionProposal, answer: OpenAnswer
    ) -> QuestionEvent:
        member_id, context = proposal.member_id, proposal.context
        self.obs.count("miner.open")
        if answer.is_empty:
            # Only *blind* open questions coming back empty signal that
            # the crowd's memory is exhausted; a missed contextual probe
            # just means nobody refines that particular habit.
            if context is None:
                self._consecutive_dry_opens += 1
            self.obs.count("miner.dry_opens")
            self.config.open_policy.observe_open_outcome(False)
            event = QuestionEvent(
                index=self._questions,
                kind=QuestionKind.OPEN,
                member_id=member_id,
                rule=None,
                stats=None,
            )
            self._finish_step(event)
            return event
        self._consecutive_dry_opens = 0
        rule, stats = answer.rule, answer.stats
        assert rule is not None and stats is not None
        # Discovery quality feedback: a volunteered habit only counts as
        # a productive find when the volunteer's own stats clear the
        # thresholds — members digging into the dregs of their memory
        # drive the open-question rate down.
        promising = stats.meets(
            self.config.thresholds.support, self.config.thresholds.confidence
        )
        self.config.open_policy.observe_open_outcome(promising)
        if self.consistency is not None:
            self.consistency.record(member_id, rule, stats)
        prior = self._volunteer_prior(stats)
        if self.config.count_open_evidence:
            self.state.record_answer(rule, member_id, stats, RuleOrigin.OPEN_ANSWER)
            self.state.set_prior_promise(rule, prior)
        else:
            self.state.add_rule(rule, RuleOrigin.OPEN_ANSWER, prior_promise=prior)
        self._expand_confirmed()
        event = QuestionEvent(
            index=self._questions,
            kind=QuestionKind.OPEN,
            member_id=member_id,
            rule=rule,
            stats=stats,
        )
        self._finish_step(event)
        return event

    #: Prior promise of speculative lattice-generated candidates: just
    #: below the 0.5 of a fresh unknown, so they are verified after
    #: directly volunteered rules but before rules evidence disfavours.
    LATTICE_PRIOR = 0.45

    def _volunteer_prior(self, stats) -> float:
        """Prior promise implied by a volunteer's (biased) stats.

        The volunteer's answer is treated as half a vote: the
        significance probability it *would* imply is averaged with the
        uninformed 0.5, acknowledging the selection bias of asking
        someone who has the habit.
        """
        pseudo = EstimateSummary(
            n=1,
            mean=np.array(stats.as_tuple()),
            mean_cov=np.zeros((2, 2)),
        )
        p = self.state.test.probability_significant(pseudo)
        return 0.5 * (p + 0.5)

    def _expand_confirmed(self) -> None:
        """Expand lattice neighbours of newly *confirmed* rules.

        Called after every state update: any rule whose decision has
        become SIGNIFICANT since its last expansion gets its immediate
        generalizations and alternative body splits registered as
        candidates. Confirmation-triggered expansion keeps the
        candidate pool anchored to rules that earned it. The state
        queues confirmations as they happen, so this is a drain of the
        (almost always empty) queue, not a scan of every known rule.
        """
        if not (self.config.expand_generalizations or self.config.expand_splits):
            return
        for rule in self.state.take_newly_significant():
            knowledge = self.state.knowledge(rule)
            if knowledge.decision is not Decision.SIGNIFICANT or rule in self._expanded:
                continue
            self._expanded.add(rule)
            if self.config.expand_generalizations:
                for general in generalizations(rule):
                    self.state.add_rule(
                        general, RuleOrigin.LATTICE, prior_promise=self.LATTICE_PRIOR
                    )
            if self.config.expand_splits:
                body = rule.body
                for antecedent in body.subsets(proper=True):
                    if not antecedent:
                        continue
                    sibling = Rule(antecedent, body - antecedent)
                    self.state.add_rule(
                        sibling, RuleOrigin.LATTICE, prior_promise=self.LATTICE_PRIOR
                    )

    def _finish_step(self, event: QuestionEvent) -> None:
        self._questions += 1
        self.log.append(event)
        self.obs.count("miner.questions")
        if self.obs.tracing:
            self.obs.emit(
                "question",
                index=event.index,
                kind=event.kind.value,
                member_id=event.member_id,
                rule=None if event.rule is None else str(event.rule),
                kb_size=len(self.state),
            )
        if self.storage is not None:
            self._log_answer(event)
            every = self.config.checkpoint_every
            if every > 0 and self._questions % every == 0:
                if self.dispatcher is not None:
                    # Mid-delivery here: the dispatcher's completion
                    # books update only after this ingest returns, so
                    # the capture waits for the next event boundary.
                    self.dispatcher.request_checkpoint()
                else:
                    self.checkpoint()

    # -- persistence -------------------------------------------------------------

    def _log_answer(self, event: QuestionEvent) -> None:
        """Append one finished exchange to the write-ahead answer log.

        A failed append (disk full, injected fault) must not kill the
        mining session or punch a hole in the log's sequence numbers —
        the record joins an in-memory backlog that is flushed, in seq
        order, ahead of the next successful append or checkpoint.
        """
        from repro.storage.backend import AnswerRecord, StorageError
        from repro.storage.records import rule_key

        stats = event.stats
        record = AnswerRecord(
            seq=event.index,
            member_id=event.member_id,
            kind=event.kind.value,
            rule_key=None if event.rule is None else rule_key(event.rule),
            support=None if stats is None else stats.support,
            confidence=None if stats is None else stats.confidence,
        )
        backlog = getattr(self, "_log_backlog", None)
        if backlog is None:
            backlog = self._log_backlog = []
        backlog.append(record)
        try:
            while backlog:
                self.storage.append_answer(backlog[0])
                backlog.pop(0)
                self.obs.count("storage.answers_logged")
        except StorageError:
            self.obs.count("storage.append_failures")

    def _flush_log_backlog(self) -> None:
        """Write any backlogged answer records; raises on failure."""
        backlog = getattr(self, "_log_backlog", None)
        while backlog:
            self.storage.append_answer(backlog[0])
            backlog.pop(0)
            self.obs.count("storage.answers_logged")

    def checkpoint(self):
        """Capture the whole session into the attached storage backend.

        Returns the backend's
        :class:`~repro.storage.backend.CheckpointInfo`, or ``None``
        when no backend is attached. Dispatched sessions must not call
        this mid-event — use
        :meth:`~repro.dispatch.dispatcher.Dispatcher.request_checkpoint`.
        """
        if self.storage is None:
            return None
        from repro.storage.backend import StorageError
        from repro.storage.checkpoint import capture_session

        try:
            with self.obs.timer("storage.checkpoint"):
                # A checkpoint's answers_logged count promises that the
                # first N log records are durable — flush any append
                # backlog first, or skip this checkpoint entirely.
                self._flush_log_backlog()
                payload = capture_session(self, self.dispatcher)
                info = self.storage.save_checkpoint(
                    payload, questions=self._questions, kb_rules=len(self.state)
                )
        except StorageError:
            self.obs.count("storage.checkpoint_failures")
            return None
        self.obs.count("storage.checkpoints")
        self.obs.count("storage.bytes_written", info.payload_bytes)
        self.obs.gauge("storage.bytes_on_disk", self.storage.bytes_on_disk())
        return info

    def __getstate__(self) -> dict:
        # The storage backend (live file/database handles) and the
        # dispatcher back-reference (event closures) stay out of the
        # checkpoint; resume re-attaches both.
        state = self.__dict__.copy()
        state["storage"] = None
        state["dispatcher"] = None
        return state

    # -- running to completion -------------------------------------------------------

    def run(
        self,
        max_questions: int | None = None,
        stop_when=None,
    ) -> MiningResult:
        """Run until done (or until ``max_questions`` more are spent).

        ``stop_when`` is an optional stopping rule — any callable
        taking the miner and returning True to end the session early
        (see :mod:`repro.miner.termination` for the standard ones).
        """
        remaining = max_questions if max_questions is not None else self.config.budget
        while remaining > 0 and not self.is_done:
            if stop_when is not None and stop_when(self):
                break
            event = self.step()
            if event is None:
                break
            remaining -= 1
        return self.result()

    def result(self, mode: str = "point") -> MiningResult:
        """Snapshot the session outcome (see ``MiningState.significant_rules``)."""
        closed = sum(1 for e in self.log if e.kind is QuestionKind.CLOSED)
        return MiningResult(
            significant=self.state.significant_rules(mode=mode),
            questions_asked=self._questions,
            closed_questions=closed,
            open_questions=self._questions - closed,
            rules_discovered=len(self.state),
            inferred_classifications=self.state.inferred_classifications,
            log=list(self.log),
            obs=self.obs.snapshot(),
        )


def mine_crowd(
    crowd: SimulatedCrowd,
    thresholds: Thresholds,
    budget: int = 1_000,
    seed_rules: Iterable[Rule] = (),
    seed: int | np.random.Generator | None = None,
    **config_overrides,
) -> MiningResult:
    """One-call convenience: configure, run, return the result.

    Extra keyword arguments are forwarded to
    :class:`CrowdMinerConfig` (e.g. ``strategy=``, ``open_policy=``).
    """
    config = CrowdMinerConfig(
        thresholds=thresholds,
        budget=budget,
        seed_rules=tuple(seed_rules),
        seed=seed,
        **config_overrides,
    )
    return CrowdMiner(crowd, config).run()
