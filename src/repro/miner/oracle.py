"""Ground-truth oracle: the exact answer the miner is trying to find.

Evaluation needs the *true* set of significant rules — the rules whose
exact crowd-mean support and confidence (computed from the materialized
personal databases, which the miner itself never sees) clear the query
thresholds. This module computes that set exhaustively:

1. **Candidate bodies.** A rule can only be significant if its body's
   crowd-mean support clears ``θ_s``. When all personal databases have
   equal size (the builders guarantee this), crowd-mean support equals
   support in the concatenation of all databases, so FP-Growth over the
   union enumerates every candidate body exactly. Unequal sizes fall
   back to mining with a safety margin and filtering by the exact mean.
2. **Splits.** For each candidate body, every antecedent/consequent
   split is scored by its exact crowd-mean confidence (support is
   split-invariant), and the splits clearing ``θ_c`` are the
   significant rules.

The oracle is exponential in the body-size cap, which is why the cap
exists (habit rules are short; the open-answer policy uses the same
default cap, keeping miner and oracle aligned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classic.fpgrowth import frequent_itemsets
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.estimation.significance import Thresholds
from repro.synth.population import Population


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """The exact significant-rule set of a population.

    ``stats`` maps every *candidate* rule that was scored to its exact
    crowd-mean stats; ``significant`` is the subset clearing both
    thresholds.
    """

    thresholds: Thresholds
    significant: frozenset[Rule]
    stats: dict[Rule, RuleStats] = field(hash=False)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self.significant

    def __len__(self) -> int:
        return len(self.significant)

    def is_significant(self, rule: Rule) -> bool:
        """True when ``rule`` is truly significant."""
        return rule in self.significant


def _mean_confidences(
    population: Population, body: Itemset, body_counts: list[int]
) -> dict[Rule, float]:
    """Exact mean confidence of every split of ``body``.

    ``body_counts`` holds, per member, the number of transactions
    containing the body (precomputed by the caller).
    """
    result: dict[Rule, float] = {}
    members = population.members
    for antecedent in body.subsets(proper=True):
        if not antecedent:
            continue
        consequent = body - antecedent
        confidences = []
        for member, body_count in zip(members, body_counts):
            if body_count == 0:
                confidences.append(0.0)
                continue
            antecedent_count = member.db.count(antecedent)
            confidences.append(body_count / antecedent_count if antecedent_count else 0.0)
        result[Rule(antecedent, consequent)] = float(np.mean(confidences))
    return result


def compute_ground_truth(
    population: Population,
    thresholds: Thresholds,
    max_body_size: int = 4,
    include_itemset_rules: bool = False,
    margin: float = 0.75,
) -> GroundTruth:
    """Compute the exact significant-rule set of ``population``.

    Parameters
    ----------
    population:
        The crowd's materialized truth.
    thresholds:
        The query thresholds ``(θ_s, θ_c)``.
    max_body_size:
        Cap on rule body size — must cover the longest rule the miner
        can report (the open-answer policy's ``max_body_size``).
    include_itemset_rules:
        Also score degenerate ``∅ → body`` rules.
    margin:
        Safety factor applied to the union-mining threshold when
        personal databases have unequal sizes (mean support and union
        support then differ; candidates are over-generated and filtered
        by the exact mean).
    """
    union = population.union_db()
    mining_threshold = thresholds.support
    if not population.equal_sized:
        mining_threshold = max(1.0 / len(union), thresholds.support * margin)
    candidates = frequent_itemsets(union, mining_threshold, max_size=max_body_size)

    stats: dict[Rule, RuleStats] = {}
    significant: set[Rule] = set()
    for body in candidates:
        if len(body) < 2 and not include_itemset_rules:
            continue
        body_counts = [member.db.count(body) for member in population.members]
        sizes = [len(member.db) for member in population.members]
        mean_support = float(
            np.mean([c / s if s else 0.0 for c, s in zip(body_counts, sizes)])
        )
        if mean_support < thresholds.support:
            continue
        if include_itemset_rules:
            rule = Rule.itemset_rule(body)
            stats[rule] = RuleStats(mean_support, mean_support)
            if mean_support >= thresholds.confidence:
                significant.add(rule)
        if len(body) >= 2:
            for rule, mean_conf in _mean_confidences(
                population, body, body_counts
            ).items():
                mean_conf = max(mean_conf, mean_support)
                stats[rule] = RuleStats(mean_support, min(1.0, mean_conf))
                if mean_conf >= thresholds.confidence:
                    significant.add(rule)
    return GroundTruth(
        thresholds=thresholds,
        significant=frozenset(significant),
        stats=stats,
    )
