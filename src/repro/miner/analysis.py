"""Post-hoc analysis of mining sessions.

The paper evaluates algorithms along cost dimensions beyond raw
question counts: *crowd complexity* (distinct questions posed — the
measure its theory bounds), per-member effort and its fairness, the
open/closed breakdown, and how quickly discovery dries up. This module
computes all of them from a session's event log, so any run — live or
replayed — can be audited without instrumenting the miner.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.rule import Rule
from repro.miner.result import MiningResult, QuestionEvent, QuestionKind


@dataclass(frozen=True, slots=True)
class MemberLoad:
    """Per-member effort statistics."""

    questions_per_member: dict[str, int]

    @property
    def mean(self) -> float:
        """Average questions answered per participating member."""
        if not self.questions_per_member:
            return 0.0
        return float(np.mean(list(self.questions_per_member.values())))

    @property
    def max(self) -> int:
        """Heaviest single member's load."""
        if not self.questions_per_member:
            return 0
        return max(self.questions_per_member.values())

    @property
    def gini(self) -> float:
        """Gini coefficient of the load distribution (0 = perfectly fair).

        The multi-user algorithm serves members round-robin, so a high
        Gini flags a scheduling or patience problem.
        """
        values = np.sort(np.array(list(self.questions_per_member.values()), dtype=float))
        n = len(values)
        if n == 0:
            return 0.0
        total = values.sum()
        if total == 0:
            return 0.0
        ranks = np.arange(1, n + 1)
        # Standard discrete Gini: 2·Σ(i·xᵢ)/(n·Σx) − (n+1)/n.
        return float(2.0 * (ranks * values).sum() / (n * total) - (n + 1) / n)


@dataclass(frozen=True, slots=True)
class SessionAnalysis:
    """Everything measured about one session's log."""

    total_questions: int
    crowd_complexity: int  # distinct questions (unique rules + 1 open kind)
    unique_rules_asked: int
    closed_questions: int
    open_questions: int
    empty_open_answers: int
    discovery_curve: tuple[int, ...]  # cumulative distinct rules per question
    member_load: MemberLoad

    @property
    def open_fraction(self) -> float:
        """Share of questions that were open."""
        if self.total_questions == 0:
            return 0.0
        return self.open_questions / self.total_questions

    @property
    def empty_open_rate(self) -> float:
        """Share of open questions that came back empty."""
        if self.open_questions == 0:
            return 0.0
        return self.empty_open_answers / self.open_questions

    @property
    def questions_per_unique_rule(self) -> float:
        """Redundancy factor: total questions over distinct rules asked."""
        if self.unique_rules_asked == 0:
            return 0.0
        return self.total_questions / self.unique_rules_asked

    def summary(self) -> str:
        """A compact printable report."""
        lines = [
            f"questions          : {self.total_questions} "
            f"({self.closed_questions} closed, {self.open_questions} open)",
            f"crowd complexity   : {self.crowd_complexity} distinct questions",
            f"unique rules asked : {self.unique_rules_asked} "
            f"({self.questions_per_unique_rule:.1f} questions each)",
            f"empty open rate    : {self.empty_open_rate:.0%}",
            f"member load        : mean {self.member_load.mean:.1f}, "
            f"max {self.member_load.max}, gini {self.member_load.gini:.2f}",
        ]
        return "\n".join(lines)


def analyze_log(log: Sequence[QuestionEvent]) -> SessionAnalysis:
    """Compute a :class:`SessionAnalysis` from an event log."""
    closed = 0
    open_count = 0
    empty_open = 0
    rules_asked: set[Rule] = set()
    seen_rules: set[Rule] = set()
    discovery: list[int] = []
    load: Counter = Counter()
    for event in log:
        load[event.member_id] += 1
        if event.kind is QuestionKind.CLOSED:
            closed += 1
            assert event.rule is not None
            rules_asked.add(event.rule)
            seen_rules.add(event.rule)
        else:
            open_count += 1
            if event.rule is None:
                empty_open += 1
            else:
                seen_rules.add(event.rule)
        discovery.append(len(seen_rules))
    return SessionAnalysis(
        total_questions=len(log),
        crowd_complexity=len(rules_asked) + (1 if open_count else 0),
        unique_rules_asked=len(rules_asked),
        closed_questions=closed,
        open_questions=open_count,
        empty_open_answers=empty_open,
        discovery_curve=tuple(discovery),
        member_load=MemberLoad(dict(load)),
    )


def analyze_result(result: MiningResult) -> SessionAnalysis:
    """Convenience: analyze a result's embedded log."""
    return analyze_log(result.log)
