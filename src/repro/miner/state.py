"""The miner's knowledge base.

:class:`MiningState` is everything the system believes at a point in a
session: the rules it knows about, the evidence collected for each, the
current classification of each, and how each became known. It is the
bridge between crowd answers and question selection — strategies read
it, the main loop writes it.

Classification updates happen in two ways:

- **direct** — a rule's own evidence is re-assessed by the
  significance test after each new answer;
- **inferred** — support antitonicity propagates *support-based*
  insignificance downward: when a rule's support is confidently below
  threshold, every known specialization is condemned without spending
  a single question on it. (Confidence is not monotone along the
  lattice, so no symmetric upward rule exists for significance; the
  paper's pruning is likewise support-driven.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.estimation.aggregate import Aggregator, MeanAggregator
from repro.estimation.samples import EstimateSummary, RuleSamples
from repro.estimation.significance import Assessment, Decision, SignificanceTest


class RuleOrigin(enum.Enum):
    """How a rule entered the knowledge base."""

    SEED = "seed"  # provided upfront (query-driven candidates)
    OPEN_ANSWER = "open_answer"  # volunteered by a member
    LATTICE = "lattice"  # generated as a neighbour of a known rule


@dataclass(slots=True)
class RuleKnowledge:
    """Everything known about one rule."""

    rule: Rule
    origin: RuleOrigin
    samples: RuleSamples
    decision: Decision = Decision.UNDECIDED
    inferred: bool = False  # decision came from lattice propagation
    last_assessment: Assessment | None = None
    #: Prior belief that the rule is significant, before any counted
    #: evidence. 0.5 = no opinion. Open-answer rules get a boost from
    #: the volunteer's (uncounted, biased) stats; lattice-generated
    #: candidates get a slight discount — they are speculative.
    prior_promise: float = 0.5

    @property
    def is_resolved(self) -> bool:
        """True once the rule has a settled decision (direct or inferred)."""
        return self.decision.is_final

    @property
    def uncertainty(self) -> float:
        """Misclassification probability if forced to decide now.

        0.5 for rules with no evidence (maximally unknown); 0 for
        resolved rules.
        """
        if self.is_resolved:
            return 0.0
        if self.last_assessment is None:
            return 0.5
        return self.last_assessment.uncertainty


class MiningState:
    """The evolving knowledge base of one mining session.

    Parameters
    ----------
    test:
        The significance test used for all classification.
    aggregator:
        Cross-member aggregation policy (defaults to the plain mean).
    lattice_pruning:
        Enable support-based downward propagation of insignificance.
    """

    def __init__(
        self,
        test: SignificanceTest,
        aggregator: Aggregator | None = None,
        lattice_pruning: bool = True,
    ) -> None:
        self.test = test
        self.aggregator = aggregator or MeanAggregator()
        self.lattice_pruning = bool(lattice_pruning)
        self._rules: dict[Rule, RuleKnowledge] = {}
        #: Counters the evaluation harness reads.
        self.inferred_classifications = 0

    # -- rule bookkeeping -------------------------------------------------------

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def knowledge(self, rule: Rule) -> RuleKnowledge:
        """The knowledge record for ``rule`` (KeyError when unknown)."""
        return self._rules[rule]

    def rules(self) -> list[RuleKnowledge]:
        """All knowledge records, in discovery order."""
        return list(self._rules.values())

    def unresolved(self) -> list[RuleKnowledge]:
        """Rules still lacking a settled decision, in discovery order."""
        return [k for k in self._rules.values() if not k.is_resolved]

    def known_rule_set(self) -> set[Rule]:
        """The set of known rules (used to exclude from open questions)."""
        return set(self._rules)

    def add_rule(
        self, rule: Rule, origin: RuleOrigin, prior_promise: float = 0.5
    ) -> RuleKnowledge:
        """Register ``rule`` if new; returns its knowledge record.

        A repeated registration keeps the existing record but lets the
        prior promise *rise* (a rule volunteered again after being
        lattice-generated is more promising than either signal alone
        suggested). A newly added rule may be immediately classified by
        lattice propagation when some known generalization is already
        support-insignificant.
        """
        existing = self._rules.get(rule)
        if existing is not None:
            existing.prior_promise = max(existing.prior_promise, prior_promise)
            return existing
        knowledge = RuleKnowledge(
            rule=rule,
            origin=origin,
            samples=RuleSamples(rule),
            prior_promise=prior_promise,
        )
        self._rules[rule] = knowledge
        if self.lattice_pruning:
            self._inherit_insignificance(knowledge)
        return knowledge

    def _inherit_insignificance(self, knowledge: RuleKnowledge) -> None:
        """Condemn a new rule if a known generalization is support-dead."""
        for other in self._rules.values():
            if other.rule is knowledge.rule:
                continue
            if (
                other.is_resolved
                and other.decision is Decision.INSIGNIFICANT
                and other.rule.generalizes(knowledge.rule)
                and self._support_dead(other)
            ):
                knowledge.decision = Decision.INSIGNIFICANT
                knowledge.inferred = True
                self.inferred_classifications += 1
                return

    def _support_dead(self, knowledge: RuleKnowledge) -> bool:
        """True when the rule's *support* is confidently below threshold."""
        summary = self.summary_for(knowledge)
        if summary.n < self.test.min_samples:
            return False
        p_support = self.test.probability_support_exceeds(summary)
        return p_support <= 1.0 - self.test.decision_confidence

    # -- evidence updates ----------------------------------------------------------

    def summary_for(self, knowledge: RuleKnowledge) -> EstimateSummary:
        """The aggregated estimate snapshot of a rule."""
        return self.aggregator.summarize(knowledge.samples)

    def record_answer(
        self, rule: Rule, member_id: str, stats: RuleStats, origin: RuleOrigin
    ) -> RuleKnowledge:
        """Incorporate one member answer about ``rule`` and re-classify.

        Registers the rule when unknown (with the given origin),
        stores the observation, re-runs the significance assessment,
        and — when the update settles the rule as support-insignificant
        — propagates that downward to known specializations.
        """
        knowledge = self.add_rule(rule, origin)
        knowledge.samples.add(member_id, stats)
        self._reassess(knowledge)
        return knowledge

    def _reassess(self, knowledge: RuleKnowledge) -> None:
        summary = self.summary_for(knowledge)
        assessment = self.test.assess(summary)
        knowledge.last_assessment = assessment
        previous = knowledge.decision
        # Direct evidence overrides an inferred decision.
        if assessment.decision.is_final or knowledge.inferred:
            if assessment.decision.is_final:
                knowledge.decision = assessment.decision
                knowledge.inferred = False
            elif knowledge.inferred and assessment.decision is Decision.UNDECIDED:
                # Keep the inferred label until direct evidence settles it.
                pass
        else:
            knowledge.decision = assessment.decision
        if (
            self.lattice_pruning
            and knowledge.decision is Decision.INSIGNIFICANT
            and not knowledge.inferred
            and knowledge.decision is not previous
            and self._support_dead(knowledge)
        ):
            self._propagate_insignificance(knowledge)

    def _propagate_insignificance(self, source: RuleKnowledge) -> None:
        """Condemn known, unresolved specializations of a support-dead rule."""
        for other in self._rules.values():
            if other.rule is source.rule or other.is_resolved:
                continue
            if source.rule.generalizes(other.rule):
                other.decision = Decision.INSIGNIFICANT
                other.inferred = True
                self.inferred_classifications += 1

    # -- reporting ---------------------------------------------------------------------

    def significant_rules(self, mode: str = "point") -> dict[Rule, RuleStats]:
        """The rules the system would report as significant right now.

        Parameters
        ----------
        mode:
            ``"decided"`` — only rules whose decision is settled
            SIGNIFICANT (the conservative, end-of-session answer);
            ``"point"`` — additionally include undecided rules whose
            current point estimate clears both thresholds (the paper's
            anytime answer, used for quality-vs-questions curves).
            Point inclusion still requires the test's minimum sample
            count: a rule one enthusiast mentioned once is a candidate,
            not an answer.
        """
        if mode not in ("decided", "point"):
            raise ValueError(f"unknown report mode: {mode!r}")
        reported: dict[Rule, RuleStats] = {}
        for knowledge in self._rules.values():
            summary = self.summary_for(knowledge)
            if knowledge.decision is Decision.SIGNIFICANT:
                include = True
            elif (
                mode == "point"
                and knowledge.decision is Decision.UNDECIDED
                and summary.n >= self.test.min_samples
            ):
                include = self.test.point_decision(summary) is Decision.SIGNIFICANT
            else:
                include = False
            if include:
                mean = summary.mean
                support = float(min(1.0, max(0.0, mean[0])))
                confidence = float(min(1.0, max(0.0, mean[1])))
                reported[knowledge.rule] = RuleStats(
                    support, max(support, confidence)
                )
        return reported
