"""The miner's knowledge base.

:class:`MiningState` is everything the system believes at a point in a
session: the rules it knows about, the evidence collected for each, the
current classification of each, and how each became known. It is the
bridge between crowd answers and question selection — strategies read
it, the main loop writes it.

Classification updates happen in two ways:

- **direct** — a rule's own evidence is re-assessed by the
  significance test after each new answer;
- **inferred** — support antitonicity propagates *support-based*
  insignificance downward: when a rule's support is confidently below
  threshold, every known specialization is condemned without spending
  a single question on it. (Confidence is not monotone along the
  lattice, so no symmetric upward rule exists for significance; the
  paper's pruning is likewise support-driven.)

The knowledge base is *incremental*: an item→rules inverted index over
rule bodies restricts every lattice scan (inheritance on add,
propagation on support-death, the horizontal strategy's blocking test)
to candidate rules sharing items with the probe, per-rule aggregate
summaries are cached against sample/aggregator versions, and the
unresolved set, known-rule set and newly-confirmed queue are maintained
on every transition instead of being recomputed per question. All hot
paths report to a :class:`~repro.obs.Instrumentation` layer.
"""

from __future__ import annotations

import enum
import heapq
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.estimation.aggregate import Aggregator, MeanAggregator
from repro.estimation.samples import EstimateSummary, RuleSamples
from repro.estimation.significance import Assessment, Decision, SignificanceTest
from repro.obs import Instrumentation


class RuleOrigin(enum.Enum):
    """How a rule entered the knowledge base."""

    SEED = "seed"  # provided upfront (query-driven candidates)
    OPEN_ANSWER = "open_answer"  # volunteered by a member
    LATTICE = "lattice"  # generated as a neighbour of a known rule


@dataclass(slots=True)
class RuleKnowledge:
    """Everything known about one rule."""

    rule: Rule
    origin: RuleOrigin
    samples: RuleSamples
    decision: Decision = Decision.UNDECIDED
    inferred: bool = False  # decision came from lattice propagation
    last_assessment: Assessment | None = None
    #: Prior belief that the rule is significant, before any counted
    #: evidence. 0.5 = no opinion. Open-answer rules get a boost from
    #: the volunteer's (uncounted, biased) stats; lattice-generated
    #: candidates get a slight discount — they are speculative.
    prior_promise: float = 0.5
    #: Support-death already propagated to known specializations; reset
    #: when the decision moves away from INSIGNIFICANT.
    propagated: bool = False
    #: Discovery sequence number (order of entry into the state).
    seq: int = field(default=-1, init=False)
    # Cached aggregate summary, keyed by (samples, aggregator) versions.
    _summary: EstimateSummary | None = field(default=None, init=False, repr=False)
    _summary_token: tuple[int, int] | None = field(
        default=None, init=False, repr=False
    )
    # Stamp of this rule's latest priority-heap entry; older entries
    # found in the heap are stale and get discarded on pop.
    _heap_stamp: int = field(default=0, init=False, repr=False)

    @property
    def is_resolved(self) -> bool:
        """True once the rule has a settled decision (direct or inferred)."""
        return self.decision.is_final

    @property
    def uncertainty(self) -> float:
        """Misclassification probability if forced to decide now.

        0.5 for rules with no evidence (maximally unknown); 0 for
        resolved rules.
        """
        if self.is_resolved:
            return 0.0
        if self.last_assessment is None:
            return 0.5
        return self.last_assessment.uncertainty


#: Bodies up to this size answer generalization queries by direct
#: subset enumeration (2^k body lookups); larger bodies fall back to
#: scanning the posting lists of their items.
_SUBSET_ENUMERATION_LIMIT = 10


class RuleIndex:
    """Item→rules inverted index over rule bodies.

    Rules are immutable and never leave the knowledge base, so the
    index is add-only. It answers the two lattice queries every scan
    reduces to — "which known rules could *generalize* this one?"
    (body ⊆ probe body) and "which could *specialize* it?"
    (body ⊇ probe body) — touching only rules that share items with
    the probe instead of the whole knowledge base.

    Candidates are filtered on bodies only; callers still apply
    :meth:`~repro.core.rule.Rule.generalizes` for the side-wise order
    (equal bodies split differently are incomparable).
    """

    __slots__ = ("_postings", "_by_body")

    def __init__(self) -> None:
        self._postings: dict[str, set[Rule]] = {}
        self._by_body: dict[Itemset, list[Rule]] = {}

    def add(self, rule: Rule) -> None:
        """Index ``rule`` under every item of its body."""
        for item in rule.body:
            self._postings.setdefault(item, set()).add(rule)
        self._by_body.setdefault(rule.body, []).append(rule)

    def generalization_candidates(self, rule: Rule) -> Iterator[Rule]:
        """Known rules whose body is a subset of ``rule``'s body.

        Includes ``rule`` itself when indexed, and same-body siblings.
        """
        body = rule.body
        if len(body) <= _SUBSET_ENUMERATION_LIMIT:
            by_body = self._by_body
            for sub_body in body.subsets():
                bucket = by_body.get(sub_body)
                if bucket:
                    yield from bucket
            return
        seen: set[Rule] = set()
        for item in body:
            for candidate in self._postings.get(item, ()):
                if candidate not in seen and candidate.body.issubset(body):
                    seen.add(candidate)
                    yield candidate

    def specialization_candidates(self, rule: Rule) -> Iterator[Rule]:
        """Known rules whose body is a superset of ``rule``'s body.

        Walks the shortest posting list among the body's items (every
        superset body must contain each of them) and filters.
        """
        body = rule.body
        postings = []
        for item in body:
            posting = self._postings.get(item)
            if not posting:
                return
            postings.append(posting)
        smallest = min(postings, key=len)
        for candidate in smallest:
            if body.issubset(candidate.body):
                yield candidate


class MiningState:
    """The evolving knowledge base of one mining session.

    Parameters
    ----------
    test:
        The significance test used for all classification.
    aggregator:
        Cross-member aggregation policy (defaults to the plain mean).
    lattice_pruning:
        Enable support-based downward propagation of insignificance.
    obs:
        Instrumentation receiving the knowledge-base counters and
        timers (``kb.*``); a private instance when not given.
    index:
        The item→rules inverted index implementation to use; the plain
        in-process :class:`RuleIndex` when not given. Storage backends
        supply their own (``SQLiteRuleIndex`` serves the same queries
        from indexed SQL tables) via
        :meth:`~repro.storage.backend.StorageBackend.make_index`.
    """

    def __init__(
        self,
        test: SignificanceTest,
        aggregator: Aggregator | None = None,
        lattice_pruning: bool = True,
        obs: Instrumentation | None = None,
        index=None,
    ) -> None:
        self.test = test
        self.aggregator = aggregator or MeanAggregator()
        self.lattice_pruning = bool(lattice_pruning)
        self.obs = obs or Instrumentation()
        self._rules: dict[Rule, RuleKnowledge] = {}
        self._index = index if index is not None else RuleIndex()
        self._known: set[Rule] = set()
        self._unresolved: dict[Rule, RuleKnowledge] = {}
        # A rule re-entering the unresolved set lands at the dict's
        # tail; the flag triggers one re-sort back to discovery order.
        self._unresolved_order_dirty = False
        self._newly_significant: list[Rule] = []
        # Priority view over unresolved rules (see question_value):
        # entries are (-value, -n, seq, push_id, knowledge, stamp),
        # kept fresh by pushing on every scoring-relevant change and
        # lazily discarding stale/resolved entries on pop.
        self._priority_heap: list[tuple] = []
        self._heap_pushes = 0
        self._version = 0
        #: Counters the evaluation harness reads.
        self.inferred_classifications = 0

    @property
    def version(self) -> int:
        """Monotonic change counter over the whole knowledge base.

        Bumped by every observable mutation — a rule added, an answer
        recorded, a decision or prior changed. The asynchronous
        dispatcher stamps each question proposal with the version at
        issue time: an unchanged version at ingest proves nothing can
        have invalidated the question while it was in flight, and a
        changed version triggers stale revalidation (the rule may have
        been settled directly, or condemned by lattice propagation,
        while the member was typing).
        """
        return self._version

    # -- persistence ------------------------------------------------------------

    def rebuild_index(self, index=None) -> None:
        """Repopulate the inverted index from the rules, discovery order.

        The index is derived state: checkpoints drop it (its SQL form
        lives outside the pickle, and a crashed process's index is not
        trusted anyway) and resume rebuilds it here — either into the
        default in-process :class:`RuleIndex` or into the implementation
        a storage backend supplies.
        """
        self._index = index if index is not None else RuleIndex()
        for rule in self._rules:
            self._index.add(rule)

    def __getstate__(self) -> dict:
        # The index may hold a live database connection; drop it and
        # rebuild on load (see rebuild_index).
        state = self.__dict__.copy()
        state["_index"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.rebuild_index()

    # -- rule bookkeeping -------------------------------------------------------

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def knowledge(self, rule: Rule) -> RuleKnowledge:
        """The knowledge record for ``rule`` (KeyError when unknown)."""
        return self._rules[rule]

    def rules(self) -> list[RuleKnowledge]:
        """All knowledge records, in discovery order."""
        return list(self._rules.values())

    def unresolved(self) -> list[RuleKnowledge]:
        """Rules still lacking a settled decision, in discovery order.

        Maintained incrementally — the call costs one list copy, not a
        filter over the whole knowledge base.
        """
        if self._unresolved_order_dirty:
            ordered = sorted(self._unresolved.values(), key=lambda k: k.seq)
            self._unresolved = {k.rule: k for k in ordered}
            self._unresolved_order_dirty = False
        return list(self._unresolved.values())

    def known_rule_set(self) -> set[Rule]:
        """The set of known rules (used to exclude from open questions).

        A live, maintained view — treat it as read-only; it tracks the
        knowledge base as rules are added.
        """
        return self._known

    def known_generalizations(self, rule: Rule) -> Iterator[RuleKnowledge]:
        """Known proper generalizations of ``rule``, via the index."""
        for candidate in self._index.generalization_candidates(rule):
            if candidate != rule and candidate.generalizes(rule):
                yield self._rules[candidate]

    def known_specializations(self, rule: Rule) -> Iterator[RuleKnowledge]:
        """Known proper specializations of ``rule``, via the index."""
        for candidate in self._index.specialization_candidates(rule):
            if candidate != rule and rule.generalizes(candidate):
                yield self._rules[candidate]

    def take_newly_significant(self) -> list[Rule]:
        """Drain the rules confirmed SIGNIFICANT since the last drain.

        The main loop's expansion step consumes this instead of
        re-scanning every rule's decision after each answer.
        """
        if not self._newly_significant:
            return []
        drained = self._newly_significant
        self._newly_significant = []
        return drained

    # -- the question-priority view ---------------------------------------------

    def question_value(self, knowledge: RuleKnowledge) -> float:
        """How much the next answer about this rule is worth.

        Two regimes (see ``MaxUncertaintyStrategy`` for the full
        rationale): below the test's minimum sample count the value is
        the rule's *promise* — evidence blended with one pseudo-sample
        of prior promise; at or above it, the value is the
        misclassification probability discounted by how much one more
        sample can still move the estimate (``min_samples / n``).
        """
        assessment = knowledge.last_assessment
        p = 0.5 if assessment is None else assessment.probability_significant
        n = knowledge.samples.n
        min_samples = self.test.min_samples
        if n < min_samples:
            return (n * p + knowledge.prior_promise) / (n + 1)
        return min(p, 1.0 - p) * (min_samples / n)

    def _push_priority(self, knowledge: RuleKnowledge) -> None:
        """(Re)insert a rule into the priority view with its current value."""
        if knowledge.is_resolved:
            return
        knowledge._heap_stamp += 1
        self._heap_pushes += 1
        heapq.heappush(
            self._priority_heap,
            (
                -self.question_value(knowledge),
                -knowledge.samples.n,
                knowledge.seq,
                self._heap_pushes,  # unique: later fields never compared
                knowledge,
                knowledge._heap_stamp,
            ),
        )

    def best_candidate(self, member_id: str) -> RuleKnowledge | None:
        """The unresolved rule whose next answer from ``member_id`` is
        worth the most.

        Equivalent to scanning every unresolved rule the member has not
        yet answered and taking the argmax of
        (:meth:`question_value`, sample count) with ties broken toward
        discovery order — but served from the maintained heap, so the
        cost is a handful of pops instead of a full scan. Entries whose
        rule has since resolved or been re-scored are discarded lazily;
        entries skipped only because this member already answered them
        are pushed back.
        """
        heap = self._priority_heap
        deferred = []
        chosen = None
        while heap:
            entry = heapq.heappop(heap)
            knowledge = entry[4]
            if knowledge.is_resolved or entry[5] != knowledge._heap_stamp:
                continue  # stale: superseded or settled since pushed
            deferred.append(entry)
            if knowledge.samples.has_answer_from(member_id):
                continue
            chosen = knowledge
            break
        for entry in deferred:
            heapq.heappush(heap, entry)
        return chosen

    def set_prior_promise(self, rule: Rule, prior_promise: float) -> None:
        """Update a rule's prior promise (and its question priority)."""
        knowledge = self._rules[rule]
        if knowledge.prior_promise != prior_promise:
            knowledge.prior_promise = prior_promise
            self._version += 1
            self._push_priority(knowledge)

    def add_rule(
        self, rule: Rule, origin: RuleOrigin, prior_promise: float = 0.5
    ) -> RuleKnowledge:
        """Register ``rule`` if new; returns its knowledge record.

        A repeated registration keeps the existing record but lets the
        prior promise *rise* (a rule volunteered again after being
        lattice-generated is more promising than either signal alone
        suggested). A newly added rule may be immediately classified by
        lattice propagation when some known generalization is already
        support-insignificant.
        """
        existing = self._rules.get(rule)
        if existing is not None:
            if prior_promise > existing.prior_promise:
                existing.prior_promise = prior_promise
                self._version += 1
                self._push_priority(existing)
            return existing
        knowledge = RuleKnowledge(
            rule=rule,
            origin=origin,
            samples=RuleSamples(rule),
            prior_promise=prior_promise,
        )
        knowledge.seq = len(self._rules)
        self._version += 1
        self._rules[rule] = knowledge
        self._known.add(rule)
        self._unresolved[rule] = knowledge
        self._index.add(rule)
        self.obs.count("kb.rules_added")
        if self.lattice_pruning:
            self._inherit_insignificance(knowledge)
        self._push_priority(knowledge)
        return knowledge

    def _inherit_insignificance(self, knowledge: RuleKnowledge) -> None:
        """Condemn a new rule if a known generalization is support-dead."""
        for other in self.known_generalizations(knowledge.rule):
            if (
                other.is_resolved
                and other.decision is Decision.INSIGNIFICANT
                and self._support_dead(other)
            ):
                self._set_decision(knowledge, Decision.INSIGNIFICANT, inferred=True)
                self.inferred_classifications += 1
                self.obs.count("kb.inferred")
                return

    def _support_dead(self, knowledge: RuleKnowledge) -> bool:
        """True when the rule's *support* is confidently below threshold."""
        summary = self.summary_for(knowledge)
        if summary.n < self.test.min_samples:
            return False
        p_support = self.test.probability_support_exceeds(summary)
        return p_support <= 1.0 - self.test.decision_confidence

    # -- evidence updates ----------------------------------------------------------

    def summary_for(self, knowledge: RuleKnowledge) -> EstimateSummary:
        """The aggregated estimate snapshot of a rule.

        Cached per rule and invalidated by the sample store's version
        (bumped on every answer) and the aggregator's version (bumped
        when external state like trust weights may have moved), so
        reporting and scoring stop recomputing aggregates for untouched
        rules.
        """
        token = (knowledge.samples.version, self.aggregator.version)
        if knowledge._summary is not None and knowledge._summary_token == token:
            self.obs.count("kb.summary_hits")
            return knowledge._summary
        summary = self.aggregator.summarize(knowledge.samples)
        knowledge._summary = summary
        knowledge._summary_token = token
        self.obs.count("kb.summary_misses")
        return summary

    def record_answer(
        self, rule: Rule, member_id: str, stats: RuleStats, origin: RuleOrigin
    ) -> RuleKnowledge:
        """Incorporate one member answer about ``rule`` and re-classify.

        Registers the rule when unknown (with the given origin),
        stores the observation, re-runs the significance assessment,
        and — when the update settles the rule as support-insignificant
        — propagates that downward to known specializations.
        """
        with self.obs.timer("kb.record"):
            knowledge = self.add_rule(rule, origin)
            knowledge.samples.add(member_id, stats)
            self._version += 1
            self._reassess(knowledge)
            self._push_priority(knowledge)
        return knowledge

    def _set_decision(
        self, knowledge: RuleKnowledge, decision: Decision, *, inferred: bool
    ) -> None:
        """Apply a decision and maintain the derived views."""
        previous = knowledge.decision
        knowledge.decision = decision
        knowledge.inferred = inferred
        if decision is previous:
            return
        self._version += 1
        if decision is not Decision.INSIGNIFICANT:
            knowledge.propagated = False
        if decision is Decision.SIGNIFICANT:
            self._newly_significant.append(knowledge.rule)
        if decision.is_final:
            self._unresolved.pop(knowledge.rule, None)
        elif knowledge.rule not in self._unresolved:
            # Direct evidence can reopen a settled rule; it re-enters
            # the unresolved set at its discovery position.
            self._unresolved[knowledge.rule] = knowledge
            self._unresolved_order_dirty = True
            self._push_priority(knowledge)

    def _reassess(self, knowledge: RuleKnowledge) -> None:
        self.obs.count("kb.reassessments")
        summary = self.summary_for(knowledge)
        assessment = self.test.assess(summary)
        knowledge.last_assessment = assessment
        # Direct evidence overrides an inferred decision; an inferred
        # label sticks until direct evidence settles the rule.
        if assessment.decision.is_final:
            self._set_decision(knowledge, assessment.decision, inferred=False)
        elif not knowledge.inferred:
            self._set_decision(knowledge, assessment.decision, inferred=False)
        if (
            self.lattice_pruning
            and knowledge.decision is Decision.INSIGNIFICANT
            and not knowledge.inferred
            and not knowledge.propagated
            and self._support_dead(knowledge)
        ):
            # Gate on "became support-dead and not yet propagated", not
            # on decision *changes*: a rule moving from inferred to
            # directly-evidenced insignificance keeps the same decision
            # yet must still condemn its specializations.
            knowledge.propagated = True
            self._propagate_insignificance(knowledge)

    def purge_member(self, member_id: str) -> int:
        """Release every observation contributed by ``member_id``.

        The quality-control layer calls this when quarantining a member:
        their answers leave the evidence base (reverse-Welford removal,
        no history replay), every touched rule is re-assessed, and a
        rule that was settled on the poisoned evidence reopens — it
        re-enters the unresolved set through the same transition that
        lets direct evidence overturn an inferred decision. Inferred
        condemnations whose source rule reopens are left standing, the
        regular contract: an inferred label sticks until direct
        evidence settles the rule.

        Returns the number of rules that lost an observation.
        """
        purged = 0
        with self.obs.timer("kb.purge"):
            for knowledge in self._rules.values():
                if not knowledge.samples.remove(member_id):
                    continue
                purged += 1
                self._version += 1
                self._reassess(knowledge)
                self._push_priority(knowledge)
        if purged:
            self.obs.count("kb.members_purged")
            self.obs.count("kb.answers_purged", purged)
        return purged

    def reassess_trust_shift(self) -> int:
        """Re-classify every evidenced rule after a trust-weight shift.

        The latent-ability loop calls this when a re-estimation moves
        some member's trust: the aggregator's weights changed under
        every rule at once, so each rule with evidence is re-summarized
        (the version token already invalidates the cached summaries)
        and re-assessed. A rule settled on answers whose authors just
        lost trust reopens through the same transition that lets direct
        evidence overturn a decision; inferred condemnations stick, per
        the regular contract.

        Returns the number of rules whose decision changed.
        """
        changed = 0
        with self.obs.timer("kb.reweight"):
            for knowledge in self._rules.values():
                if knowledge.samples.n == 0:
                    continue
                before = knowledge.decision
                self._reassess(knowledge)
                self._push_priority(knowledge)
                if knowledge.decision is not before:
                    changed += 1
        if changed:
            self.obs.count("kb.trust_reassessed", changed)
        return changed

    def _propagate_insignificance(self, source: RuleKnowledge) -> None:
        """Condemn known, unresolved specializations of a support-dead rule."""
        with self.obs.timer("kb.propagate"):
            for other in self.known_specializations(source.rule):
                if other.is_resolved:
                    continue
                self._set_decision(other, Decision.INSIGNIFICANT, inferred=True)
                self.inferred_classifications += 1
                self.obs.count("kb.inferred")

    # -- reporting ---------------------------------------------------------------------

    def significant_rules(self, mode: str = "point") -> dict[Rule, RuleStats]:
        """The rules the system would report as significant right now.

        Parameters
        ----------
        mode:
            ``"decided"`` — only rules whose decision is settled
            SIGNIFICANT (the conservative, end-of-session answer);
            ``"point"`` — additionally include undecided rules whose
            current point estimate clears both thresholds (the paper's
            anytime answer, used for quality-vs-questions curves).
            Point inclusion still requires the test's minimum sample
            count: a rule one enthusiast mentioned once is a candidate,
            not an answer.
        """
        if mode not in ("decided", "point"):
            raise ValueError(f"unknown report mode: {mode!r}")
        reported: dict[Rule, RuleStats] = {}
        for knowledge in self._rules.values():
            if knowledge.decision is Decision.SIGNIFICANT:
                include = True
            elif mode == "point" and knowledge.decision is Decision.UNDECIDED:
                summary = self.summary_for(knowledge)
                include = (
                    summary.n >= self.test.min_samples
                    and self.test.point_decision(summary) is Decision.SIGNIFICANT
                )
            else:
                include = False
            if include:
                mean = self.summary_for(knowledge).mean
                support = float(min(1.0, max(0.0, mean[0])))
                confidence = float(min(1.0, max(0.0, mean[1])))
                reported[knowledge.rule] = RuleStats(
                    support, max(support, confidence)
                )
        return reported
