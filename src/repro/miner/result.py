"""Mining session results and the per-question event log.

A finished (or interrupted) session yields a :class:`MiningResult`: the
reported significant rules (with estimated stats), the semantically
concise maximal subset, the interaction cost, and the complete
question-by-question log for auditing and evaluation replay.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.measures import RuleStats
from repro.core.order import maximal_rules
from repro.core.rule import Rule
from repro.obs import ObsSnapshot

if TYPE_CHECKING:  # the dispatch package imports the miner, never the reverse
    from repro.dispatch.dispatcher import DispatchStats


class QuestionKind(enum.Enum):
    """What kind of question an event records."""

    CLOSED = "closed"
    OPEN = "open"


@dataclass(frozen=True, slots=True)
class QuestionEvent:
    """One question/answer exchange in the session log.

    ``rule`` / ``stats`` are ``None`` for open questions that came back
    empty.
    """

    index: int
    kind: QuestionKind
    member_id: str
    rule: Rule | None
    stats: RuleStats | None

    @property
    def is_empty_open(self) -> bool:
        """True for a dry open answer."""
        return self.kind is QuestionKind.OPEN and self.rule is None


@dataclass(slots=True)
class MiningResult:
    """The outcome of a mining session.

    Attributes
    ----------
    significant:
        Reported significant rules with their estimated stats.
    questions_asked:
        Total questions spent (both kinds, including dry opens).
    closed_questions / open_questions:
        The split by kind.
    rules_discovered:
        How many distinct rules entered the knowledge base.
    inferred_classifications:
        Rules settled for free by lattice propagation.
    log:
        The full event log, in question order.
    obs:
        Snapshot of the session's instrumentation (hot-path counters
        and timers), when the miner collected one.
    dispatch:
        Counters of the asynchronous dispatch engine (in-flight high
        water, timeouts, retries, stale discards, makespan), attached
        by :class:`~repro.dispatch.dispatcher.Dispatcher`; ``None``
        for plain synchronous sessions.
    """

    significant: dict[Rule, RuleStats]
    questions_asked: int
    closed_questions: int
    open_questions: int
    rules_discovered: int
    inferred_classifications: int
    log: list[QuestionEvent] = field(default_factory=list)
    obs: ObsSnapshot | None = None
    dispatch: "DispatchStats | None" = None

    @property
    def maximal_significant(self) -> dict[Rule, RuleStats]:
        """The concise answer: only the most specific significant rules.

        Every omitted significant rule is a generalization of a kept
        one, hence implied by support antitonicity — the same
        redundancy-elimination the papers apply to their output.
        """
        kept = maximal_rules(list(self.significant))
        return {rule: self.significant[rule] for rule in kept}

    def top_k(self, k: int, by: str = "support") -> list[tuple[Rule, RuleStats]]:
        """The ``k`` strongest reported rules.

        ``by`` ranks by ``"support"``, ``"confidence"`` or
        ``"product"`` (support × confidence); ties break toward shorter
        rules then deterministically. The paper lists top-k retrieval
        as the natural output mode when users cannot absorb the full
        significant set.
        """
        keys = {
            "support": lambda stats: stats.support,
            "confidence": lambda stats: stats.confidence,
            "product": lambda stats: stats.support * stats.confidence,
        }
        if by not in keys:
            raise ValueError(f"unknown ranking {by!r}; choose from {sorted(keys)}")
        if k < 0:
            raise ValueError("k must be non-negative")
        ranked = sorted(
            self.significant.items(),
            key=lambda kv: (-keys[by](kv[1]), len(kv[0].body), kv[0].sort_key()),
        )
        return ranked[:k]

    def fingerprint(self) -> str:
        """A hex digest of everything deterministic about the session.

        Covers the question-by-question event log, the reported
        significant set (with full-precision stats) and the headline
        counts; excludes wall-clock artifacts (instrumentation timers,
        dispatch makespans). Two runs with the same seeds — including a
        run killed mid-session and resumed from a checkpoint — must
        produce equal fingerprints; this is the identity the
        kill-and-resume suite and the CI smoke job assert on.
        """
        doc = {
            "questions": self.questions_asked,
            "closed": self.closed_questions,
            "open": self.open_questions,
            "rules": self.rules_discovered,
            "inferred": self.inferred_classifications,
            "significant": sorted(
                (str(rule), stats.support, stats.confidence)
                for rule, stats in self.significant.items()
            ),
            "log": [
                (
                    event.index,
                    event.kind.value,
                    event.member_id,
                    None if event.rule is None else str(event.rule),
                    None
                    if event.stats is None
                    else (event.stats.support, event.stats.confidence),
                )
                for event in self.log
            ],
        }
        encoded = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """A short human-readable report of the session."""
        lines = [
            f"questions asked : {self.questions_asked} "
            f"({self.closed_questions} closed, {self.open_questions} open)",
            f"rules discovered: {self.rules_discovered} "
            f"({self.inferred_classifications} classified by inference)",
            f"significant     : {len(self.significant)} "
            f"({len(self.maximal_significant)} maximal)",
        ]
        for rule in sorted(self.maximal_significant, key=Rule.sort_key):
            stats = self.significant[rule]
            lines.append(f"  {rule}  {stats}")
        if self.dispatch is not None:
            lines.extend(self.dispatch.summary_lines())
        else:
            lines.append("dispatch: synchronous session (no dispatcher attached)")
        if self.obs is not None and self.obs.counters.get("storage.checkpoints"):
            counters = self.obs.counters
            line = (
                f"storage: {counters['storage.checkpoints']} checkpoints, "
                f"{counters.get('storage.answers_logged', 0)} answers logged"
            )
            bytes_on_disk = self.obs.gauges.get("storage.bytes_on_disk")
            if bytes_on_disk is not None:
                line += f", {int(bytes_on_disk.value)} bytes on disk"
            lines.append(line)
            checkpoint = self.obs.timers.get("storage.checkpoint")
            if checkpoint is not None:
                timing = (
                    f"storage: checkpoint {checkpoint.total_seconds:.3f}s "
                    f"({checkpoint.calls} calls)"
                )
                restore = self.obs.timers.get("storage.restore")
                if restore is not None and restore.calls:
                    timing += (
                        f", restore {restore.total_seconds:.3f}s "
                        f"({restore.calls} calls)"
                    )
                lines.append(timing)
        if self.obs is not None:
            counters = self.obs.counters
            degraded = {
                "append failures": counters.get("storage.append_failures", 0),
                "checkpoint failures": counters.get(
                    "storage.checkpoint_failures", 0
                ),
                "repaired checkpoints": counters.get("storage.repaired", 0),
            }
            if any(degraded.values()):
                lines.append(
                    "storage degraded: "
                    + ", ".join(f"{n} {what}" for what, n in degraded.items() if n)
                )
            serve = {
                "retries": counters.get("serve.retries", 0),
                "dedup hits": counters.get("serve.dedup_hits", 0),
                "backpressure rejections": counters.get(
                    "serve.backpressure_rejections", 0
                ),
            }
            if any(serve.values()):
                lines.append(
                    "serve: "
                    + ", ".join(f"{n} {what}" for what, n in serve.items() if n)
                )
            chaos = {
                name.removeprefix("chaos."): n
                for name, n in sorted(counters.items())
                if name.startswith("chaos.") and n
            }
            if chaos:
                lines.append(
                    "chaos faults injected: "
                    + ", ".join(f"{n} {what}" for what, n in chaos.items())
                )
        if self.obs is not None and (self.obs.counters or self.obs.timers):
            lines.append("session instrumentation:")
            lines.append(self.obs.format())
        return "\n".join(lines)
