"""Answer caching across mining tasks.

Crowd answers are expensive and — crucially — *threshold-independent*:
a member's report of how often they bike in the park is the same fact
whether the query asks for habits above 10 % or above 30 % frequency.
The paper exploits this: answers collected for one task are cached and
re-used when the same (or an overlapping) query is evaluated at a
different threshold, so the new task only asks the questions the cache
cannot answer.

Three pieces:

- :class:`AnswerCache` — the persistent record of everything any
  member has ever answered;
- :class:`CachingCrowd` — a transparent wrapper around a crowd that
  serves closed questions from the cache when possible (no member
  effort, no question counted against the session) and records every
  fresh answer;
- :func:`reevaluate` — the pure-replay path: classify rules under new
  thresholds using cached evidence only, without any crowd contact.
"""

from __future__ import annotations

from collections.abc import Collection
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.crowd.crowd import SimulatedCrowd
from repro.crowd.questions import ClosedAnswer, ClosedQuestion, InFlightAnswer, OpenAnswer
from repro.estimation.aggregate import Aggregator
from repro.estimation.significance import SignificanceTest, Thresholds
from repro.miner.state import MiningState, RuleOrigin

if TYPE_CHECKING:  # avoids a circular import: repro.dispatch builds on the miner
    from repro.dispatch.latency import LatencyModel


@dataclass(slots=True)
class AnswerCache:
    """Everything the crowd has ever told us, keyed for reuse.

    ``closed`` maps ``(member_id, rule)`` to the member's reported
    stats (latest revision wins); ``volunteered`` records which rules
    each member has already volunteered, so re-runs can exclude them
    from open questions and seed their candidate pools.
    """

    closed: dict[tuple[str, Rule], RuleStats] = field(default_factory=dict)
    volunteered: dict[str, set[Rule]] = field(default_factory=dict)

    def record_closed(self, member_id: str, rule: Rule, stats: RuleStats) -> None:
        """Store (or revise) a member's closed answer."""
        self.closed[(member_id, rule)] = stats

    def record_open(self, member_id: str, rule: Rule, stats: RuleStats) -> None:
        """Store a volunteered rule (numeric part cached as a closed answer)."""
        self.volunteered.setdefault(member_id, set()).add(rule)
        self.record_closed(member_id, rule, stats)

    def lookup(self, member_id: str, rule: Rule) -> RuleStats | None:
        """The member's cached answer about ``rule``, if any."""
        return self.closed.get((member_id, rule))

    def known_rules(self) -> set[Rule]:
        """Every rule any answer mentions — candidate seeds for re-runs."""
        rules = {rule for _, rule in self.closed}
        for volunteered in self.volunteered.values():
            rules |= volunteered
        return rules

    def answers_for(self, rule: Rule) -> dict[str, RuleStats]:
        """All members' cached answers about one rule."""
        return {
            member_id: stats
            for (member_id, r), stats in self.closed.items()
            if r == rule
        }

    def __len__(self) -> int:
        return len(self.closed)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters of a caching crowd."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of closed questions served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingCrowd:
    """A crowd wrapper that answers from the cache when it can.

    Presents the same protocol as
    :class:`~repro.crowd.crowd.SimulatedCrowd` (length, scheduling,
    ``ask_closed``/``ask_open``), so a
    :class:`~repro.miner.crowdminer.CrowdMiner` can run against it
    unchanged. Cache hits cost the member nothing and are *not*
    recorded in the inner crowd's statistics — they are free answers,
    which is the entire point.
    """

    def __init__(self, inner: SimulatedCrowd, cache: AnswerCache) -> None:
        self.inner = inner
        self.cache = cache
        self.cache_stats = CacheStats()

    # -- protocol passthrough ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def member_ids(self) -> list[str]:
        return self.inner.member_ids

    @property
    def stats(self):
        return self.inner.stats

    def available_members(self) -> list[str]:
        return self.inner.available_members()

    def available_count(self) -> int:
        return self.inner.available_count()

    def next_member(self, exclude: Collection[str] = ()) -> str | None:
        return self.inner.next_member(exclude)

    # -- cached protocol -----------------------------------------------------------

    def ask_closed(self, member_id: str, rule: Rule) -> ClosedAnswer:
        cached = self.cache.lookup(member_id, rule)
        if cached is not None:
            self.cache_stats.hits += 1
            return ClosedAnswer(member_id, ClosedQuestion(rule), cached)
        self.cache_stats.misses += 1
        answer = self.inner.ask_closed(member_id, rule)
        self.cache.record_closed(member_id, rule, answer.stats)
        return answer

    def ask_open(
        self,
        member_id: str,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> OpenAnswer:
        # Rules the member already volunteered in past sessions count
        # as known — they would be redundant answers.
        combined = set(exclude or set())
        combined |= self.cache.volunteered.get(member_id, set())
        answer = self.inner.ask_open(member_id, exclude=combined, context=context)
        if not answer.is_empty:
            assert answer.rule is not None and answer.stats is not None
            self.cache.record_open(member_id, answer.rule, answer.stats)
        return answer

    # -- cached asynchronous protocol ----------------------------------------------

    def ask_closed_async(
        self,
        member_id: str,
        rule: Rule,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
    ) -> InFlightAnswer:
        """Async closed question; cache hits land instantly.

        A hit costs the member nothing, so it also costs no simulated
        time — and it consumes no latency randomness, keeping replays
        against warmer caches deterministic per miss sequence.
        """
        cached = self.cache.lookup(member_id, rule)
        if cached is not None:
            self.cache_stats.hits += 1
            answer = ClosedAnswer(member_id, ClosedQuestion(rule), cached)
            return InFlightAnswer(answer=answer, issued_at=now, arrives_at=now)
        self.cache_stats.misses += 1
        in_flight = self.inner.ask_closed_async(
            member_id, rule, latency=latency, rng=rng, now=now
        )
        assert isinstance(in_flight.answer, ClosedAnswer)
        self.cache.record_closed(member_id, rule, in_flight.answer.stats)
        return in_flight

    def ask_open_async(
        self,
        member_id: str,
        *,
        latency: "LatencyModel",
        rng: np.random.Generator,
        now: float = 0.0,
        exclude: set[Rule] | None = None,
        context: Itemset | None = None,
    ) -> InFlightAnswer:
        """Async open question (never served from cache, see ``ask_open``)."""
        combined = set(exclude or set())
        combined |= self.cache.volunteered.get(member_id, set())
        in_flight = self.inner.ask_open_async(
            member_id, latency=latency, rng=rng, now=now,
            exclude=combined, context=context,
        )
        answer = in_flight.answer
        assert isinstance(answer, OpenAnswer)
        if not answer.is_empty:
            assert answer.rule is not None and answer.stats is not None
            self.cache.record_open(member_id, answer.rule, answer.stats)
        return in_flight


def reevaluate(
    cache: AnswerCache,
    thresholds: Thresholds,
    decision_confidence: float = 0.9,
    min_samples: int = 5,
    variance_floor: float = 0.15**2,
    aggregator: Aggregator | None = None,
    mode: str = "point",
    exclude_volunteer_bias: bool = False,
) -> dict[Rule, RuleStats]:
    """Classify all cached rules under new thresholds — zero questions.

    Replays every cached answer into a fresh
    :class:`~repro.miner.state.MiningState` configured with the new
    thresholds and returns the rules it would report as significant.
    This is the paper's "evaluate the same query at a higher threshold
    from the cache" operation; because significance is monotone in the
    thresholds, tightening thresholds never requires fresh questions,
    while loosening may leave some rules undecided (ask the crowd for
    those via a new :class:`CachingCrowd` session).

    ``exclude_volunteer_bias`` skips answers whose (member, rule) pair
    came from an *open* answer, mirroring the live miner's default of
    not counting volunteered stats as evidence. Off by default because
    the cache cannot distinguish a volunteer who later *also* answered
    the same rule as a closed question (the closed answer overwrote the
    entry), so exclusion can be slightly too aggressive.
    """
    test = SignificanceTest(
        thresholds=thresholds,
        decision_confidence=decision_confidence,
        min_samples=min_samples,
        variance_floor=variance_floor,
    )
    state = MiningState(test=test, aggregator=aggregator)
    for (member_id, rule), stats in cache.closed.items():
        if exclude_volunteer_bias and rule in cache.volunteered.get(member_id, ()):
            continue
        state.record_answer(rule, member_id, stats, RuleOrigin.SEED)
    return state.significant_rules(mode=mode)
