"""Early-termination criteria for mining sessions.

The budget is the hard stop; real deployments also want soft stops:
"I only need ten good recommendations" (the papers' top-k retrieval,
listed as the natural extension), "stop when the statistics say nothing
more is settleable", or "stop when discovery has stalled". A stopping
rule is a callable over the running miner, checked between steps by
:meth:`CrowdMiner.run`; this module provides the useful ones and the
combinators.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.miner.crowdminer import CrowdMiner

#: A stopping rule: True → end the session now.
StoppingRule = Callable[[CrowdMiner], bool]


def found_k_significant(k: int, mode: str = "decided") -> StoppingRule:
    """Stop once ``k`` rules are reported significant.

    With ``mode="decided"`` (default) only confidently settled rules
    count — the right reading of "give me the top ten" — while
    ``"point"`` counts the anytime report.
    """
    if k <= 0:
        raise ValueError("k must be positive")

    def rule(miner: CrowdMiner) -> bool:
        return len(miner.state.significant_rules(mode=mode)) >= k

    rule.__name__ = f"found_{k}_significant"
    return rule


def nothing_settleable(check_every: int = 50) -> StoppingRule:
    """Stop when the budget forecast says no rule can still be settled.

    Runs the sample-size forecast (see :mod:`repro.miner.budgeting`)
    every ``check_every`` questions — it is O(unresolved rules) — and
    stops when every unresolved rule is practically undecidable with
    the current crowd.
    """
    if check_every <= 0:
        raise ValueError("check_every must be positive")

    def rule(miner: CrowdMiner) -> bool:
        if miner.questions_asked == 0 or miner.questions_asked % check_every:
            return False
        from repro.miner.budgeting import forecast_budget

        forecast = forecast_budget(miner.state, crowd_size=len(miner.crowd))
        if not forecast.plans:
            return False  # nothing unresolved: is_done will handle it
        return all(plan.practically_undecidable for plan in forecast.plans)

    rule.__name__ = "nothing_settleable"
    return rule


def discovery_stalled(window: int = 100, min_new_rules: int = 1) -> StoppingRule:
    """Stop when fewer than ``min_new_rules`` appeared in the last window.

    A coarse "the well is dry" heuristic for discovery-dominated
    sessions (e.g. pure-open surveying).
    """
    if window <= 0 or min_new_rules <= 0:
        raise ValueError("window and min_new_rules must be positive")
    checkpoints: dict[int, int] = {}

    def rule(miner: CrowdMiner) -> bool:
        asked = miner.questions_asked
        checkpoints[asked] = len(miner.state)
        baseline = checkpoints.get(asked - window)
        if baseline is None:
            return False
        return len(miner.state) - baseline < min_new_rules

    rule.__name__ = "discovery_stalled"
    return rule


def any_of(*rules: StoppingRule) -> StoppingRule:
    """Stop when any constituent rule fires."""
    if not rules:
        raise ValueError("any_of needs at least one rule")

    def combined(miner: CrowdMiner) -> bool:
        return any(rule(miner) for rule in rules)

    combined.__name__ = "any_of(" + ", ".join(r.__name__ for r in rules) + ")"
    return combined


def all_of(*rules: StoppingRule) -> StoppingRule:
    """Stop only when every constituent rule fires."""
    if not rules:
        raise ValueError("all_of needs at least one rule")

    def combined(miner: CrowdMiner) -> bool:
        return all(rule(miner) for rule in rules)

    combined.__name__ = "all_of(" + ", ".join(r.__name__ for r in rules) + ")"
    return combined
