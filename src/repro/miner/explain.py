"""Explanations: why did the system classify a rule the way it did?

Crowd-sourced answers feed statistical machinery feed lattice
inference; when a user questions an output ("why is 'ginger tea for
sore throats' not in my results?"), the honest answer traces that
chain. :func:`explain_rule` renders it: the evidence collected, the
estimate with error bars, the test's verdict and margin, and — for
inferred classifications — which ancestor's support condemned it.

The output is plain text by design: it is what a front-end would show
under a "why?" button, and what the examples print.
"""

from __future__ import annotations

from repro.core.rule import Rule
from repro.errors import EstimationError
from repro.estimation.intervals import summary_intervals
from repro.estimation.significance import Decision
from repro.miner.state import MiningState, RuleOrigin

_ORIGIN_TEXT = {
    RuleOrigin.SEED: "seeded by the query",
    RuleOrigin.OPEN_ANSWER: "volunteered by a crowd member",
    RuleOrigin.LATTICE: "generated as a lattice neighbour of a confirmed rule",
}


def explain_rule(state: MiningState, rule: Rule) -> str:
    """A human-readable account of one rule's current classification.

    Raises ``KeyError`` when the rule is unknown to the session — which
    is itself the explanation a caller should surface ("never came up:
    no member volunteered it and no confirmed rule neighbours it").
    """
    knowledge = state.knowledge(rule)
    summary = state.summary_for(knowledge)
    test = state.test
    lines = [f"rule: {rule}"]
    lines.append(f"origin: {_ORIGIN_TEXT[knowledge.origin]}")
    lines.append(
        f"evidence: {summary.n} member answer(s)"
        + ("" if summary.n else " — nothing counted yet")
    )

    if summary.n > 0:
        try:
            intervals = summary_intervals(summary, level=0.9)
        except EstimationError:  # pragma: no cover - n>0 guards this
            intervals = None
        lines.append(
            f"estimate: support {summary.mean[0]:.3f}, "
            f"confidence {summary.mean[1]:.3f}"
        )
        if intervals is not None:
            lines.append(
                f"90% intervals: support {intervals.support}, "
                f"confidence {intervals.confidence}"
            )
        lines.append(
            f"thresholds: support ≥ {test.thresholds.support}, "
            f"confidence ≥ {test.thresholds.confidence}"
        )

    decision = knowledge.decision
    if knowledge.inferred and decision is Decision.INSIGNIFICANT:
        culprit = _condemning_ancestor(state, rule)
        if culprit is not None:
            culprit_summary = state.summary_for(state.knowledge(culprit))
            lines.append(
                "verdict: insignificant, inferred without questions — its "
                f"generalization {culprit} has support "
                f"{culprit_summary.mean[0]:.3f}, confidently below the "
                f"threshold, and support can only shrink as rules grow"
            )
            return "\n".join(lines)
        lines.append("verdict: insignificant (inferred from the rule lattice)")
        return "\n".join(lines)

    p = test.probability_significant(summary)
    if decision is Decision.SIGNIFICANT:
        lines.append(
            f"verdict: significant — P(truly above both thresholds) = {p:.3f} "
            f"≥ {test.decision_confidence}"
        )
    elif decision is Decision.INSIGNIFICANT:
        lines.append(
            f"verdict: insignificant — P(truly above both thresholds) = {p:.3f} "
            f"≤ {1 - test.decision_confidence:.3f}"
        )
    else:
        reason = (
            f"only {summary.n} of the required {test.min_samples} answers"
            if summary.n < test.min_samples
            else f"P(significant) = {p:.3f} is still in the undecided band "
            f"({1 - test.decision_confidence:.2f}, {test.decision_confidence})"
        )
        lines.append(f"verdict: undecided — {reason}")
    return "\n".join(lines)


def _condemning_ancestor(state: MiningState, rule: Rule) -> Rule | None:
    """A resolved-insignificant generalization that support-condemns ``rule``."""
    for other in state.rules():
        if other.rule == rule or not other.is_resolved:
            continue
        if other.decision is not Decision.INSIGNIFICANT or other.inferred:
            continue
        if other.rule.generalizes(rule):
            return other.rule
    return None


def explain_report(state: MiningState, rules=None, mode: str = "point") -> str:
    """Explanations for several rules (default: the reported significant set)."""
    if rules is None:
        rules = sorted(state.significant_rules(mode=mode), key=Rule.sort_key)
    blocks = [explain_rule(state, rule) for rule in rules]
    return "\n\n".join(blocks)
