"""Question-budget planning.

Operators of a crowd-mining deployment need to answer two questions
before (and during) a session: *how many questions will this take*, and
*is it still worth continuing*? Both reduce to sample-size arithmetic
over the significance test's normal approximation:

- a rule whose mean estimate sits at distance ``d`` from the nearer
  threshold, with per-observation standard deviation ``σ``, needs about
  ``(z·σ / d)²`` member answers before the test can settle it at
  one-sided confidence ``z``;
- summing that over the unresolved rules (less the answers already
  collected) gives the remaining budget estimate;
- rules whose required sample size exceeds the crowd's capacity are
  *practically undecidable* — flagging them is the honest alternative
  to spending a full crowd pass learning nothing.

Estimates are exactly that — the true answer distribution is unknown —
but they are the same arithmetic the test itself will apply, so they
are self-consistent: a plan of 0 means the next re-assessment settles
the rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from repro.core.rule import Rule
from repro.errors import EstimationError
from repro.miner.state import MiningState


@dataclass(frozen=True, slots=True)
class RulePlan:
    """Budget forecast for one unresolved rule."""

    rule: Rule
    collected: int
    required: int  # total samples the test is expected to need
    practically_undecidable: bool

    @property
    def remaining(self) -> int:
        """Further answers needed (0 when already sufficient)."""
        return max(0, self.required - self.collected)


@dataclass(frozen=True, slots=True)
class BudgetForecast:
    """Aggregate forecast over all unresolved rules."""

    plans: tuple[RulePlan, ...]
    crowd_size: int

    @property
    def remaining_questions(self) -> int:
        """Estimated questions to settle every *decidable* rule."""
        return sum(p.remaining for p in self.plans if not p.practically_undecidable)

    @property
    def undecidable_rules(self) -> tuple[Rule, ...]:
        """Rules the current crowd cannot settle at this confidence."""
        return tuple(p.rule for p in self.plans if p.practically_undecidable)

    def summary(self) -> str:
        """A compact printable forecast."""
        return (
            f"{len(self.plans)} unresolved rules; "
            f"≈{self.remaining_questions} more questions to settle the "
            f"decidable ones; {len(self.undecidable_rules)} practically "
            f"undecidable with {self.crowd_size} members"
        )


def required_samples(
    distance: float,
    per_observation_std: float,
    decision_confidence: float,
) -> int:
    """Samples needed to settle a mean at ``distance`` from a threshold.

    Classic one-sided sample-size formula ``n ≥ (z·σ/d)²``. A zero
    distance is never settleable; the caller decides what "too many"
    means.
    """
    if distance < 0 or per_observation_std < 0:
        raise EstimationError("distance and std must be non-negative")
    if not 0.5 < decision_confidence < 1.0:
        raise EstimationError("decision_confidence must be in (0.5, 1)")
    if distance == 0.0:
        return int(1e9)  # effectively infinite
    if per_observation_std == 0.0:
        return 1
    z = float(norm.ppf(decision_confidence))
    return max(1, math.ceil((z * per_observation_std / distance) ** 2))


def plan_rule(state: MiningState, rule: Rule, crowd_size: int) -> RulePlan:
    """Forecast the budget for one rule from its current evidence.

    Uses the rule's current mean estimate and per-observation spread
    (sample std floored by the test's variance floor; the prior std
    before any evidence). The binding distance is the smaller of the
    support and confidence margins when the point estimate is above
    both thresholds (both must stay above), and the larger-margin
    failing component when it is below (either suffices to condemn).
    """
    knowledge = state.knowledge(rule)
    summary = state.summary_for(knowledge)
    test = state.test
    n = summary.n
    if n == 0:
        # No evidence yet: assume the eventual margin is about one
        # prior standard deviation — the plan then floors at
        # ``min_samples``, which is the honest prior guess.
        sigma = test.prior_std
        distance = test.prior_std
    else:
        per_obs_var = max(
            test.variance_floor,
            float(summary.mean_cov[0, 0]) * max(n, 1),
            float(summary.mean_cov[1, 1]) * max(n, 1),
        )
        sigma = math.sqrt(per_obs_var)
        support_margin = float(summary.mean[0]) - test.thresholds.support
        confidence_margin = float(summary.mean[1]) - test.thresholds.confidence
        if support_margin >= 0 and confidence_margin >= 0:
            distance = min(support_margin, confidence_margin)
        else:
            distance = max(
                -support_margin if support_margin < 0 else 0.0,
                -confidence_margin if confidence_margin < 0 else 0.0,
            )
    required = max(
        required_samples(distance, sigma, test.decision_confidence),
        test.min_samples,
    )
    return RulePlan(
        rule=rule,
        collected=n,
        required=required,
        practically_undecidable=required > crowd_size,
    )


def forecast_budget(state: MiningState, crowd_size: int) -> BudgetForecast:
    """Forecast the remaining budget for every unresolved rule."""
    if crowd_size <= 0:
        raise EstimationError("crowd_size must be positive")
    plans = tuple(
        plan_rule(state, knowledge.rule, crowd_size)
        for knowledge in state.unresolved()
    )
    return BudgetForecast(plans=plans, crowd_size=crowd_size)
