"""The crowd miner: the paper's primary contribution.

Adaptive, error-driven question selection over a crowd of virtual
personal databases, with open-question discovery, three-way
significance classification, and lattice-based inference.
"""

from repro.miner.analysis import MemberLoad, SessionAnalysis, analyze_log, analyze_result
from repro.miner.budgeting import BudgetForecast, RulePlan, forecast_budget, plan_rule, required_samples
from repro.miner.crowdminer import (
    CrowdMiner,
    CrowdMinerConfig,
    QuestionProposal,
    mine_crowd,
)
from repro.miner.explain import explain_report, explain_rule
from repro.miner.open_policy import (
    AdaptiveOpenPolicy,
    FixedRatioPolicy,
    OpenClosedPolicy,
    make_open_policy,
)
from repro.miner.oracle import GroundTruth, compute_ground_truth
from repro.miner.result import MiningResult, QuestionEvent, QuestionKind
from repro.miner.session import AnswerCache, CacheStats, CachingCrowd, reevaluate
from repro.miner.state import MiningState, RuleIndex, RuleKnowledge, RuleOrigin
from repro.miner.termination import (
    StoppingRule,
    all_of,
    any_of,
    discovery_stalled,
    found_k_significant,
    nothing_settleable,
)
from repro.miner.strategy import (
    STRATEGIES,
    HorizontalStrategy,
    MaxUncertaintyStrategy,
    QuestionStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    make_strategy,
)

__all__ = [
    "AdaptiveOpenPolicy",
    "AnswerCache",
    "BudgetForecast",
    "CacheStats",
    "CachingCrowd",
    "CrowdMiner",
    "CrowdMinerConfig",
    "FixedRatioPolicy",
    "GroundTruth",
    "HorizontalStrategy",
    "MaxUncertaintyStrategy",
    "MemberLoad",
    "SessionAnalysis",
    "StoppingRule",
    "MiningResult",
    "MiningState",
    "OpenClosedPolicy",
    "QuestionEvent",
    "QuestionKind",
    "QuestionProposal",
    "QuestionStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "RuleIndex",
    "RuleKnowledge",
    "RulePlan",
    "RuleOrigin",
    "all_of",
    "analyze_log",
    "any_of",
    "discovery_stalled",
    "found_k_significant",
    "nothing_settleable",
    "explain_report",
    "explain_rule",
    "forecast_budget",
    "plan_rule",
    "required_samples",
    "analyze_result",
    "reevaluate",
    "STRATEGIES",
    "compute_ground_truth",
    "make_open_policy",
    "make_strategy",
    "mine_crowd",
]
