"""Question-selection strategies.

Given the current knowledge base and the member about to be served, a
strategy picks which rule to ask a *closed* question about (the
open/closed choice itself is the mix policy's job, see
:mod:`repro.miner.open_policy`).

The paper's core algorithmic claim is that *adaptive, error-driven*
selection (:class:`MaxUncertaintyStrategy` — ask about the rule whose
classification is currently most likely to be wrong) beats non-adaptive
baselines (:class:`RandomStrategy`, :class:`RoundRobinStrategy`) by a
wide margin in questions-to-quality. All three share the same
eligibility filter so the comparison isolates the *ordering* decision:

- resolved rules are never asked again (their answer is already known
  with sufficient confidence — re-asking wastes the member's patience);
- a member is never asked a rule they already answered (a second answer
  from the same member adds no independent evidence under the
  members-as-samples model).
"""

from __future__ import annotations

import numpy as np

from repro.core.rule import Rule
from repro.estimation.significance import Decision
from repro.miner.state import MiningState, RuleKnowledge


class QuestionStrategy:
    """Base class for closed-question selection."""

    def eligible(self, state: MiningState, member_id: str) -> list[RuleKnowledge]:
        """Unresolved rules this member can still usefully answer."""
        return [
            knowledge
            for knowledge in state.unresolved()
            if not knowledge.samples.has_answer_from(member_id)
        ]

    def select(
        self, state: MiningState, member_id: str, rng: np.random.Generator
    ) -> Rule | None:
        """The rule to ask ``member_id`` about, or ``None`` when nothing helps."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Short name used in experiment reports."""
        return type(self).__name__.removesuffix("Strategy").lower()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RandomStrategy(QuestionStrategy):
    """Uniformly random choice among eligible rules (the naive baseline)."""

    def select(
        self, state: MiningState, member_id: str, rng: np.random.Generator
    ) -> Rule | None:
        eligible = self.eligible(state, member_id)
        if not eligible:
            return None
        return eligible[int(rng.integers(len(eligible)))].rule


class RoundRobinStrategy(QuestionStrategy):
    """Fair cycling through eligible rules in discovery order.

    Non-adaptive but systematic: every unresolved rule accumulates
    evidence at the same rate. This is the "spread the budget evenly"
    baseline, the strongest non-adaptive contender.
    """

    def select(
        self, state: MiningState, member_id: str, rng: np.random.Generator
    ) -> Rule | None:
        eligible = self.eligible(state, member_id)
        if not eligible:
            return None
        # Fewest samples first = evens out evidence across rules;
        # discovery order breaks ties deterministically.
        return min(eligible, key=lambda k: k.samples.n).rule


class MaxUncertaintyStrategy(QuestionStrategy):
    """The paper's adaptive strategy: ask where a question helps most.

    Two regimes, reflecting where a rule stands on its way to a
    decision:

    - **verification** (``n < min_samples``): the rule cannot be
      settled yet no matter what the evidence says, so the question's
      value is proportional to the rule's *promise* — the evidence's
      probability of significance blended with the rule's prior
      promise (one pseudo-sample's worth), so a single unlucky zero
      answer demotes a freshly volunteered rule rather than burying it
      forever under the stream of new candidates. Promising rules get
      confirmed across more members first; rules whose early answers
      look hopeless drift to the back of the queue.
    - **settling** (``n ≥ min_samples``, still undecided): the value
      is the rule's *uncertainty* — the probability of misclassifying
      it if forced to decide now — discounted by how much one more
      sample can still move the estimate. The mean shifts by at most
      ``O(1/n)`` per answer, so the score is ``uncertainty ·
      min_samples / n``: boundary rules receive extra evidence while it
      can still change the verdict, but a rule that stays on the
      boundary after many samples stops hoarding budget (it *is*
      borderline — more answers will not make it less so), and the
      stream of fresh candidates behind it gets verified instead.

    Both regimes share one scale (promise is ≥ discounted uncertainty
    at equal ``p``), so a single ``max`` interleaves them correctly:
    confirming a promising discovery beats poking at a coin-flip
    boundary, which beats chasing rules that are probably noise. Ties
    break toward the rule *closest to resolution* (largest ``n``),
    concentrating budget until something actually gets decided.
    """

    def select(
        self, state: MiningState, member_id: str, rng: np.random.Generator
    ) -> Rule | None:
        # The scoring formula lives in ``MiningState.question_value``;
        # the state maintains a priority view over it, so selection is
        # a few heap pops instead of a scan of every unresolved rule.
        knowledge = state.best_candidate(member_id)
        return None if knowledge is None else knowledge.rule


class HorizontalStrategy(QuestionStrategy):
    """The levelwise (Apriori-inspired) baseline of the papers.

    Asks about a rule only when every *known generalization* of it is
    already decided significant — the classic bottom-up, level-by-level
    sweep of the lattice, adapted to rules. Within the unblocked
    frontier it proceeds breadth-first (smallest bodies, fewest samples
    first). The papers use exactly this as the "horizontal" baseline
    their adaptive ("vertical") algorithm is compared against: it is
    systematic and sound, but it cannot race down a promising branch,
    so it reaches the specific, most informative rules much later.
    """

    def _blocked(self, state: MiningState, knowledge: RuleKnowledge) -> bool:
        # The generalization index narrows the scan to candidate rules
        # sharing items with this one, so the frontier computation is
        # no longer quadratic in the knowledge-base size.
        for other in state.known_generalizations(knowledge.rule):
            if not (other.is_resolved and other.decision is Decision.SIGNIFICANT):
                return True
        return False

    def select(
        self, state: MiningState, member_id: str, rng: np.random.Generator
    ) -> Rule | None:
        eligible = self.eligible(state, member_id)
        if not eligible:
            return None
        frontier = [k for k in eligible if not self._blocked(state, k)]
        pool = frontier or eligible  # all blocked: fall back gracefully
        best = min(pool, key=lambda k: (len(k.rule.body), k.samples.n))
        return best.rule


#: Registry used by experiment configs ("crowdminer" is the headline name).
STRATEGIES = {
    "crowdminer": MaxUncertaintyStrategy,
    "maxuncertainty": MaxUncertaintyStrategy,
    "random": RandomStrategy,
    "roundrobin": RoundRobinStrategy,
    "horizontal": HorizontalStrategy,
}


def make_strategy(name: str) -> QuestionStrategy:
    """Instantiate a strategy by registry name."""
    try:
        return STRATEGIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {sorted(set(STRATEGIES))}"
        ) from None
