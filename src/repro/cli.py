"""Command-line interface: ``python -m repro <command>``.

Three commands covering the library's three hats:

- ``mine`` — run a crowd-mining session on one of the named example
  domains (folk_remedies / travel / culinary) against a simulated
  crowd, printing the mined rules and ground-truth score; with
  ``--save-cache`` the collected answers persist to JSON,
  ``--adversary-mix`` / ``--quarantine`` / ``--trust-model`` plant
  adversaries and enable the quality-control loop
  (``docs/robustness.md``), and ``--checkpoint`` makes the session
  durable — checkpointed every ``--checkpoint-every`` questions and
  resumable after a crash with ``--resume``
  (``docs/persistence.md``);
- ``kb`` — inspect a saved knowledge base: rule counts by decision,
  the strongest significant rules, per-member evidence totals, with
  ``--export`` for CSV/JSON dumps;
- ``replay`` — re-evaluate a saved answer cache at new thresholds
  without asking a single question;
- ``experiment`` — run one of the canonical experiments (e1, e2, e3,
  e4, e5, e8, e8r, e9) at smoke or full scale and print its figure;
- ``classic`` — classic association-rule mining over a Quest-generated
  database (the library as a plain itemset miner);
- ``serve`` — run the real-time HTTP serving surface: live sessions
  over a JSON API, durable under ``--data-dir`` and resumable with
  ``--resume`` (``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys

from repro.crowd import standard_answer_model
from repro.estimation import Thresholds
from repro.eval import EXPERIMENTS, ascii_chart, format_experiment, run_variants
from repro.miner import compute_ground_truth
from repro.synth import NAMED_MODELS, QuestConfig, QuestGenerator, build_population


def _detect_backend_kind(path: str) -> str:
    """Which backend wrote ``path`` — by file magic, not by flag."""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(16)
    except OSError:
        return "sqlite"  # let open_backend produce the real error
    return "sqlite" if magic == b"SQLite format 3\x00" else "memory"


def _resume_mine(args: argparse.Namespace) -> int:
    """The ``mine --resume`` path: reload the session and finish it."""
    from repro.storage import CorruptStoreError, StorageError, load_session, open_backend

    try:
        storage = open_backend(
            args.checkpoint, _detect_backend_kind(args.checkpoint), resume=True
        )
        miner, dispatcher, info = load_session(storage, repair=args.repair)
    except CorruptStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if not args.repair:
            print(
                "hint: --repair falls back to the last verified checkpoint",
                file=sys.stderr,
            )
        return 2
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    dropped = miner.obs.snapshot().counters.get("storage.repaired", 0)
    if dropped:
        print(f"repair: dropped {dropped} corrupt checkpoint(s)")
    from repro.serve.session import ServeSnapshot

    if isinstance(dispatcher, ServeSnapshot):
        storage.close()
        print(
            f"error: {args.checkpoint} holds a serve session with "
            "outstanding questions; resume it with "
            "`repro serve --data-dir DIR --resume` instead",
            file=sys.stderr,
        )
        return 2
    print(
        f"resumed {storage.describe()} at question {info.questions} "
        f"({info.kb_rules} rules known)"
    )
    result = dispatcher.run() if dispatcher is not None else miner.run()
    miner.checkpoint()
    storage.close()
    print(result.summary())
    print(f"fingerprint: {result.fingerprint()}")
    print("\nground truth: skipped on resume (world not rebuilt)")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.resume:
        if not args.checkpoint:
            print("error: --resume requires --checkpoint PATH", file=sys.stderr)
            return 2
        return _resume_mine(args)
    model = NAMED_MODELS[args.domain](seed=args.seed)
    if args.population_backend == "array":
        if args.adversary_mix:
            print(
                "error: --adversary-mix needs per-member objects; "
                "drop it or use --population-backend object",
                file=sys.stderr,
            )
            return 2
        from repro.crowd import ArrayCrowd
        from repro.synth import ArrayPopulation

        population = ArrayPopulation(
            model, n_members=args.members,
            transactions_per_member=200, seed=args.seed + 1,
        )
        crowd = ArrayCrowd(
            population, answer_model=standard_answer_model(), seed=args.seed + 2
        )
    else:
        population = build_population(
            model, n_members=args.members,
            transactions_per_member=200, seed=args.seed + 1,
        )
        from repro.faults import build_adversarial_crowd, parse_adversary_mix

        mix = parse_adversary_mix(args.adversary_mix)
        crowd, roles = build_adversarial_crowd(
            population, mix, answer_model=standard_answer_model(), seed=args.seed + 2
        )
        adversaries = {mid for mid, role in roles.items() if role != "honest"}
        if adversaries:
            print(
                f"adversary mix: {args.adversary_mix} "
                f"({len(adversaries)} members)"
            )
    cache = None
    if args.save_cache:
        from repro.miner import AnswerCache, CachingCrowd

        cache = AnswerCache()
        crowd = CachingCrowd(crowd, cache)
    thresholds = Thresholds(args.support, args.confidence)
    storage = None
    if args.checkpoint:
        from repro.storage import open_backend

        storage = open_backend(args.checkpoint, args.storage)
        print(f"checkpointing to {storage.describe()}")
    from repro.miner import CrowdMiner, CrowdMinerConfig

    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=thresholds,
            budget=args.budget,
            quarantine=args.quarantine,
            trust_model=args.trust_model,
            gold_rate=args.gold_rate,
            reestimate_every=args.reestimate_every,
            checkpoint_every=args.checkpoint_every if storage is not None else 0,
            seed=args.seed + 3,
        ),
        storage=storage,
    )
    use_dispatch = (
        args.shards > 1
        or args.in_flight > 1
        or args.latency != "0"
        or args.timeout is not None
    )
    if use_dispatch:
        import math

        from repro.dispatch import (
            DispatchConfig,
            Dispatcher,
            ShardedDispatcher,
            parse_latency,
        )

        dispatch_config = DispatchConfig(
            window=args.in_flight,
            latency=parse_latency(args.latency),
            timeout=math.inf if args.timeout is None else args.timeout,
            max_retries=args.retries,
            seed=args.seed + 4,
        )
        if args.shards > 1:
            dispatcher = ShardedDispatcher(
                miner, dispatch_config, shards=args.shards
            )
        else:
            dispatcher = Dispatcher(miner, dispatch_config)
        result = dispatcher.run()
    else:
        result = miner.run()
    if storage is not None:
        # One final checkpoint so `repro kb` and a later --resume see
        # the finished session, not the last mid-run snapshot.
        miner.checkpoint()
        storage.close()
    print(result.summary())
    if storage is not None:
        print(f"fingerprint: {result.fingerprint()}")
    if cache is not None:
        from repro.io import cache_to_json, save_json

        save_json(cache_to_json(cache), args.save_cache)
        print(f"\nsaved {len(cache)} answers to {args.save_cache}")
    if args.members > 1_000:
        # Exact scoring mines the union of every member's transactions
        # — superlinear in crowd size and the very cost the array
        # backend avoids (minutes beyond a few thousand members).
        print("\nground truth: skipped (crowd too large to scan exactly)")
        return 0
    truth = compute_ground_truth(population, thresholds)
    mined = set(result.significant)
    tp = len(mined & truth.significant)
    precision = tp / len(mined) if mined else 1.0
    recall = tp / len(truth.significant) if truth.significant else 1.0
    print(
        f"\nground truth: {len(truth.significant)} rules | "
        f"precision {precision:.2f}, recall {recall:.2f}"
    )
    return 0


def _cmd_kb(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.estimation.significance import Decision
    from repro.storage import (
        CorruptStoreError,
        StorageError,
        load_session,
        open_backend,
        scrub_store,
    )

    try:
        # Read-only inspection: a WAL-mode reader sees a consistent
        # snapshot even while a live `repro serve` process writes, and
        # rollback=False leaves the dangling answer log untouched.
        storage = open_backend(
            args.path, _detect_backend_kind(args.path), readonly=True
        )
        verified, corrupt = scrub_store(storage)
        if corrupt:
            ids = sorted(info.checkpoint_id for info in corrupt)
            print(
                f"integrity: {len(corrupt)} corrupt checkpoint(s) {ids}, "
                f"{len(verified)} verified "
                "(resume with --repair to fall back past them)",
            )
        miner, dispatcher, info = load_session(storage, rollback=False, repair=True)
    except CorruptStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: every checkpoint failed verification; the store is "
            "beyond repair",
            file=sys.stderr,
        )
        return 2
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state = miner.state
    history = storage.checkpoints()
    print(storage.describe())
    print(
        f"checkpoint #{info.checkpoint_id} of {len(history)}: "
        f"{info.questions} questions asked, {info.answers_logged} answers "
        f"logged, {storage.bytes_on_disk()} bytes on disk"
    )
    if dispatcher is not None:
        if getattr(dispatcher, "kind", None) == "serve":
            print("serve session (resume with `repro serve --resume`)")
        else:
            print("dispatched session (in-flight questions resume with it)")
    counts = Counter(knowledge.decision for knowledge in state.rules())
    inferred = sum(1 for knowledge in state.rules() if knowledge.inferred)
    by_decision = ", ".join(
        f"{counts.get(decision, 0)} {decision.value}" for decision in Decision
    )
    print(f"rules: {len(state)} known — {by_decision} ({inferred} by inference)")
    significant = state.significant_rules(mode="decided")
    ranked = sorted(
        significant.items(),
        key=lambda kv: (-kv[1].support, -kv[1].confidence, str(kv[0])),
    )
    print(f"top {min(args.top, len(ranked))} significant rules (of {len(ranked)}):")
    for rule, stats in ranked[: args.top]:
        print(f"  {rule}  {stats}")
    evidence: Counter[str] = Counter()
    for knowledge in state.rules():
        for member_id, _ in knowledge.samples.observations():
            evidence[member_id] += 1
    print(f"evidence: {sum(evidence.values())} observations from "
          f"{len(evidence)} members")
    for member_id, total in sorted(evidence.items(), key=lambda kv: (-kv[1], kv[0]))[
        : args.top
    ]:
        print(f"  {member_id}: {total}")
    if args.export:
        from repro.eval.export import save_kb

        csv_path, json_path = save_kb(state, args.export)
        print(f"\nexported {csv_path} and {json_path}")
    storage.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.io import cache_from_json, load_json
    from repro.miner import reevaluate

    cache = cache_from_json(load_json(args.cache))
    thresholds = Thresholds(args.support, args.confidence)
    significant = reevaluate(cache, thresholds)
    print(
        f"{len(cache)} cached answers; at thresholds "
        f"({args.support}, {args.confidence}): {len(significant)} significant rules"
    )
    for rule, stats in sorted(significant.items(), key=lambda kv: -kv[1].support):
        print(f"  {rule}  {stats}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    base, variants = EXPERIMENTS[args.name](args.scale)
    results = run_variants(base, variants)
    print(format_experiment(f"{args.name} ({args.scale})", results))
    print()
    print(ascii_chart({label: r.curve for label, r in results.items()}))
    print()
    print("per-phase timings (first repetition of each variant):")
    for label, result in results.items():
        obs = result.repetitions[0].obs
        if obs is None:
            continue
        phases = ", ".join(
            f"{name.split('.', 1)[1]} {stats.total_seconds:.2f}s"
            for name, stats in sorted(obs.timers.items())
            if name.startswith("runner.")
        )
        hits = obs.counters.get("kb.summary_hits", 0)
        misses = obs.counters.get("kb.summary_misses", 0)
        print(
            f"  {label}: {phases} | summary cache {hits} hits / {misses} misses"
        )
    if args.export:
        from repro.eval import save_results

        csv_path, json_path = save_results(
            results, args.export, f"{args.name}_{args.scale}"
        )
        print(f"\nexported {csv_path} and {json_path}")
    return 0


def _cmd_classic(args: argparse.Namespace) -> int:
    from repro.classic import fpgrowth_frequent_itemsets, rules_from_itemsets

    generator = QuestGenerator(
        QuestConfig(n_items=args.items, n_transactions=args.transactions),
        seed=args.seed,
    )
    db = generator.generate()
    supports = fpgrowth_frequent_itemsets(db, args.support, max_size=4)
    rules = rules_from_itemsets(supports, args.confidence)
    print(
        f"{len(db)} transactions, {len(supports)} frequent itemsets, "
        f"{len(rules)} rules"
    )
    for rule, stats in sorted(rules.items(), key=lambda kv: -kv[1].support)[:args.top]:
        print(f"  {rule}  {stats}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve import ServeError, serve_forever

    data_dir = Path(args.data_dir) if args.data_dir else None
    if args.resume and data_dir is None:
        print("error: --resume requires --data-dir DIR", file=sys.stderr)
        return 2
    storage_wrapper = None
    request_hook = None
    if args.chaos_kill:
        # The cross-process half of the chaos matrix: this very server
        # SIGKILLs itself at the named point, and the harness (or an
        # operator) resumes what is on disk.
        from repro.chaos import FaultyBackend, KillSwitch

        try:
            kill = KillSwitch.parse(args.chaos_kill)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if kill.phase == "request":
            request_hook = lambda request: kill.tick("request")  # noqa: E731
        else:
            storage_wrapper = lambda backend: FaultyBackend(  # noqa: E731
                backend, kill=kill
            )

    def ready(server) -> None:
        print(f"serving on http://{server.host}:{server.port}", flush=True)

    try:
        drained = asyncio.run(
            serve_forever(
                args.host,
                args.port,
                data_dir=data_dir,
                resume=args.resume,
                repair=args.repair,
                ready=ready,
                storage_wrapper=storage_wrapper,
                request_hook=request_hook,
            )
        )
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - signal-handler race
        return 0
    print(f"drained {drained} session(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Crowd mining (SIGMOD 2013 reproduction) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine a simulated crowd on a named domain")
    mine.add_argument("--domain", choices=sorted(NAMED_MODELS), default="folk_remedies")
    mine.add_argument("--members", type=int, default=40)
    mine.add_argument("--budget", type=int, default=1_000)
    mine.add_argument("--support", type=float, default=0.10)
    mine.add_argument("--confidence", type=float, default=0.50)
    mine.add_argument("--seed", type=int, default=0)
    mine.add_argument(
        "--save-cache", metavar="PATH", default=None,
        help="persist collected answers to a JSON cache file",
    )
    mine.add_argument(
        "--in-flight", type=int, default=1, metavar="N",
        help="questions kept in flight at once (>1 enables the "
        "asynchronous dispatcher; default 1 = synchronous)",
    )
    mine.add_argument(
        "--latency", default="0", metavar="SPEC",
        help="simulated answer latency, e.g. 0, const:30, "
        "lognormal:60:1.0, pareto:30:1.5, heavytail:60:0.8:1.3; "
        "append :drop=P for mid-flight dropout",
    )
    mine.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="simulated seconds to wait for an answer before "
        "reassigning it (default: wait forever)",
    )
    mine.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="reissues of a timed-out question before dropping it",
    )
    mine.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="split dispatch over N crowd partitions feeding one "
        "merged ingest stream (>1 implies the asynchronous "
        "dispatcher; see docs/scaling.md)",
    )
    mine.add_argument(
        "--population-backend", choices=("object", "array"),
        default="object",
        help="member-state backend: 'object' (default) builds one "
        "member object each; 'array' keeps columnar state and scales "
        "to millions of members (honest crowds only)",
    )
    mine.add_argument(
        "--adversary-mix", default="", metavar="SPEC",
        help="plant adversaries in the crowd as name:fraction pairs, "
        "e.g. spammer:0.2,garbled:0.1 (roles: spammer, colluder, "
        "drifter, lazy, garbled)",
    )
    mine.add_argument(
        "--quarantine", action="store_true",
        help="enable the quality-control loop: estimate per-member "
        "trust, quarantine low-trust members and purge their evidence",
    )
    mine.add_argument(
        "--trust-model", choices=("latent", "gold"), default="latent",
        help="trust source behind --quarantine: 'latent' (default) "
        "jointly estimates member ability and rule truth from the "
        "answer matrix, no gold spent; 'gold' is the legacy "
        "aggregate-referenced probe loop (poisonable by collusion)",
    )
    mine.add_argument(
        "--gold-rate", type=float, default=0.0, metavar="P",
        help="fraction of questions spent on gold probes (re-asking "
        "already-settled rules to score answer quality); requires "
        "--quarantine and --trust-model gold",
    )
    mine.add_argument(
        "--reestimate-every", type=int, default=10, metavar="N",
        help="answers between latent-trust re-estimations "
        "(--trust-model latent)",
    )
    mine.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="make the session durable: log every answer and "
        "checkpoint the whole session to PATH (also prints the "
        "deterministic session fingerprint)",
    )
    mine.add_argument(
        "--checkpoint-every", type=int, default=100, metavar="N",
        help="questions between checkpoints (default 100; the final "
        "state is always checkpointed)",
    )
    mine.add_argument(
        "--resume", action="store_true",
        help="resume the session saved at --checkpoint PATH instead "
        "of starting fresh; the finished run's fingerprint is "
        "byte-identical to an uninterrupted one",
    )
    mine.add_argument(
        "--repair", action="store_true",
        help="with --resume: scrub the store on open, drop corrupt "
        "checkpoints and fall back to the last verified one "
        "(docs/robustness.md)",
    )
    mine.add_argument(
        "--storage", choices=("sqlite", "memory"), default="sqlite",
        help="storage backend behind --checkpoint (default sqlite; "
        "--resume and `repro kb` auto-detect from the file)",
    )
    mine.set_defaults(func=_cmd_mine)

    kb = sub.add_parser(
        "kb", help="inspect a knowledge base saved via mine --checkpoint"
    )
    kb.add_argument("path", help="path to a saved session store")
    kb.add_argument(
        "--top", type=int, default=10, metavar="K",
        help="how many rules/members to list (default 10)",
    )
    kb.add_argument(
        "--export", metavar="DIR", default=None,
        help="also write the full KB as CSV and JSON into DIR",
    )
    kb.set_defaults(func=_cmd_kb)

    replay = sub.add_parser(
        "replay", help="re-evaluate a saved answer cache at new thresholds"
    )
    replay.add_argument("cache", help="path to a JSON answer cache")
    replay.add_argument("--support", type=float, default=0.10)
    replay.add_argument("--confidence", type=float, default=0.50)
    replay.set_defaults(func=_cmd_replay)

    experiment = sub.add_parser("experiment", help="run a canonical experiment")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", choices=("smoke", "full"), default="smoke")
    experiment.add_argument(
        "--export", metavar="DIR", default=None,
        help="also write CSV/JSON result files into DIR",
    )
    experiment.set_defaults(func=_cmd_experiment)

    serve = sub.add_parser(
        "serve", help="run the real-time HTTP serving surface"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port to bind (0 picks a free one; the bound address "
        "is printed once the server accepts connections)",
    )
    serve.add_argument(
        "--data-dir", metavar="DIR", default=None,
        help="make sessions durable: one SQLite store per session in "
        "DIR, checkpointed live and drained on shutdown",
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="reload every session found in --data-dir before "
        "accepting traffic; outstanding questions are re-offered",
    )
    serve.add_argument(
        "--repair", action="store_true",
        help="with --resume: scrub each store on open and fall back "
        "past corrupt checkpoints instead of refusing to start",
    )
    serve.add_argument(
        "--chaos-kill", metavar="PHASE:COUNT", default=None,
        help="chaos testing: SIGKILL this process at the Nth hit of a "
        "kill-point (append, commit, checkpoint, request) — e.g. "
        "commit:3; used by the crash-schedule tests, not for "
        "production",
    )
    serve.set_defaults(func=_cmd_serve)

    classic = sub.add_parser("classic", help="classic mining on Quest data")
    classic.add_argument("--items", type=int, default=100)
    classic.add_argument("--transactions", type=int, default=4_000)
    classic.add_argument("--support", type=float, default=0.05)
    classic.add_argument("--confidence", type=float, default=0.6)
    classic.add_argument("--top", type=int, default=10)
    classic.add_argument("--seed", type=int, default=0)
    classic.set_defaults(func=_cmd_classic)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
