"""Deterministic fault injection for dispatched mining sessions.

A :class:`FaultPlan` names *when* things go wrong — member crashes,
burst churn waves, duplicate deliveries — and :class:`FaultInjector`
schedules those failures on the dispatcher's own
:class:`~repro.dispatch.clock.EventClock` before the session starts.
Because every fault is a clock event and every victim choice comes from
the injector's seeded generator, a faulted session replays
byte-identically from its seed tuple (crowd, miner, dispatch, plan) —
the property the fault-matrix tests pin.

The injector only uses the dispatcher's public fault surface
(:meth:`~repro.dispatch.dispatcher.Dispatcher.crash_member`,
:meth:`~repro.dispatch.dispatcher.Dispatcher.inject_duplicate`) plus
the crowd's :meth:`~repro.crowd.crowd.SimulatedCrowd.crash`; no
monkey-patching, no hooks. A fault landing at an instant with no
eligible victim (nothing in flight, nobody left to churn) is a no-op,
counted under ``faults.noops`` so experiments can see how much of the
plan actually bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro._util import as_rng
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # avoids a cycle: the dispatcher imports the miner,
    # and the miner imports this package for the quality controller.
    from repro.dispatch.dispatcher import Dispatcher


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """When the crowd misbehaves, on the simulated timeline.

    Attributes
    ----------
    crashes:
        Instants at which one member holding an in-flight question
        crashes (their answer will never arrive; the question is
        recovered through the retry path).
    churn_waves:
        ``(time, size)`` pairs: at ``time``, ``size`` members leave at
        once — a burst departure. Members holding in-flight questions
        crash; idle members just leave.
    duplicates:
        Instants at which one currently in-flight answer gets delivered
        *twice* (at-least-once transport); the dispatcher must
        recognise and discard the second copy by its delivery token.
    seed:
        Victim-selection randomness (which member crashes, which answer
        duplicates) — separate from dispatch latency randomness, so
        fault plans never perturb clean-session draws.
    """

    crashes: tuple[float, ...] = ()
    churn_waves: tuple[tuple[float, int], ...] = ()
    duplicates: tuple[float, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for when in self.crashes + self.duplicates:
            if not when >= 0:
                raise ConfigurationError(f"fault time must be >= 0, got {when!r}")
        for when, size in self.churn_waves:
            if not when >= 0:
                raise ConfigurationError(f"fault time must be >= 0, got {when!r}")
            if size < 1:
                raise ConfigurationError(f"churn wave size must be >= 1, got {size!r}")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not (self.crashes or self.churn_waves or self.duplicates)


@dataclass(slots=True)
class FaultInjector:
    """Arms a :class:`FaultPlan` against one dispatcher session."""

    dispatcher: "Dispatcher"
    plan: FaultPlan
    _rng: np.random.Generator = field(init=False, repr=False)
    _armed: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        self._rng = as_rng(self.plan.seed)

    def arm(self) -> None:
        """Schedule every planned fault on the dispatcher's clock.

        Call once, before driving the session. Faults scheduled at the
        same instant as regular dispatch events fire in schedule order
        (the clock's only tie-break), so arming first puts faults ahead
        of deliveries at equal timestamps — the adversarial ordering.
        """
        if self._armed:
            raise ConfigurationError("fault plan already armed")
        self._armed = True
        clock = self.dispatcher.clock
        for when in self.plan.crashes:
            clock.schedule_at(when, self._crash_one)
        for when, size in self.plan.churn_waves:
            clock.schedule_at(when, lambda size=size: self._churn(size))
        for when in self.plan.duplicates:
            clock.schedule_at(when, self._duplicate_one)

    # -- fault handlers -------------------------------------------------------

    def _obs(self):
        return self.dispatcher.obs

    def _pick(self, candidates: list[str]) -> str:
        return candidates[int(self._rng.integers(len(candidates)))]

    def _crash_one(self) -> None:
        victims = self.dispatcher.in_flight_members()
        if not victims:
            self._obs().count("faults.noops")
            return
        victim = self._pick(victims)
        self.dispatcher.crash_member(victim)
        self._obs().count("faults.crashes")

    def _churn(self, size: int) -> None:
        crowd = self.dispatcher.miner.crowd
        in_flight = set(self.dispatcher.in_flight_members())
        available = sorted(set(crowd.available_members()) | in_flight)
        if not available:
            self._obs().count("faults.noops")
            return
        size = min(size, len(available))
        chosen = self._rng.choice(len(available), size=size, replace=False)
        for index in sorted(int(i) for i in chosen):
            member_id = available[index]
            if member_id in in_flight:
                self.dispatcher.crash_member(member_id)
            else:
                crowd.crash(member_id)
            self._obs().count("faults.churned")

    def _duplicate_one(self) -> None:
        victims = self.dispatcher.in_flight_members()
        if not victims:
            self._obs().count("faults.noops")
            return
        victim = self._pick(victims)
        if self.dispatcher.inject_duplicate(victim):
            self._obs().count("faults.duplicates")
        else:
            self._obs().count("faults.noops")


def periodic_plan(
    *,
    horizon: float,
    crash_every: float | None = None,
    churn_at: float | None = None,
    churn_size: int = 2,
    duplicate_every: float | None = None,
    seed: int = 0,
) -> FaultPlan:
    """A regular-grid plan covering ``[0, horizon]`` — the test workhorse.

    ``crash_every`` / ``duplicate_every`` place one fault per period
    (starting at one period in, never at 0 when nothing is in flight
    yet); ``churn_at`` places a single wave of ``churn_size`` members.
    """
    if not horizon > 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon!r}")

    def grid(period: float | None) -> tuple[float, ...]:
        if period is None:
            return ()
        if not period > 0:
            raise ConfigurationError(f"period must be positive, got {period!r}")
        times = []
        when = period
        while when <= horizon:
            times.append(when)
            when += period
        return tuple(times)

    waves = ()
    if churn_at is not None:
        waves = ((churn_at, churn_size),)
    return FaultPlan(
        crashes=grid(crash_every),
        churn_waves=waves,
        duplicates=grid(duplicate_every),
        seed=seed,
    )
