"""Per-member answer quality scores, trust weights and quarantine.

The quality-control loop (ISSUE: gold probes + outlier screening +
quarantine) concentrates here. :class:`QualityController` accumulates
two independent signals per member:

- **gold probes** — the miner occasionally re-asks a rule whose
  aggregate is already tight (a *resolved* rule with enough evidence);
  the member's answer is scored against that aggregate instead of being
  counted as evidence. Honest-but-noisy members land within the gold
  tolerance; spammers, colluders and burned-out drifters do not.
- **outlier z-scores** — every counted closed answer is compared to the
  rule's current aggregate (when it has enough samples); answers many
  standard deviations out are tallied as outliers. A tolerance keeps
  the occasional honest outlier free.

Both signals fold into one violation score and a trust weight
``1 / (1 + severity · score)`` — the same decay shape as
:class:`~repro.estimation.consistency.ConsistencyChecker`, so the two
sources compose naturally (:class:`CompositeTrust`). The controller
implements the trust-source protocol of
:class:`~repro.estimation.aggregate.DynamicTrustAggregator` (``trust``
+ ``version``), so estimates discount low-quality members *before*
quarantine triggers.

Design constraint: a member with no bad evidence has a violation score
of exactly ``0.0`` and therefore trust of exactly ``1.0`` — which lets
the aggregator take its exact streaming fast path, keeping clean
sessions byte-identical to sessions with quality control disabled.

Quarantine is the discrete end of the loop: once a member's trust falls
below ``trust_floor`` (with at least ``min_answers`` scored answers),
:meth:`should_quarantine` turns true; the miner then stops routing to
them and purges their evidence from the knowledge base
(:meth:`~repro.miner.state.MiningState.purge_member`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_fraction, check_nonnegative
from repro.core.measures import RuleStats


@dataclass(slots=True)
class MemberQuality:
    """One member's accumulated quality evidence."""

    answers_scored: int = 0
    gold_probes: int = 0
    gold_error_total: float = 0.0
    gold_failures: int = 0
    outliers: int = 0

    @property
    def mean_gold_error(self) -> float:
        """Average gold-probe error (0 when never probed)."""
        if self.gold_probes == 0:
            return 0.0
        return self.gold_error_total / self.gold_probes

    @property
    def outlier_rate(self) -> float:
        """Fraction of scored answers flagged as outliers."""
        if self.answers_scored == 0:
            return 0.0
        return self.outliers / self.answers_scored


class QualityController:
    """Running per-member quality scores and the quarantine decision.

    Parameters
    ----------
    gold_tolerance:
        Per-component gold-probe error forgiven entirely. One Likert
        grid step is 0.25; honest noise plus coarsening against a tight
        aggregate stays within ~one step, so the default forgives that.
    z_threshold:
        |z| beyond which a counted answer is tallied as an outlier.
    outlier_tolerance:
        Outlier *rate* forgiven entirely (honest members trip the z
        gate occasionally; spammers trip it constantly).
    severity:
        Trust decay speed past the tolerances (see class docstring).
    trust_floor:
        Trust below which :meth:`should_quarantine` turns true.
    min_answers:
        Minimum scored answers (gold probes included) before quarantine
        may trigger — nobody is exiled on their first answer.
    """

    def __init__(
        self,
        gold_tolerance: float = 0.25,
        z_threshold: float = 3.5,
        outlier_tolerance: float = 0.25,
        severity: float = 12.0,
        trust_floor: float = 0.5,
        min_answers: int = 3,
    ) -> None:
        self.gold_tolerance = check_nonnegative(gold_tolerance, "gold_tolerance")
        self.z_threshold = check_nonnegative(z_threshold, "z_threshold")
        check_fraction(outlier_tolerance, "outlier_tolerance")
        self.outlier_tolerance = float(outlier_tolerance)
        self.severity = check_nonnegative(severity, "severity")
        check_fraction(trust_floor, "trust_floor")
        self.trust_floor = float(trust_floor)
        if min_answers < 1:
            raise ValueError(f"min_answers must be at least 1, got {min_answers}")
        self.min_answers = int(min_answers)
        self._members: dict[str, MemberQuality] = {}
        self._quarantined: set[str] = set()
        #: Monotonic change counter — the trust-source cache token read
        #: by :class:`~repro.estimation.aggregate.DynamicTrustAggregator`.
        self.version = 0

    # -- recording ------------------------------------------------------------

    def _record_of(self, member_id: str) -> MemberQuality:
        record = self._members.get(member_id)
        if record is None:
            record = self._members[member_id] = MemberQuality()
        return record

    def record_gold(
        self, member_id: str, reported: RuleStats, expected: RuleStats
    ) -> float:
        """Score one gold-probe answer; returns the probe error.

        The error is the larger per-component gap between the reported
        stats and the rule's settled aggregate.
        """
        error = max(
            abs(reported.support - expected.support),
            abs(reported.confidence - expected.confidence),
        )
        before = self.violation_score(member_id)
        record = self._record_of(member_id)
        record.answers_scored += 1
        record.gold_probes += 1
        record.gold_error_total += error
        if error > self.gold_tolerance:
            record.gold_failures += 1
        if self.violation_score(member_id) != before:
            # Clean probes also move the running means — a recovering
            # member's rising trust must invalidate cached summaries
            # just as surely as a failure's falling trust.
            self.version += 1
        return error

    def record_answer(self, member_id: str, z_score: float | None) -> bool:
        """Tally one counted answer; returns True when it was an outlier.

        ``z_score`` is the answer's distance from the rule's current
        aggregate in standard errors (``None`` when the aggregate is
        still too thin to judge).
        """
        before = self.violation_score(member_id)
        record = self._record_of(member_id)
        record.answers_scored += 1
        outlier = z_score is not None and abs(z_score) > self.z_threshold
        if outlier:
            record.outliers += 1
        if self.violation_score(member_id) != before:
            # Clean answers dilute the outlier rate, so they can raise
            # trust — bump on any score movement, not just violations.
            self.version += 1
        return outlier

    # -- the trust-source protocol --------------------------------------------

    def violation_score(self, member_id: str) -> float:
        """Combined quality violation beyond the tolerances (0 = clean)."""
        record = self._members.get(member_id)
        if record is None:
            return 0.0
        gold_excess = max(0.0, record.mean_gold_error - self.gold_tolerance)
        outlier_excess = max(0.0, record.outlier_rate - self.outlier_tolerance)
        return gold_excess + outlier_excess

    def trust(self, member_id: str) -> float:
        """Trust weight in ``(0, 1]``; exactly 1.0 for clean members."""
        if member_id in self._quarantined:
            return 0.0
        score = self.violation_score(member_id)
        if score == 0.0:
            return 1.0
        return 1.0 / (1.0 + self.severity * score)

    # -- quarantine -----------------------------------------------------------

    def should_quarantine(self, member_id: str) -> bool:
        """True when the member's quality warrants exile."""
        if member_id in self._quarantined:
            return False
        record = self._members.get(member_id)
        if record is None or record.answers_scored < self.min_answers:
            return False
        return self.trust(member_id) < self.trust_floor

    def mark_quarantined(self, member_id: str) -> None:
        """Record the quarantine decision (trust pinned to 0)."""
        self._quarantined.add(member_id)
        self.version += 1

    def is_quarantined(self, member_id: str) -> bool:
        """True when the member has been quarantined."""
        return member_id in self._quarantined

    @property
    def quarantined(self) -> set[str]:
        """Members quarantined so far (a copy)."""
        return set(self._quarantined)

    def quality_of(self, member_id: str) -> MemberQuality | None:
        """The member's raw quality record (``None`` when never scored)."""
        return self._members.get(member_id)

    def __repr__(self) -> str:
        return (
            f"QualityController({len(self._members)} scored, "
            f"{len(self._quarantined)} quarantined)"
        )


@dataclass
class CompositeTrust:
    """Product of several trust sources, for the weighted aggregator.

    Used when consistency screening (``screen_spammers``) and the
    quality loop (``quarantine``) run together: a member must convince
    *both* to keep full weight. The version is the sum of the sources'
    versions, so any source moving invalidates cached summaries.
    """

    sources: tuple = ()
    _fallbacks: dict = field(default_factory=dict, repr=False)

    def trust(self, member_id: str) -> float:
        value = 1.0
        for source in self.sources:
            value *= source.trust(member_id)
        return value

    @property
    def version(self) -> int:
        total = 0
        for idx, source in enumerate(self.sources):
            version = getattr(source, "version", None)
            if version is None:
                # No change signal: force invalidation, like the
                # aggregator's own fallback path.
                self._fallbacks[idx] = self._fallbacks.get(idx, 0) + 1
                total += self._fallbacks[idx]
            else:
                total += int(version)
        return total
