"""Latent-ability worker trust: joint member/truth estimation, no gold.

The gold-probe quality loop (:mod:`repro.faults.quality`) scores each
member against the *crowd aggregate* of a settled rule. That reference
is exactly what a collusion ring poisons: once enough fabricated rules
settle, honest members fail probes on them, get quarantined, and their
purged evidence amplifies the colluders — the measured net-negative
regime of EXPERIMENTS.md E8-R. The cure, standard in the
truth-inference literature (Dawid–Skene and its continuous-response
descendants), is to stop trusting any single reference and instead
*jointly* estimate per-member ability and per-rule latent truth from
the full answer matrix. There is no gold to poison: a member is judged
by how well their answers fit the truth implied by *everyone's*
answers under the fitted ability weights, and colluders lose that
argument as long as they are not the self-consistent majority.

The model, on the support/confidence plane:

- each rule ``r`` has a latent truth ``t_r ∈ [0, 1]²`` (the crowd-mean
  support and confidence the miner wants) and a latent **difficulty**
  ``τ_r`` — the legitimate member-to-member scatter on that rule
  (habits differ: a rule half the crowd lives by and half has never
  heard of has honest answers a long way apart);
- each member ``m`` has a latent ability: a systematic **bias**
  ``b_m ∈ R²`` and a *relative* **noise scale** ``σ_m``; their answer
  to rule ``r`` is modelled as ``x_mr = t_r + b_m + ε`` with
  ``ε ~ N(0, σ_m² τ_r² I)``.

The rule-difficulty axis is what makes the member axis identifiable
on heterogeneous domains: an honest member whose personal habits sit
far from the crowd mean has large residuals only on rules where
*everyone* scatters (large ``τ_r``), so their relative ``σ_m`` stays
near 1 — while a spammer or colluder is wrong even on the rules the
honest crowd agrees tightly about, which no amount of per-rule scale
can excuse.

Estimation alternates the conditional maximizations (an EM /
coordinate-ascent scheme; with Gaussian noise each step is the exact
Newton–Raphson solution of its subproblem):

- **truth step** — ``t_r`` is the precision-weighted mean of the
  bias-corrected answers, weights ``1 / (σ_m² τ_r²)``;
- **difficulty step** — ``τ_r²`` is the shrunk mean of the rule's
  squared residuals, each standardized by its author's ``σ_m²``;
- **ability step** — ``b_m`` is the shrunk mean residual of member
  ``m``'s answers against the current truths, and ``σ_m²`` the shrunk
  mean of their squared residuals standardized by ``τ_r²``, with a
  pseudo-count prior pulling toward the honest profile (``b = 0``,
  ``σ = 1``) so thin records are not over-read.

Joint estimation alone has a known failure mode: it rewards
*self-consistency*, and a tight collusion ring is more self-consistent
than a heterogeneous honest crowd. Near 50% collusion the EM race can
tip — the fitted truths converge on the fabricated cluster and honest
members read as the noisy ones. The model therefore anchors the fit on
a signal no majority can poison, because it is computed from each
member's *own* answers in isolation: **support antitonicity on the
rule lattice**. Support is antitone in the rule body, so a member
reporting higher support for a more specific rule than for its
generalization is inconsistent with every possible personal database.
Honest members — answering from one coherent set of habits — respect
this by construction; colluders and spammers fabricate each rule's
statistics independently and violate it on roughly half of their
comparable pairs. Each member's mean violation (their *incoherence*)
sets a floor on their noise scale inside the fit, so fabricated answer
mass enters the truth step pre-discounted and the honest cluster wins
the race at any collusion fraction, and feeds the trust score
directly.

The dynamics then do the rest: whichever group's answers are more
self-consistent *around the anchored truths* earns precision, pulls
the truths further toward itself, and grows the other group's relative
residuals — without a single gold question spent or poisoned.

:class:`LatentAbilityModel` implements the same trust-source protocol
as :class:`~repro.faults.quality.QualityController` (``trust`` +
``version`` for :class:`~repro.estimation.aggregate
.DynamicTrustAggregator`, plus the quarantine surface), so the miner
swaps it in behind ``CrowdMinerConfig(trust_model="latent")``.
Everything is a deterministic pure function of the observed answer
stream — no randomness — so seeded sessions replay byte-identically.

The clean-session contract carries over: a member whose posterior
ability stays inside the honest tolerances has trust of exactly
``1.0``, keeping the aggregator on its exact streaming fast path and
adversary-free quality-enabled sessions byte-identical to quality-off
ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_fraction, check_nonnegative, check_positive
from repro.core.measures import RuleStats
from repro.core.rule import Rule


@dataclass(frozen=True, slots=True)
class MemberAbility:
    """One member's posterior ability after the latest re-estimation."""

    #: Posterior *relative* noise scale: 1.0 = typical honest scatter
    #: for the rules answered, larger = noisier than the crowd can
    #: explain by rule difficulty alone.
    sigma: float
    #: Posterior systematic bias on (support, confidence).
    bias: tuple[float, float]
    #: Parsed answers in the matrix when the estimate was made.
    answers: int
    #: Malformed strikes accumulated when the estimate was made.
    malformed: int
    #: Shrunk mean support-antitonicity violation *beyond the margin*
    #: over the member's own comparable rule pairs (0.0 = coherent;
    #: honest noise/Likert flips stay near zero because the margin
    #: forgives them; fabricated statistics land well above 0.05).
    incoherence: float = 0.0
    #: Comparable (subset-ordered or equal-body) rule pairs the
    #: incoherence mean is taken over.
    comparable_pairs: int = 0

    @property
    def bias_magnitude(self) -> float:
        """The larger per-component |bias|."""
        return max(abs(self.bias[0]), abs(self.bias[1]))


class LatentAbilityModel:
    """Joint member-ability / rule-truth estimation as a trust source.

    Parameters
    ----------
    trust_floor:
        Trust below which :meth:`should_quarantine` turns true.
    min_answers:
        Minimum observed answers (malformed strikes included) before
        quarantine may trigger.
    reestimate_every:
        Observations between re-estimations (answer-count driven, so
        deterministic under replay; the miner calls
        :meth:`due` / :meth:`reestimate` from its ingest path).
    sigma_tolerance:
        Posterior *relative* noise scale forgiven entirely. 1.0 is
        "typical honest scatter for the rules answered", but the fit's
        own sampling wobble (few answers per member, heterogeneous
        habits, thin early matrices) legitimately puts honest members
        several times above it, so the default is deliberately loose —
        the scale axis is a backstop for egregious noise; the
        coherence axis is the discriminating one (adversaries who
        fabricate statistics show up there long before their fitted
        scale does).
    coherence_margin:
        Per-pair violation magnitude forgiven before anything is
        tallied. Honest members violate antitonicity only through
        answer noise and Likert coarsening on borderline pairs
        (exact-model members never do), and those flips are bounded —
        about one Likert step; fabricated statistics overshoot the
        margin routinely and by a lot.
    coherence_prior:
        Pseudo-pairs added to the denominator of the incoherence mean,
        so one unlucky violation on a thin record (a handful of
        comparable pairs) cannot condemn a member by itself.
    coherence_tolerance:
        Shrunk beyond-margin mean violation forgiven entirely. Honest
        members sit at (or within rounding of) zero under the margin;
        fabricated statistics land several times higher.
    coherence_weight:
        Converts incoherence beyond the tolerance (support units, so
        small numbers) into the common excess scale shared with the
        sigma/bias/malformed terms.
    anchor_gain:
        How hard incoherence floors a member's noise scale *inside*
        the fit: the floor is ``1 + anchor_gain · excess_incoherence``.
        This is what breaks the 50%-collusion symmetry — a tight ring
        is more self-consistent than an honest crowd, but its members
        enter the truth step pre-discounted and can never win the
        precision race.
    bias_tolerance:
        Posterior |bias| per component forgiven entirely. Honest
        personal habits legitimately sit a few tenths from the crowd
        mean (that is heterogeneity, not dishonesty), so the default
        is loose — the bias term mainly *explains* honest offsets so
        they do not inflate the member's noise scale.
    malformed_tolerance:
        Malformed-answer *rate* forgiven entirely (mirrors the gold
        loop's outlier tolerance; a member who only ever sends garbage
        must still lose trust despite having no parsed answers to fit).
    severity:
        Trust decay speed past the tolerances — the same
        ``1 / (1 + severity · excess)`` shape as the other trust
        sources, so :class:`~repro.faults.quality.CompositeTrust`
        composes them naturally.
    prior_tau / prior_strength:
        ``prior_tau`` is the prior per-rule difficulty (absolute
        standard deviation; one quarter of a Likert step by default),
        toward which thin rules shrink; ``prior_strength`` is the
        pseudo-count weight of both shrinkage priors — a member with
        ``n`` fitted answers has their ability pulled toward
        ``(b=0, σ=1)`` with weight ``prior_strength / (n +
        prior_strength)``, so nobody is condemned on two answers.
    max_iterations / convergence_tol:
        Coordinate-ascent budget per re-estimation; iteration stops
        early once no truth component moves more than the tolerance.
    """

    def __init__(
        self,
        trust_floor: float = 0.45,
        min_answers: int = 4,
        reestimate_every: int = 10,
        sigma_tolerance: float = 8.0,
        bias_tolerance: float = 0.5,
        malformed_tolerance: float = 0.25,
        coherence_margin: float = 0.1,
        coherence_prior: float = 4.0,
        coherence_tolerance: float = 0.05,
        coherence_weight: float = 12.0,
        anchor_gain: float = 20.0,
        severity: float = 6.0,
        prior_tau: float = 0.12,
        prior_strength: float = 6.0,
        max_iterations: int = 12,
        convergence_tol: float = 1e-6,
    ) -> None:
        check_fraction(trust_floor, "trust_floor")
        self.trust_floor = float(trust_floor)
        self.min_answers = check_positive(min_answers, "min_answers")
        self.reestimate_every = check_positive(reestimate_every, "reestimate_every")
        self.sigma_tolerance = check_nonnegative(sigma_tolerance, "sigma_tolerance")
        self.bias_tolerance = check_nonnegative(bias_tolerance, "bias_tolerance")
        self.coherence_margin = check_nonnegative(
            coherence_margin, "coherence_margin"
        )
        self.coherence_prior = check_nonnegative(
            coherence_prior, "coherence_prior"
        )
        self.coherence_tolerance = check_nonnegative(
            coherence_tolerance, "coherence_tolerance"
        )
        self.coherence_weight = check_nonnegative(
            coherence_weight, "coherence_weight"
        )
        self.anchor_gain = check_nonnegative(anchor_gain, "anchor_gain")
        check_fraction(malformed_tolerance, "malformed_tolerance")
        self.malformed_tolerance = float(malformed_tolerance)
        self.severity = check_nonnegative(severity, "severity")
        if prior_tau <= 0:
            raise ValueError(f"prior_tau must be positive, got {prior_tau}")
        self.prior_tau = float(prior_tau)
        self.prior_strength = check_nonnegative(prior_strength, "prior_strength")
        self.max_iterations = check_positive(max_iterations, "max_iterations")
        self.convergence_tol = check_nonnegative(convergence_tol, "convergence_tol")
        # The answer matrix: member → rule → latest parsed stats. A
        # member revising a rule overwrites their cell, matching the
        # one-observation-per-member contract of RuleSamples.
        self._answers: dict[str, dict[Rule, RuleStats]] = {}
        self._malformed: dict[str, int] = {}
        # The coherence tally: running support-antitonicity violation
        # totals over each member's own comparable rule pairs, updated
        # incrementally as answers arrive (each new answer is compared
        # against the member's existing cells once).
        self._violation: dict[str, float] = {}
        self._pairs: dict[str, int] = {}
        self._quarantined: set[str] = set()
        # Posterior state from the latest re-estimation. Members absent
        # from _trust are at the honest default of exactly 1.0.
        self._trust: dict[str, float] = {}
        self._ability: dict[str, MemberAbility] = {}
        self._since_estimate = 0
        self._estimates = 0
        #: Monotonic change counter — the trust-source cache token read
        #: by :class:`~repro.estimation.aggregate.DynamicTrustAggregator`.
        #: Bumped only when a re-estimation (or quarantine) actually
        #: moves some member's trust, so clean sessions keep their
        #: cached aggregate summaries.
        self.version = 0

    # -- recording ------------------------------------------------------------

    def observe_answer(self, member_id: str, rule: Rule, stats: RuleStats) -> None:
        """Record one counted closed answer into the matrix.

        Before the cell is written, the answer is scored against every
        *comparable* rule the member answered before: support is
        antitone in the rule body, so for bodies ``general ⊂
        specific`` any reported ``supp(specific) − supp(general)``
        above zero is impossible under a coherent personal database,
        and equal bodies must report equal supports. The running
        violation mean is the member's incoherence.
        """
        cells = self._answers.setdefault(member_id, {})
        body = rule.body
        violation = self._violation.get(member_id, 0.0)
        pairs = self._pairs.get(member_id, 0)
        for other_rule, other_stats in cells.items():
            other_body = other_rule.body
            if body < other_body:
                gap = other_stats.support - stats.support
            elif other_body < body:
                gap = stats.support - other_stats.support
            elif body == other_body and other_rule != rule:
                gap = abs(stats.support - other_stats.support)
            else:
                continue
            pairs += 1
            # Only the magnitude beyond the margin counts: honest
            # noise/Likert flips are bounded and land inside it.
            violation += max(0.0, gap - self.coherence_margin)
        self._violation[member_id] = violation
        self._pairs[member_id] = pairs
        cells[rule] = stats
        self._since_estimate += 1

    def incoherence_of(self, member_id: str) -> float:
        """Shrunk beyond-margin violation mean over comparable pairs."""
        pairs = self._pairs.get(member_id, 0)
        if pairs == 0:
            return 0.0
        return self._violation[member_id] / (pairs + self.coherence_prior)

    def observe_malformed(self, member_id: str) -> None:
        """Record one unparseable reply (a strike with no coordinates)."""
        self._malformed[member_id] = self._malformed.get(member_id, 0) + 1
        self._since_estimate += 1

    def answers_observed(self, member_id: str) -> int:
        """Observations on record for the member (malformed included)."""
        return len(self._answers.get(member_id, ())) + self._malformed.get(
            member_id, 0
        )

    # -- estimation -----------------------------------------------------------

    def due(self) -> bool:
        """True when enough observations accumulated for a re-estimation."""
        return self._since_estimate >= self.reestimate_every

    @property
    def estimates(self) -> int:
        """Re-estimations run so far."""
        return self._estimates

    def reestimate(self) -> bool:
        """Re-fit abilities and truths; returns True when trust moved.

        Deterministic: members and rules enter the solver in sorted
        order, and the fit is a pure function of the matrix.
        """
        self._since_estimate = 0
        self._estimates += 1
        abilities = self._fit()
        changed = False
        trust_after: dict[str, float] = {}
        for member_id, ability in abilities.items():
            self._ability[member_id] = ability
            trust = self._trust_from(ability)
            if trust != 1.0:
                trust_after[member_id] = trust
        if trust_after != self._trust:
            changed = True
            self._trust = trust_after
            self.version += 1
        return changed

    def _fit(self) -> dict[str, MemberAbility]:
        """One full coordinate-ascent fit over the current matrix."""
        members = sorted(self._answers)
        member_index = {m: i for i, m in enumerate(members)}
        rule_order: dict[Rule, int] = {}
        rows: list[int] = []
        cols: list[int] = []
        values: list[tuple[float, float]] = []
        for member_id in members:
            cells = self._answers[member_id]
            for rule in sorted(cells, key=Rule.sort_key):
                index = rule_order.setdefault(rule, len(rule_order))
                rows.append(member_index[member_id])
                cols.append(index)
                values.append(cells[rule].as_tuple())
        abilities: dict[str, MemberAbility] = {}
        if values:
            incoherence = np.array(
                [self.incoherence_of(member_id) for member_id in members]
            )
            sigma, bias = self._solve(
                np.array(rows),
                np.array(cols),
                np.array(values),
                n_members=len(members),
                n_rules=len(rule_order),
                incoherence=incoherence,
            )
            for member_id, i in member_index.items():
                abilities[member_id] = MemberAbility(
                    sigma=float(sigma[i]),
                    bias=(float(bias[i, 0]), float(bias[i, 1])),
                    answers=len(self._answers[member_id]),
                    malformed=self._malformed.get(member_id, 0),
                    incoherence=float(incoherence[i]),
                    comparable_pairs=self._pairs.get(member_id, 0),
                )
        # Members with only malformed strikes never reach the solver
        # but still need an ability record (the garbled-member case).
        for member_id in sorted(self._malformed):
            if member_id not in abilities:
                abilities[member_id] = MemberAbility(
                    sigma=1.0,
                    bias=(0.0, 0.0),
                    answers=0,
                    malformed=self._malformed[member_id],
                )
        return abilities

    def _solve(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        x: np.ndarray,
        n_members: int,
        n_rules: int,
        incoherence: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The alternating truth/difficulty/ability updates on the matrix."""
        answers_per_rule = np.bincount(cols, minlength=n_rules)
        # Residuals against a rule only one member answered are zero by
        # construction (the truth *is* that answer); excluding them
        # keeps lone answers from deflating the scale estimates.
        fit_mask = answers_per_rule[cols] >= 2
        fit_counts = np.bincount(
            rows[fit_mask], minlength=n_members
        ).astype(float)
        rule_fit_counts = np.bincount(
            cols[fit_mask], minlength=n_rules
        ).astype(float)
        prior_tau2 = self.prior_tau**2
        # The coherence anchor: a member's noise scale is floored by
        # their own antitonicity violations, so fabricated answer mass
        # enters every truth step pre-discounted. Without this floor
        # the fit rewards raw self-consistency and a tight collusion
        # ring out-competes a heterogeneous honest crowd near 50%.
        anchor2 = (
            1.0
            + self.anchor_gain
            * np.maximum(0.0, incoherence - self.coherence_tolerance)
        ) ** 2
        sigma2 = anchor2.copy()  # relative: 1 = typical honest
        tau2 = np.full(n_rules, prior_tau2)  # absolute per-rule scatter
        bias = np.zeros((n_members, 2))
        truth = np.zeros((n_rules, 2))
        member_denom = fit_counts + self.prior_strength
        rule_denom = rule_fit_counts + self.prior_strength
        for _ in range(self.max_iterations):
            # Truth step: precision-weighted mean of bias-corrected
            # answers. The small ridge keeps weights finite when a
            # member's residuals collapse to zero.
            w = 1.0 / (sigma2[rows] * tau2[cols] + 1e-8)
            corrected = x - bias[rows]
            total_w = np.bincount(cols, weights=w, minlength=n_rules)
            new_truth = np.stack(
                [
                    np.bincount(cols, weights=w * corrected[:, 0], minlength=n_rules),
                    np.bincount(cols, weights=w * corrected[:, 1], minlength=n_rules),
                ],
                axis=1,
            ) / total_w[:, None]
            shift = float(np.max(np.abs(new_truth - truth))) if n_rules else 0.0
            truth = new_truth
            # Bias step: shrunk mean residual, multi-answer rules only.
            residual = x - truth[cols]
            bias = (
                np.stack(
                    [
                        np.bincount(
                            rows[fit_mask],
                            weights=residual[fit_mask, 0],
                            minlength=n_members,
                        ),
                        np.bincount(
                            rows[fit_mask],
                            weights=residual[fit_mask, 1],
                            minlength=n_members,
                        ),
                    ],
                    axis=1,
                )
                / member_denom[:, None]
            )
            centred = residual - bias[rows]
            squared = np.sum(centred**2, axis=1) / 2.0
            # Difficulty step: mean squared residual per rule,
            # standardized by each author's relative skill, shrunk
            # toward the prior scatter.
            tau2 = (
                np.bincount(
                    cols[fit_mask],
                    weights=squared[fit_mask] / sigma2[rows[fit_mask]],
                    minlength=n_rules,
                )
                + self.prior_strength * prior_tau2
            ) / rule_denom
            tau2 = np.maximum(tau2, 1e-6)
            # Ability step: *median* standardized squared residual per
            # member, shrunk toward honest 1. The median is the robust
            # part: an honest member whose personal habits put a few
            # answers far from the crowd mean has a handful of huge
            # residuals but a typical one near 1, while a spammer or
            # colluder is wrong on *most* rules — exactly what the
            # median separates. (Mean scoring condemns legitimate
            # minority-habit members on heterogeneous domains.)
            # ln 2 is the median of the squared-residual statistic
            # under the model (χ²₂/2), so honest medians centre on 1.
            std_sq = squared / tau2[cols]
            typical = np.ones(n_members)
            for i in range(n_members):
                values = std_sq[fit_mask & (rows == i)]
                if values.size:
                    typical[i] = float(np.median(values)) / float(np.log(2.0))
            sigma2 = (
                fit_counts * typical + self.prior_strength * 1.0
            ) / member_denom
            sigma2 = np.maximum(sigma2, anchor2)
            if shift <= self.convergence_tol:
                break
        return np.sqrt(sigma2), bias

    # -- the trust-source protocol --------------------------------------------

    def _trust_from(self, ability: MemberAbility) -> float:
        """Map a posterior ability to a trust weight in ``(0, 1]``."""
        # The coherence term is the unpoisonable one: it is computed
        # from the member's own answers alone, so no fabricated
        # majority can shift it. Honest members sit at (or within
        # tolerance of) zero and keep exact unit trust.
        excess = self.coherence_weight * max(
            0.0, ability.incoherence - self.coherence_tolerance
        )
        excess += max(0.0, ability.sigma - self.sigma_tolerance)
        excess += max(0.0, ability.bias_magnitude - self.bias_tolerance)
        observed = ability.answers + ability.malformed
        if observed > 0:
            malformed_rate = ability.malformed / observed
            excess += max(0.0, malformed_rate - self.malformed_tolerance)
        if excess == 0.0:
            return 1.0
        return 1.0 / (1.0 + self.severity * excess)

    def trust(self, member_id: str) -> float:
        """Trust weight in ``(0, 1]``; exactly 1.0 for honest-fitting members."""
        if member_id in self._quarantined:
            return 0.0
        return self._trust.get(member_id, 1.0)

    def ability_of(self, member_id: str) -> MemberAbility | None:
        """The member's latest posterior ability (``None`` before any fit)."""
        return self._ability.get(member_id)

    def abilities(self) -> list[tuple[str, MemberAbility]]:
        """All posterior abilities from the latest fit, sorted by member."""
        return sorted(self._ability.items())

    # -- quarantine -----------------------------------------------------------

    def should_quarantine(self, member_id: str) -> bool:
        """True when the member's posterior ability warrants exile."""
        if member_id in self._quarantined:
            return False
        if self.answers_observed(member_id) < self.min_answers:
            return False
        return self.trust(member_id) < self.trust_floor

    def quarantine_candidates(self) -> list[str]:
        """Members due for quarantine after the latest re-estimation.

        Sorted for deterministic sweep order.
        """
        return sorted(
            member_id
            for member_id in self._trust
            if self.should_quarantine(member_id)
        )

    def mark_quarantined(self, member_id: str) -> None:
        """Record the quarantine decision (trust pinned to 0)."""
        self._quarantined.add(member_id)
        self.version += 1

    def is_quarantined(self, member_id: str) -> bool:
        """True when the member has been quarantined."""
        return member_id in self._quarantined

    @property
    def quarantined(self) -> set[str]:
        """Members quarantined so far (a copy)."""
        return set(self._quarantined)

    def __repr__(self) -> str:
        return (
            f"LatentAbilityModel({len(self._answers)} members, "
            f"{self._estimates} estimates, "
            f"{len(self._quarantined)} quarantined)"
        )
