"""Robustness layer: adversarial answers, fault injection, quality control.

Everything the happy-path miner assumes — honest-but-noisy members,
answers that parse, members that stay — is broken somewhere in here, on
purpose. The package splits into:

- :mod:`repro.faults.adversaries` — answer behaviour gone wrong
  (collusion rings, drifting noise, lazy extremes, garbled text);
- :mod:`repro.faults.injector` — transport/membership faults on the
  dispatch timeline (crashes, churn waves, duplicate deliveries);
- :mod:`repro.faults.quality` — the legacy defence: gold probes,
  outlier scores, trust weights and quarantine (reference-based, so
  poisonable — see EXPERIMENTS.md E8-R);
- :mod:`repro.faults.latent` — the gold-free defence: joint
  latent-ability / rule-truth estimation over the full answer matrix
  (Dawid–Skene-style), the miner's default trust model.

:func:`build_adversarial_crowd` assembles a crowd with a declared
adversary mix; :func:`parse_adversary_mix` reads the CLI's
``name:fraction,...`` spec.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng
from repro.crowd.answer_models import AnswerModel, ExactAnswerModel, SpammerAnswerModel
from repro.crowd.crowd import SimulatedCrowd
from repro.crowd.member import SimulatedMember
from repro.crowd.open_behavior import OpenAnswerPolicy
from repro.errors import ConfigurationError
from repro.faults.adversaries import (
    CollusionRing,
    ColludingSpammerModel,
    DriftingAnswerModel,
    GarbledMember,
    LazyExtremesModel,
    garbage_text,
)
from repro.faults.injector import FaultInjector, FaultPlan, periodic_plan
from repro.faults.latent import LatentAbilityModel, MemberAbility
from repro.faults.quality import CompositeTrust, MemberQuality, QualityController
from repro.synth.population import Population

__all__ = [
    "ADVERSARY_ROLES",
    "CollusionRing",
    "ColludingSpammerModel",
    "CompositeTrust",
    "DriftingAnswerModel",
    "FaultInjector",
    "FaultPlan",
    "GarbledMember",
    "LatentAbilityModel",
    "LazyExtremesModel",
    "MemberAbility",
    "MemberQuality",
    "QualityController",
    "build_adversarial_crowd",
    "garbage_text",
    "parse_adversary_mix",
    "periodic_plan",
]

#: Adversary role names accepted by the mix spec, in assignment order.
ADVERSARY_ROLES = ("spammer", "colluder", "drifter", "lazy", "garbled")


def parse_adversary_mix(spec: str) -> tuple[tuple[str, float], ...]:
    """Parse an adversary-mix spec like ``"spammer:0.2,colluder:0.1"``.

    Returns ``(role, fraction)`` pairs. Roles must come from
    :data:`ADVERSARY_ROLES`; fractions must be in [0, 1] and sum to at
    most 1 (the rest of the crowd stays honest). An empty/blank spec is
    the empty mix.
    """
    spec = spec.strip()
    if not spec:
        return ()
    mix: list[tuple[str, float]] = []
    seen: set[str] = set()
    for part in spec.split(","):
        role, sep, amount = part.strip().partition(":")
        role = role.strip().lower()
        if not sep:
            raise ConfigurationError(
                f"adversary mix entry {part.strip()!r} must be 'role:fraction'"
            )
        if role not in ADVERSARY_ROLES:
            raise ConfigurationError(
                f"unknown adversary role {role!r}; "
                f"expected one of {', '.join(ADVERSARY_ROLES)}"
            )
        if role in seen:
            raise ConfigurationError(f"adversary role {role!r} given twice")
        seen.add(role)
        try:
            fraction = float(amount)
        except ValueError:
            raise ConfigurationError(
                f"bad fraction {amount.strip()!r} for role {role!r}"
            ) from None
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"fraction for role {role!r} must be in [0, 1], got {fraction}"
            )
        if fraction > 0.0:
            mix.append((role, fraction))
    total = sum(fraction for _, fraction in mix)
    if total > 1.0 + 1e-9:
        raise ConfigurationError(
            f"adversary fractions sum to {total:.3f} > 1; "
            "some of the crowd must stay honest"
        )
    return tuple(mix)


def build_adversarial_crowd(
    population: Population,
    mix: tuple[tuple[str, float], ...] = (),
    *,
    answer_model: AnswerModel | None = None,
    open_policy: OpenAnswerPolicy | None = None,
    patience: int | None = None,
    seed: int | np.random.Generator | None = None,
    garbled_rate: float = 1.0,
) -> tuple[SimulatedCrowd, dict[str, str]]:
    """A crowd where a declared fraction of members are adversaries.

    ``mix`` is a tuple of ``(role, fraction)`` pairs (see
    :func:`parse_adversary_mix`); roles are assigned to members by a
    seeded permutation, everyone else keeps the honest
    ``answer_model``. Colluders all share one
    :class:`~repro.faults.adversaries.CollusionRing`; each drifter gets
    its own (stateful) :class:`DriftingAnswerModel`; garbled members
    wrap the honest model and emit unparseable text at
    ``garbled_rate``.

    Returns ``(crowd, roles)`` where ``roles`` maps member id →
    assigned role (``"honest"`` included) — the ground truth benchmarks
    score quarantine precision against.

    With an empty ``mix`` the construction draws exactly the same
    random stream as :meth:`SimulatedCrowd.from_population`, so the
    resulting crowd is byte-identical to the standard honest build.
    """
    rng = as_rng(seed)
    open_policy = open_policy or OpenAnswerPolicy()
    pop_members = list(population)
    n = len(pop_members)
    roles = ["honest"] * n
    ring: CollusionRing | None = None
    if mix:
        mix = tuple(mix)
        for role, fraction in mix:
            if role not in ADVERSARY_ROLES:
                raise ConfigurationError(f"unknown adversary role {role!r}")
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"fraction for role {role!r} must be in [0, 1], got {fraction}"
                )
        order = [int(i) for i in rng.permutation(n)]
        cursor = 0
        for role, fraction in mix:
            count = min(int(round(fraction * n)), n - cursor)
            for idx in order[cursor : cursor + count]:
                roles[idx] = role
            cursor += count
        if any(role == "colluder" for role in roles):
            ring = CollusionRing(seed=int(rng.integers(2**63)))

    honest_model = answer_model or ExactAnswerModel()
    members = []
    role_of: dict[str, str] = {}
    for k, pop_member in enumerate(pop_members):
        role = roles[k]
        role_of[pop_member.member_id] = role
        if role == "spammer":
            model = SpammerAnswerModel()
        elif role == "colluder":
            assert ring is not None
            model = ring.member_model()
        elif role == "drifter":
            model = DriftingAnswerModel()
        elif role == "lazy":
            model = LazyExtremesModel()
        else:  # honest and garbled both answer through the honest model
            model = honest_model
        member = SimulatedMember(
            member_id=pop_member.member_id,
            db=pop_member.db,
            answer_model=model,
            open_policy=open_policy,
            patience=patience,
            seed=rng.integers(2**63),
        )
        if role == "garbled":
            member = GarbledMember(
                member, rate=garbled_rate, seed=int(rng.integers(2**63))
            )
        members.append(member)
    return SimulatedCrowd(members, seed=rng), role_of
