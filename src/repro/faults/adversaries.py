"""Adversarial answer behaviour: the crowd at its worst.

The stock answer models (:mod:`repro.crowd.answer_models`) are honest
but imprecise. Real crowds also contain *adversaries* — workers whose
answers are wrong in structured, correlated, or outright unparseable
ways. This module provides the four families the robustness layer is
tested against:

- :class:`CollusionRing` / :class:`ColludingSpammerModel` — a group of
  spammers sharing one fabricated stats profile, so their lies agree
  with each other (majority voting and plain averaging cannot expose
  them; gold probes can);
- :class:`DriftingAnswerModel` — a worker whose noise grows with every
  question answered (fatigue / disengagement), starting out honest and
  ending up useless;
- :class:`LazyExtremesModel` — a worker who snaps every answer to the
  Likert extremes ("never" / "very often"), destroying all resolution
  near the thresholds;
- :class:`GarbledMember` — a member whose replies are sometimes (or
  always) unparseable text, exercising the miner's validation gate end
  to end through the real NL parse path.

All models stay *representable*: they route their output through
:func:`~repro.crowd.answer_models.coherent_stats`, because the
interesting adversaries are the ones the type system cannot reject.
Everything is driven by seeded generators, so adversarial sessions
replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import as_rng, check_fraction, check_nonnegative
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.crowd.answer_models import AnswerModel, coherent_stats
from repro.crowd.member import SimulatedMember
from repro.crowd.questions import (
    ClosedAnswer,
    ClosedQuestion,
    MalformedAnswer,
    OpenAnswer,
    OpenQuestion,
)
from repro.crowd.stream import parse_stats


class CollusionRing:
    """A shared fabricated stats profile for a group of spammers.

    The ring fabricates one ``(support, confidence)`` pair per rule
    (drawn once from the ring's own generator, then cached), so every
    colluding member reports *the same lie* about the same rule, up to
    a small per-answer jitter. That coordination is what separates
    collusion from independent spam: colluders corroborate each other,
    inflating the apparent sample agreement.
    """

    def __init__(self, seed: int | np.random.Generator | None = None,
                 jitter: float = 0.02) -> None:
        self._rng = as_rng(seed)
        self.jitter = check_nonnegative(jitter, "jitter")
        self._profile: dict[Rule, RuleStats] = {}

    def fabricated_stats(self, rule: Rule) -> RuleStats:
        """The ring's agreed-upon lie about ``rule`` (stable per rule)."""
        stats = self._profile.get(rule)
        if stats is None:
            a, b = sorted(self._rng.random(2))
            stats = self._profile[rule] = RuleStats(float(a), float(b))
        return stats

    def member_model(self) -> "ColludingSpammerModel":
        """A fresh answer model wired to this ring."""
        return ColludingSpammerModel(self)

    def __repr__(self) -> str:
        return f"CollusionRing({len(self._profile)} fabricated rules)"


class ColludingSpammerModel(AnswerModel):
    """One member of a :class:`CollusionRing`.

    Ignores the member's true stats entirely and reports the ring's
    fabricated profile for the rule, plus member-local jitter (two
    colluders are coordinated, not byte-identical). Closed questions
    carry the rule through ``report_rule``; plain ``report`` calls
    (open answers, unknown rule) degrade to independent spam.
    """

    def __init__(self, ring: CollusionRing) -> None:
        self.ring = ring

    def report_rule(
        self, rule: Rule, stats: RuleStats, rng: np.random.Generator
    ) -> RuleStats:
        """The ring's lie about ``rule``, jittered per answer."""
        fabricated = self.ring.fabricated_stats(rule)
        if self.ring.jitter == 0.0:
            return fabricated
        return coherent_stats(
            fabricated.support + rng.normal(0.0, self.ring.jitter),
            fabricated.confidence + rng.normal(0.0, self.ring.jitter),
        )

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        a, b = sorted(rng.random(2))
        return RuleStats(float(a), float(b))

    def __repr__(self) -> str:
        return f"ColludingSpammerModel({self.ring!r})"


class DriftingAnswerModel(AnswerModel):
    """Noise that grows with every answer (worker fatigue).

    The first answers carry ``initial_sigma`` of Gaussian noise; each
    subsequent answer adds ``drift`` to the sigma, capped at
    ``max_sigma``. Early evidence from a drifting worker is fine —
    which is exactly why static screening misses them and running
    quality scores are needed.
    """

    def __init__(
        self,
        initial_sigma: float = 0.02,
        drift: float = 0.02,
        max_sigma: float = 0.6,
    ) -> None:
        self.initial_sigma = check_nonnegative(initial_sigma, "initial_sigma")
        self.drift = check_nonnegative(drift, "drift")
        self.max_sigma = check_nonnegative(max_sigma, "max_sigma")
        self._answered = 0

    @property
    def current_sigma(self) -> float:
        """The noise level the *next* answer will carry."""
        return min(self.max_sigma, self.initial_sigma + self.drift * self._answered)

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        sigma = self.current_sigma
        self._answered += 1
        if sigma == 0.0:
            return stats
        return coherent_stats(
            stats.support + rng.normal(0.0, sigma),
            stats.confidence + rng.normal(0.0, sigma),
        )

    def __repr__(self) -> str:
        return (
            f"DriftingAnswerModel(initial_sigma={self.initial_sigma}, "
            f"drift={self.drift}, max_sigma={self.max_sigma})"
        )


class LazyExtremesModel(AnswerModel):
    """Everything snaps to the Likert extremes.

    The minimal-effort worker: "never" for anything they do less than
    half the time, "very often" for the rest. Individually coherent,
    collectively poisonous — extremes systematically exaggerate both
    tails, biasing borderline rules across the thresholds.
    """

    def __init__(self, split: float = 0.5) -> None:
        check_fraction(split, "split")
        self.split = float(split)

    def _snap(self, value: float) -> float:
        return 0.0 if value < self.split else 1.0

    def report(self, stats: RuleStats, rng: np.random.Generator) -> RuleStats:
        return coherent_stats(
            self._snap(stats.support), self._snap(stats.confidence)
        )

    def __repr__(self) -> str:
        return f"LazyExtremesModel(split={self.split})"


def garbage_text(rng: np.random.Generator) -> str:
    """One deterministic line of unparseable answer text.

    Drawn from the failure modes real free-text answers exhibit: prose
    instead of numbers, numbers out of range or incoherent
    (confidence < support), wrong arity, stray punctuation.
    """
    pools = (
        "i dunno maybe",
        "yes",
        "0.9 0.2",  # incoherent: confidence below support
        "often often often",
        "1.5 2.0",  # out of range
        "???",
        "0.3;0.6",
        "about half the time i guess",
        "-> ; often",
        "NaN NaN",
    )
    return pools[int(rng.integers(len(pools)))]


@dataclass
class GarbledMember:
    """A member whose replies are sometimes unparseable text.

    Wraps an inner :class:`~repro.crowd.member.SimulatedMember` and,
    with probability ``rate`` per question, replaces the real answer
    with garbage text run through the *actual* stream-protocol parser
    (:func:`~repro.crowd.stream.parse_stats`), yielding the same
    :class:`~repro.crowd.questions.MalformedAnswer` a live front-end
    would produce. ``rate=1.0`` is the pure malformed-NL responder.

    Implements the member protocol by delegation, so it drops into a
    :class:`~repro.crowd.crowd.SimulatedCrowd` unchanged.
    """

    inner: SimulatedMember
    rate: float = 1.0
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        check_fraction(self.rate, "rate")
        self._rng = as_rng(self.seed)

    # -- member protocol ------------------------------------------------------

    @property
    def member_id(self) -> str:
        return self.inner.member_id

    @property
    def questions_answered(self) -> int:
        return self.inner.questions_answered

    @property
    def is_available(self) -> bool:
        return self.inner.is_available

    def leave(self) -> None:
        self.inner.leave()

    def _garbled(self, question) -> MalformedAnswer:
        text = garbage_text(self._rng)
        try:
            parse_stats(text)
        except ValueError as exc:
            return MalformedAnswer(self.member_id, question, text, str(exc))
        raise AssertionError(f"garbage pool produced parseable text {text!r}")

    def answer_closed(
        self, question: ClosedQuestion
    ) -> ClosedAnswer | MalformedAnswer:
        answer = self.inner.answer_closed(question)
        if self._rng.random() < self.rate:
            return self._garbled(question)
        return answer

    def answer_open(
        self, question: OpenQuestion, exclude: set[Rule] | None = None
    ) -> OpenAnswer | MalformedAnswer:
        answer = self.inner.answer_open(question, exclude=exclude)
        if self._rng.random() < self.rate:
            return self._garbled(question)
        return answer
