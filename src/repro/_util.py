"""Small internal utilities shared across the library.

Nothing here is part of the public API; import from the concrete
subpackages instead.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

import numpy as np

from repro.errors import InvalidThresholdError

T = TypeVar("T")


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy. Centralizing this lets every stochastic
    component take a uniform ``seed=`` argument while remaining
    composable: components that spawn sub-components pass their own
    generator down so a single top-level seed makes a whole experiment
    deterministic.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as ``float``.

    Raises :class:`~repro.errors.InvalidThresholdError` otherwise; used
    for supports, confidences, probabilities and mixing ratios.
    """
    value = float(value)
    if not 0.0 <= value <= 1.0 or not np.isfinite(value):
        raise InvalidThresholdError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if int(value) != value or value <= 0:
        raise InvalidThresholdError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite non-negative number."""
    value = float(value)
    if value < 0 or not np.isfinite(value):
        raise InvalidThresholdError(f"{name} must be non-negative, got {value!r}")
    return value


def clamp01(value: float) -> float:
    """Clamp ``value`` into the closed unit interval."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return float(value)


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate ``items`` preserving first-seen order."""
    seen: set[T] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def weighted_choice(
    rng: np.random.Generator, options: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one of ``options`` with probability proportional to ``weights``.

    Falls back to a uniform choice when all weights are zero (or the
    weight vector is degenerate), which is the behaviour the sampling
    call-sites want: "no preference" rather than an error.
    """
    if len(options) != len(weights):
        raise ValueError("options and weights must have equal length")
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        index = int(rng.integers(len(options)))
    else:
        index = int(rng.choice(len(options), p=w / total))
    return options[index]
