"""Counters, timers and trace events for the mining hot paths.

The knowledge base and the main loop are the per-question inner loop of
the whole system; regressions there are invisible in unit tests and
only show up as benchmark drift months later. :class:`Instrumentation`
makes them measurable *in production*: named monotonic counters, named
accumulating wall-clock timers, and (optionally) a per-event trace fed
to a pluggable sink.

The overhead budget is a dict update per counted event and two
``perf_counter`` calls per timed block, so the layer can stay on
unconditionally. Trace events are the only potentially expensive part;
they are skipped entirely unless a sink is installed.

Canonical names used by the miner (see ``docs/design_notes.md``):

- counters ``miner.questions``, ``miner.closed``, ``miner.open``,
  ``miner.dry_opens``, ``kb.rules_added``, ``kb.reassessments``,
  ``kb.inferred``, ``kb.summary_hits``, ``kb.summary_misses``;
- timers ``miner.step``, ``miner.select``, ``kb.record``,
  ``kb.propagate``.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence: a name plus arbitrary payload fields."""

    name: str
    fields: Mapping[str, object]


#: A trace sink is any callable consuming :class:`TraceEvent`.
TraceSink = Callable[[TraceEvent], None]


@dataclass(frozen=True, slots=True)
class TimerStats:
    """Accumulated wall-clock time of one named code region."""

    calls: int
    total_seconds: float

    @property
    def mean_ms(self) -> float:
        """Mean milliseconds per call (0 when never entered)."""
        if self.calls == 0:
            return 0.0
        return 1_000.0 * self.total_seconds / self.calls


@dataclass(frozen=True, slots=True)
class ObsSnapshot:
    """An immutable copy of all counters and timers at one instant."""

    counters: dict[str, int]
    timers: dict[str, TimerStats]

    def format(self) -> str:
        """A compact human-readable rendering (one line per entry)."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]}")
        for name in sorted(self.timers):
            stats = self.timers[name]
            lines.append(
                f"  {name:<24} {stats.calls} calls, "
                f"{stats.total_seconds:.3f}s total, {stats.mean_ms:.3f} ms/call"
            )
        return "\n".join(lines)


class _Timer:
    """A reusable context manager accumulating one region's wall time.

    Not re-entrant: nested entry of the *same* timer would double-count
    the inner span. The miner's timed regions never self-nest.
    """

    __slots__ = ("calls", "total_seconds", "_started")

    def __init__(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.total_seconds += time.perf_counter() - self._started
        self.calls += 1


class Instrumentation:
    """One session's observability state.

    Parameters
    ----------
    sink:
        Optional callable receiving every :class:`TraceEvent`. With no
        sink, :meth:`emit` is a near-free early return, so per-question
        tracing costs nothing unless someone is listening.
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, _Timer] = {}
        self._sink = sink

    # -- counters ------------------------------------------------------------

    def count(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 when never counted)."""
        return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------------

    def timer(self, name: str) -> _Timer:
        """The accumulating timer for ``name`` (use as context manager)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = _Timer()
        return timer

    # -- trace events --------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when a trace sink is installed."""
        return self._sink is not None

    def emit(self, name: str, **fields: object) -> None:
        """Send one trace event to the sink (no-op without a sink)."""
        if self._sink is None:
            return
        self._sink(TraceEvent(name, fields))

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """An immutable copy of every counter and timer right now."""
        return ObsSnapshot(
            counters=dict(self._counters),
            timers={
                name: TimerStats(timer.calls, timer.total_seconds)
                for name, timer in self._timers.items()
            },
        )


class RecordingSink:
    """A list-backed trace sink for tests and offline analysis.

    >>> sink = RecordingSink()
    >>> obs = Instrumentation(sink=sink)
    >>> obs.emit("question", index=0, kind="closed")
    >>> sink.events[0].name
    'question'
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)
