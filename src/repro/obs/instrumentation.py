"""Counters, timers, gauges, histograms and trace events for hot paths.

The knowledge base and the main loop are the per-question inner loop of
the whole system; regressions there are invisible in unit tests and
only show up as benchmark drift months later. :class:`Instrumentation`
makes them measurable *in production*: named monotonic counters, named
accumulating wall-clock timers, named gauges (a level plus its
high-water mark), named histograms (bucketed value distributions), and
(optionally) a per-event trace fed to a pluggable sink.

The overhead budget is a dict update per counted event and two
``perf_counter`` calls per timed block, so the layer can stay on
unconditionally. Trace events are the only potentially expensive part;
they are skipped entirely unless a sink is installed.

Canonical names used by the miner (see ``docs/design_notes.md``):

- counters ``miner.questions``, ``miner.closed``, ``miner.open``,
  ``miner.dry_opens``, ``kb.rules_added``, ``kb.reassessments``,
  ``kb.inferred``, ``kb.summary_hits``, ``kb.summary_misses``;
- timers ``miner.step``, ``miner.select``, ``kb.record``,
  ``kb.propagate``.

The asynchronous dispatch engine (``repro.dispatch``, see
``docs/dispatch.md``) adds counters ``dispatch.issued``,
``dispatch.timeouts``, ``dispatch.retries``, ``dispatch.stale``,
``dispatch.late``, ``dispatch.dropped``, the gauge
``dispatch.in_flight`` and the histogram ``dispatch.latency``
(simulated seconds from issue to answer arrival).

The robustness layer (``repro.faults``, see ``docs/robustness.md``)
adds:

- validation-gate counters ``answers.malformed`` (unparseable answers
  dropped at ingest) and ``quality.rejected`` (answers from
  quarantined members dropped at ingest);
- quality-loop counters ``quality.gold`` (gold probes answered),
  ``quality.gold_failed`` (probes outside the gold tolerance) and
  ``quality.quarantined`` (members quarantined);
- evidence-release counters ``kb.members_purged`` and
  ``kb.answers_purged`` plus the timer ``kb.purge``;
- dispatcher fault-surface counters ``dispatch.crashed`` (in-flight
  questions lost to member crashes) and ``dispatch.duplicates``
  (at-least-once redeliveries discarded by the token guard);
- injector counters ``faults.crashes``, ``faults.churned``,
  ``faults.duplicates`` and ``faults.noops`` (a scheduled fault that
  found no victim).

The persistence layer (``repro.storage``, see ``docs/persistence.md``)
adds counters ``storage.checkpoints``, ``storage.bytes_written``,
``storage.answers_logged`` and ``storage.restores``, timers
``storage.checkpoint`` and ``storage.restore``, and the gauge
``storage.bytes_on_disk``. Its degradation-and-repair surface (the
chaos PR, see ``docs/robustness.md``) adds ``storage.append_failures``
(log appends refused by the backend, backlogged in memory),
``storage.checkpoint_failures`` (saves that raised — the session
continues degraded) and ``storage.repaired`` (corrupt checkpoints
dropped by ``--repair`` on resume).

The serving surface (``repro.serve``, see ``docs/serving.md``) adds
``serve.retries`` (timed-out questions reissued), ``serve.gone``
(members who left instead of answering), ``serve.dedup_hits``
(requests folded into a previous delivery by their idempotency key)
and ``serve.backpressure_rejections`` (fetches shed with 429 at the
``max_outstanding`` bound).

The chaos layer (``repro.chaos``, injected faults — these count what
was *done to* the system, not what it did) adds
``chaos.storage.torn``, ``chaos.storage.bitflip``,
``chaos.storage.lost`` and ``chaos.storage.disk_full`` via the faulty
backend wrapper, and the chaos client tallies
``chaos.transport.dropped_requests``,
``chaos.transport.dropped_responses``, ``chaos.transport.duplicated``,
``chaos.transport.replayed`` and ``chaos.transport.delayed`` on its
own ``counts`` dict (client-side, outside any session).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traced occurrence: a name plus arbitrary payload fields."""

    name: str
    fields: Mapping[str, object]


#: A trace sink is any callable consuming :class:`TraceEvent`.
TraceSink = Callable[[TraceEvent], None]


@dataclass(frozen=True, slots=True)
class TimerStats:
    """Accumulated wall-clock time of one named code region."""

    calls: int
    total_seconds: float

    @property
    def mean_ms(self) -> float:
        """Mean milliseconds per call (0 when never entered)."""
        if self.calls == 0:
            return 0.0
        return 1_000.0 * self.total_seconds / self.calls


@dataclass(frozen=True, slots=True)
class GaugeStats:
    """A gauge's current level and the highest level it ever reached."""

    value: float
    high_water: float


@dataclass(frozen=True, slots=True)
class HistogramStats:
    """A bucketed distribution of observed values.

    ``buckets`` pairs each upper bucket edge with the number of
    observations at or below it (non-cumulative; the final
    ``float('inf')`` bucket catches the overflow).
    """

    count: int
    total: float
    max_value: float
    buckets: tuple[tuple[float, int], ...]

    @property
    def mean(self) -> float:
        """Mean observed value (0 when nothing was observed)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


@dataclass(frozen=True, slots=True)
class ObsSnapshot:
    """An immutable copy of every instrument's state at one instant."""

    counters: dict[str, int]
    timers: dict[str, TimerStats]
    gauges: dict[str, GaugeStats] = field(default_factory=dict)
    histograms: dict[str, HistogramStats] = field(default_factory=dict)

    def format(self) -> str:
        """A compact human-readable rendering (one line per entry)."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"  {name:<24} {self.counters[name]}")
        for name in sorted(self.gauges):
            stats = self.gauges[name]
            lines.append(
                f"  {name:<24} {stats.value:g} (high water {stats.high_water:g})"
            )
        for name in sorted(self.histograms):
            stats = self.histograms[name]
            lines.append(
                f"  {name:<24} {stats.count} obs, "
                f"mean {stats.mean:.3f}, max {stats.max_value:.3f}"
            )
        for name in sorted(self.timers):
            stats = self.timers[name]
            lines.append(
                f"  {name:<24} {stats.calls} calls, "
                f"{stats.total_seconds:.3f}s total, {stats.mean_ms:.3f} ms/call"
            )
        return "\n".join(lines)


class _Timer:
    """A reusable context manager accumulating one region's wall time.

    Not re-entrant: nested entry of the *same* timer would double-count
    the inner span. The miner's timed regions never self-nest.
    """

    __slots__ = ("calls", "total_seconds", "_started")

    def __init__(self) -> None:
        self.calls = 0
        self.total_seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.total_seconds += time.perf_counter() - self._started
        self.calls += 1


#: Default histogram bucket edges, tuned for simulated crowd latencies
#: (seconds): sub-second UI-speed answers through multi-hour stragglers.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.05,
    0.25,
    1.0,
    5.0,
    30.0,
    120.0,
    600.0,
    3600.0,
)


class _Gauge:
    """A settable level that remembers its high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class _Histogram:
    """Fixed-bucket accumulator for one named value distribution."""

    __slots__ = ("edges", "bucket_counts", "count", "total", "max_value")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        for idx, edge in enumerate(self.edges):
            if value <= edge:
                self.bucket_counts[idx] += 1
                return
        self.bucket_counts[-1] += 1

    def stats(self) -> HistogramStats:
        upper = tuple(self.edges) + (float("inf"),)
        return HistogramStats(
            count=self.count,
            total=self.total,
            max_value=self.max_value,
            buckets=tuple(zip(upper, self.bucket_counts)),
        )


class Instrumentation:
    """One session's observability state.

    Parameters
    ----------
    sink:
        Optional callable receiving every :class:`TraceEvent`. With no
        sink, :meth:`emit` is a near-free early return, so per-question
        tracing costs nothing unless someone is listening.
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, _Timer] = {}
        self._gauges: dict[str, _Gauge] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._sink = sink

    # -- counters ------------------------------------------------------------

    def count(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 when never counted)."""
        return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge's level (high-water mark kept)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = _Gauge()
        gauge.set(value)

    def gauge_value(self, name: str) -> float:
        """Current level of the named gauge (0 when never set)."""
        gauge = self._gauges.get(name)
        return 0.0 if gauge is None else gauge.value

    def gauge_high_water(self, name: str) -> float:
        """High-water mark of the named gauge (0 when never set)."""
        gauge = self._gauges.get(name)
        return 0.0 if gauge is None else gauge.high_water

    # -- histograms ----------------------------------------------------------

    def observe(
        self, name: str, value: float, edges: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        """Record one observation into the named histogram.

        ``edges`` configures the bucket boundaries on the histogram's
        *first* observation; later calls reuse the existing buckets.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = _Histogram(tuple(edges))
        histogram.observe(value)

    # -- timers --------------------------------------------------------------

    def timer(self, name: str) -> _Timer:
        """The accumulating timer for ``name`` (use as context manager)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = _Timer()
        return timer

    # -- trace events --------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when a trace sink is installed."""
        return self._sink is not None

    def emit(self, name: str, **fields: object) -> None:
        """Send one trace event to the sink (no-op without a sink)."""
        if self._sink is None:
            return
        self._sink(TraceEvent(name, fields))

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """An immutable copy of every instrument right now."""
        return ObsSnapshot(
            counters=dict(self._counters),
            timers={
                name: TimerStats(timer.calls, timer.total_seconds)
                for name, timer in self._timers.items()
            },
            gauges={
                name: GaugeStats(gauge.value, gauge.high_water)
                for name, gauge in self._gauges.items()
            },
            histograms={
                name: histogram.stats()
                for name, histogram in self._histograms.items()
            },
        )


class RecordingSink:
    """A list-backed trace sink for tests and offline analysis.

    >>> sink = RecordingSink()
    >>> obs = Instrumentation(sink=sink)
    >>> obs.emit("question", index=0, kind="closed")
    >>> sink.events[0].name
    'question'
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)
