"""Session observability: counters, timers, gauges, histograms, traces.

The miner's per-question hot paths are instrumented through this
package so their cost is measurable in every run — benchmarks, the
evaluation harness and the CLI all read the same counters (see
:mod:`repro.obs.instrumentation` for the canonical names). The
asynchronous dispatch engine additionally reports in-flight gauges and
latency histograms here.
"""

from repro.obs.instrumentation import (
    DEFAULT_BUCKETS,
    GaugeStats,
    HistogramStats,
    Instrumentation,
    ObsSnapshot,
    RecordingSink,
    TimerStats,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "GaugeStats",
    "HistogramStats",
    "Instrumentation",
    "ObsSnapshot",
    "RecordingSink",
    "TimerStats",
    "TraceEvent",
    "TraceSink",
]
