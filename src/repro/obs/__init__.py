"""Session observability: counters, wall-clock timers, trace events.

The miner's per-question hot paths are instrumented through this
package so their cost is measurable in every run — benchmarks, the
evaluation harness and the CLI all read the same counters (see
:mod:`repro.obs.instrumentation` for the canonical names).
"""

from repro.obs.instrumentation import (
    Instrumentation,
    ObsSnapshot,
    RecordingSink,
    TimerStats,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "Instrumentation",
    "ObsSnapshot",
    "RecordingSink",
    "TimerStats",
    "TraceEvent",
    "TraceSink",
]
