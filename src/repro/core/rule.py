"""Association rules over itemsets.

A rule ``A → B`` states that on occasions where the itemset ``A``
happens, ``B`` tends to happen too. In the crowd-mining model, per-user
support is ``supp_u(A ∪ B)`` (how common the whole combination is in
the user's life) and confidence is ``supp_u(A ∪ B) / supp_u(A)`` (how
reliably ``B`` accompanies ``A``).

Rules carry their own *generalization* partial order, derived from the
itemset subset order: ``r ⪯ r'`` (``r`` generalizes ``r'``) when
``r.antecedent ⊆ r'.antecedent`` and ``r.consequent ⊆ r'.consequent``.
Support is antitone along this order — adding items can only shrink
support — which the miner exploits for consistency checks and pruning.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import cached_property

from repro.core.itemset import Itemset
from repro.errors import InvalidRuleError


class Rule:
    """An association rule ``antecedent → consequent``.

    Structural constraints:

    - the consequent is non-empty (a rule must claim something);
    - antecedent and consequent are disjoint;
    - the antecedent *may* be empty, in which case the rule degenerates
      to a plain frequent-itemset claim (confidence equals support).

    Examples
    --------
    >>> r = Rule.parse("sore throat -> ginger tea, honey")
    >>> str(r)
    '{sore throat} -> {ginger tea, honey}'
    >>> r.body == Itemset(["sore throat", "ginger tea", "honey"])
    True
    """

    __slots__ = ("_antecedent", "_consequent", "_hash", "__dict__")

    def __init__(
        self,
        antecedent: Itemset | Iterable[str],
        consequent: Itemset | Iterable[str],
    ) -> None:
        antecedent = Itemset(antecedent)
        consequent = Itemset(consequent)
        if not consequent:
            raise InvalidRuleError("rule consequent must be non-empty")
        if not antecedent.isdisjoint(consequent):
            overlap = antecedent & consequent
            raise InvalidRuleError(
                f"antecedent and consequent must be disjoint; both contain {overlap}"
            )
        self._antecedent = antecedent
        self._consequent = consequent
        self._hash = hash((antecedent, consequent))

    # -- accessors ---------------------------------------------------------------

    @property
    def antecedent(self) -> Itemset:
        """The ``A`` of ``A → B``; may be empty."""
        return self._antecedent

    @property
    def consequent(self) -> Itemset:
        """The ``B`` of ``A → B``; never empty."""
        return self._consequent

    @cached_property
    def body(self) -> Itemset:
        """All items of the rule: ``A ∪ B``. Support is computed over this."""
        return self._antecedent | self._consequent

    @property
    def is_itemset_rule(self) -> bool:
        """True when the antecedent is empty (plain itemset-frequency claim)."""
        return not self._antecedent

    def __len__(self) -> int:
        return len(self.body)

    # -- equality / ordering -----------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> tuple[Itemset, Itemset]:
        # The cached hash is salted per-process; the cached ``body``
        # (held in ``__dict__``) is dropped and recomputed lazily.
        return (self._antecedent, self._consequent)

    def __setstate__(self, state: tuple[Itemset, Itemset]) -> None:
        self._antecedent, self._consequent = state
        self._hash = hash((self._antecedent, self._consequent))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Rule):
            return (
                self._antecedent == other._antecedent
                and self._consequent == other._consequent
            )
        return NotImplemented

    def generalizes(self, other: "Rule") -> bool:
        """True when ``self ⪯ other`` in the rule generalization order.

        ``self`` generalizes ``other`` iff each side of ``self`` is a
        subset of the corresponding side of ``other``. A rule
        generalizes itself.
        """
        return self._antecedent.issubset(other._antecedent) and self._consequent.issubset(
            other._consequent
        )

    def specializes(self, other: "Rule") -> bool:
        """True when ``other`` generalizes ``self``."""
        return other.generalizes(self)

    # -- display -------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Rule({list(self._antecedent.items)!r}, {list(self._consequent.items)!r})"

    def __str__(self) -> str:
        return f"{self._antecedent} -> {self._consequent}"

    def sort_key(self) -> tuple:
        """A deterministic sort key (by size then lexicographic items)."""
        return (
            len(self.body),
            self._antecedent.items,
            self._consequent.items,
        )

    # -- construction --------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Rule":
        """Parse ``"a, b -> c"`` notation into a rule.

        Item names are comma-separated and whitespace-trimmed; the
        antecedent may be empty (``"-> c"``).

        >>> Rule.parse("-> tea").is_itemset_rule
        True
        """
        if "->" not in text:
            raise InvalidRuleError(f"rule text must contain '->': {text!r}")
        left, _, right = text.partition("->")
        antecedent = [part.strip() for part in left.split(",") if part.strip()]
        consequent = [part.strip() for part in right.split(",") if part.strip()]
        return cls(antecedent, consequent)

    @classmethod
    def itemset_rule(cls, items: Itemset | Iterable[str]) -> "Rule":
        """A degenerate rule ``∅ → items`` expressing itemset frequency."""
        return cls(Itemset.empty(), items)
