"""Rule quality measures.

The crowd-mining significance test operates on the pair
``(support, confidence)`` — the same two measures a crowd member's
answer reports. :class:`RuleStats` is that pair as a small immutable
value object, plus derived measures (lift, leverage, conviction) that
the library exposes for downstream analysis of mined rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import check_fraction


@dataclass(frozen=True, slots=True)
class RuleStats:
    """Support and confidence of a rule, both in ``[0, 1]``.

    ``support`` is the frequency of the rule body (antecedent ∪
    consequent); ``confidence`` is the conditional frequency of the
    consequent given the antecedent. For itemset rules (empty
    antecedent) the two coincide.
    """

    support: float
    confidence: float

    def __post_init__(self) -> None:
        check_fraction(self.support, "support")
        check_fraction(self.confidence, "confidence")
        if self.support > self.confidence + 1e-12:
            # supp(A∪B) ≤ supp(A) always, hence confidence ≥ support.
            raise ValueError(
                f"support ({self.support}) cannot exceed confidence ({self.confidence})"
            )

    @property
    def antecedent_support(self) -> float:
        """Implied ``supp(A) = support / confidence`` (1.0 when confidence is 0)."""
        if self.confidence == 0.0:
            return 0.0 if self.support == 0.0 else 1.0
        return min(1.0, self.support / self.confidence)

    def as_tuple(self) -> tuple[float, float]:
        """``(support, confidence)`` as a plain tuple (for numpy interop)."""
        return (self.support, self.confidence)

    def meets(self, support_threshold: float, confidence_threshold: float) -> bool:
        """True when both components clear the given thresholds."""
        return self.support >= support_threshold and self.confidence >= confidence_threshold

    def __str__(self) -> str:
        return f"(s={self.support:.3f}, c={self.confidence:.3f})"


def lift(rule_support: float, antecedent_support: float, consequent_support: float) -> float:
    """Lift of a rule: ``supp(A∪B) / (supp(A) · supp(B))``.

    Returns ``inf`` when either marginal support is zero but the joint
    is positive (a degenerate but representable situation in noisy
    crowd estimates), and ``0.0`` when the joint support is zero.
    """
    check_fraction(rule_support, "rule_support")
    check_fraction(antecedent_support, "antecedent_support")
    check_fraction(consequent_support, "consequent_support")
    if rule_support == 0.0:
        return 0.0
    denominator = antecedent_support * consequent_support
    if denominator == 0.0:
        return math.inf
    return rule_support / denominator


def leverage(
    rule_support: float, antecedent_support: float, consequent_support: float
) -> float:
    """Leverage: ``supp(A∪B) − supp(A) · supp(B)``.

    Lies in ``[−0.25, 1]`` for probabilistically consistent inputs
    (``max(0, supp(A)+supp(B)−1) ≤ supp(A∪B) ≤ min(supp(A), supp(B))``).
    """
    check_fraction(rule_support, "rule_support")
    check_fraction(antecedent_support, "antecedent_support")
    check_fraction(consequent_support, "consequent_support")
    return rule_support - antecedent_support * consequent_support


def conviction(confidence: float, consequent_support: float) -> float:
    """Conviction: ``(1 − supp(B)) / (1 − conf)``; ``inf`` for conf = 1."""
    check_fraction(confidence, "confidence")
    check_fraction(consequent_support, "consequent_support")
    if confidence >= 1.0:
        return math.inf
    return (1.0 - consequent_support) / (1.0 - confidence)
