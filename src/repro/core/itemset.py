"""Canonical itemsets.

An :class:`Itemset` is an immutable set of item names with a canonical
(sorted-tuple) form, so itemsets hash and compare deterministically and
print stably — properties the knowledge base, caches, and tests all
rely on. It supports the subset partial order that underlies support
monotonicity (the Apriori property): ``A ⊆ B ⇒ supp(A) ≥ supp(B)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import combinations


class Itemset:
    """An immutable, canonically-ordered set of items.

    Examples
    --------
    >>> a = Itemset(["tea", "honey"])
    >>> b = Itemset(["honey", "tea"])
    >>> a == b
    True
    >>> str(a)
    '{honey, tea}'
    >>> a <= Itemset(["honey", "tea", "lemon"])
    True
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[str] = ()) -> None:
        if isinstance(items, Itemset):
            self._items: tuple[str, ...] = items._items
        else:
            collected = set()
            for item in items:
                if not isinstance(item, str):
                    raise TypeError(f"items must be strings, got {type(item).__name__}")
                collected.add(item)
            self._items = tuple(sorted(collected))
        self._hash = hash(self._items)

    # -- basic protocol --------------------------------------------------------

    @property
    def items(self) -> tuple[str, ...]:
        """Items in canonical sorted order."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in set(self._items) if len(self._items) > 8 else item in self._items

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self) -> tuple[str, ...]:
        # The cached hash is salted per-process (str hashing), so only
        # the items travel; the hash is recomputed on load.
        return self._items

    def __setstate__(self, state: tuple[str, ...]) -> None:
        self._items = tuple(state)
        self._hash = hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Itemset):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        return f"Itemset({list(self._items)!r})"

    def __str__(self) -> str:
        return "{" + ", ".join(self._items) + "}"

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "Itemset | Iterable[str]") -> "Itemset":
        """Set union, returning a new :class:`Itemset`."""
        return Itemset(set(self._items) | set(other))

    def __or__(self, other: "Itemset") -> "Itemset":
        return self.union(other)

    def intersection(self, other: "Itemset | Iterable[str]") -> "Itemset":
        """Set intersection, returning a new :class:`Itemset`."""
        return Itemset(set(self._items) & set(other))

    def __and__(self, other: "Itemset") -> "Itemset":
        return self.intersection(other)

    def difference(self, other: "Itemset | Iterable[str]") -> "Itemset":
        """Set difference, returning a new :class:`Itemset`."""
        return Itemset(set(self._items) - set(other))

    def __sub__(self, other: "Itemset") -> "Itemset":
        return self.difference(other)

    def isdisjoint(self, other: "Itemset | Iterable[str]") -> bool:
        """True when the two itemsets share no item."""
        return set(self._items).isdisjoint(set(other))

    # -- partial order -----------------------------------------------------------

    def issubset(self, other: "Itemset | Iterable[str]") -> bool:
        """True when every item of ``self`` appears in ``other``."""
        return set(self._items).issubset(set(other))

    def issuperset(self, other: "Itemset | Iterable[str]") -> bool:
        """True when ``self`` contains every item of ``other``."""
        return set(self._items).issuperset(set(other))

    def __le__(self, other: "Itemset") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "Itemset") -> bool:
        return self.issubset(other) and self._items != other._items

    def __ge__(self, other: "Itemset") -> bool:
        return self.issuperset(other)

    def __gt__(self, other: "Itemset") -> bool:
        return self.issuperset(other) and self._items != other._items

    # -- enumeration helpers -------------------------------------------------------

    def subsets(self, size: int | None = None, proper: bool = False) -> Iterator["Itemset"]:
        """Yield subsets of this itemset.

        Parameters
        ----------
        size:
            If given, yield only subsets of exactly this many items.
        proper:
            If true, skip the subset equal to ``self``.
        """
        sizes = range(len(self._items) + 1) if size is None else (size,)
        for k in sizes:
            if k < 0 or k > len(self._items):
                continue
            for combo in combinations(self._items, k):
                if proper and k == len(self._items):
                    continue
                yield Itemset(combo)

    def immediate_subsets(self) -> Iterator["Itemset"]:
        """Yield the subsets obtained by dropping exactly one item."""
        for item in self._items:
            yield Itemset(i for i in self._items if i != item)

    def with_item(self, item: str) -> "Itemset":
        """A new itemset with ``item`` added."""
        return Itemset(self._items + (item,))

    # -- construction ---------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Itemset":
        """The empty itemset."""
        return _EMPTY

    @classmethod
    def of(cls, *items: str) -> "Itemset":
        """Variadic constructor: ``Itemset.of("tea", "honey")``."""
        return cls(items)


_EMPTY = Itemset(())
