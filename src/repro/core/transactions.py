"""Materialized transaction databases.

The paper's personal databases ``D_u`` are *virtual* — they exist only
in crowd members' heads. To simulate a crowd (and to run the classic
miners that provide ground truth and baselines) we need their
materialized counterpart: :class:`TransactionDB`, a bag of transactions
where each transaction is a set of items representing one occasion.

The implementation keeps a per-item inverted index (item → bitmap of
transaction ids as a Python ``set``) so support counting of an itemset
is a set intersection — fast enough for the tens of thousands of
transactions the experiments use, with no native extensions.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.itemset import Itemset
from repro.core.measures import RuleStats
from repro.core.rule import Rule
from repro.errors import EmptyDatabaseError


class TransactionDB:
    """An immutable bag of transactions with support-counting queries.

    Parameters
    ----------
    transactions:
        An iterable of item collections. Each transaction is
        deduplicated (it is a *set* of facts about one occasion); empty
        transactions are allowed and simply never support anything.

    Examples
    --------
    >>> db = TransactionDB([["cough", "tea"], ["cough"], ["tea"]])
    >>> db.support(Itemset(["cough", "tea"]))
    0.3333333333333333
    >>> db.rule_stats(Rule.parse("cough -> tea")).confidence
    0.5
    """

    __slots__ = ("_transactions", "_index")

    def __init__(self, transactions: Iterable[Iterable[str]]) -> None:
        rows: list[frozenset[str]] = []
        index: dict[str, set[int]] = {}
        for tid, raw in enumerate(transactions):
            row = frozenset(raw)
            rows.append(row)
            for item in row:
                index.setdefault(item, set()).add(tid)
        self._transactions: tuple[frozenset[str], ...] = tuple(rows)
        self._index: dict[str, frozenset[int]] = {
            item: frozenset(tids) for item, tids in index.items()
        }

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> frozenset[str]:
        return self._transactions[tid]

    def __repr__(self) -> str:
        return f"TransactionDB({len(self._transactions)} transactions, {len(self._index)} items)"

    @property
    def items(self) -> tuple[str, ...]:
        """All items that occur at least once, sorted."""
        return tuple(sorted(self._index))

    # -- support queries ---------------------------------------------------------

    def matching_ids(self, itemset: Itemset | Iterable[str]) -> frozenset[int]:
        """Ids of transactions containing every item of ``itemset``.

        The empty itemset matches every transaction.
        """
        items = tuple(Itemset(itemset))
        if not items:
            return frozenset(range(len(self._transactions)))
        try:
            postings = sorted((self._index[item] for item in items), key=len)
        except KeyError:
            return frozenset()
        result = set(postings[0])
        for posting in postings[1:]:
            result &= posting
            if not result:
                break
        return frozenset(result)

    def count(self, itemset: Itemset | Iterable[str]) -> int:
        """Number of transactions containing ``itemset``."""
        return len(self.matching_ids(itemset))

    def support(self, itemset: Itemset | Iterable[str]) -> float:
        """Fraction of transactions containing ``itemset``.

        Raises :class:`EmptyDatabaseError` on an empty database, where
        support is undefined.
        """
        if not self._transactions:
            raise EmptyDatabaseError("support is undefined on an empty database")
        return self.count(itemset) / len(self._transactions)

    def rule_stats(self, rule: Rule) -> RuleStats:
        """Exact support and confidence of ``rule`` in this database.

        Confidence is defined as 0 when the antecedent never occurs
        (the conditional is vacuous), matching the convention that an
        unobserved habit is not a habit.
        """
        if not self._transactions:
            raise EmptyDatabaseError("rule stats are undefined on an empty database")
        body_count = self.count(rule.body)
        support = body_count / len(self._transactions)
        if rule.is_itemset_rule:
            return RuleStats(support, support)
        antecedent_count = self.count(rule.antecedent)
        confidence = 0.0 if antecedent_count == 0 else body_count / antecedent_count
        return RuleStats(support, confidence)

    def item_frequencies(self) -> dict[str, float]:
        """Support of every individual item, as a dict."""
        if not self._transactions:
            raise EmptyDatabaseError("frequencies are undefined on an empty database")
        n = len(self._transactions)
        return {item: len(tids) / n for item, tids in self._index.items()}

    # -- derived databases ----------------------------------------------------------

    def project(self, items: Iterable[str]) -> "TransactionDB":
        """Restrict every transaction to ``items`` (empty rows kept)."""
        keep = frozenset(items)
        return TransactionDB(row & keep for row in self._transactions)

    def sample(self, n: int, rng) -> "TransactionDB":
        """A bootstrap sample of ``n`` transactions (with replacement)."""
        if not self._transactions:
            raise EmptyDatabaseError("cannot sample from an empty database")
        ids = rng.integers(0, len(self._transactions), size=n)
        return TransactionDB(self._transactions[int(i)] for i in ids)

    @classmethod
    def concatenate(cls, databases: Sequence["TransactionDB"]) -> "TransactionDB":
        """One database holding all transactions of ``databases`` in order."""
        def rows() -> Iterator[frozenset[str]]:
            for db in databases:
                yield from db
        return cls(rows())
