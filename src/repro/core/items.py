"""Item domains: the universe of items rules are built from.

In the crowd-mining model of Amsterdamer et al. (SIGMOD 2013) the item
domain is the vocabulary of things crowd members can report doing,
having, or experiencing — symptoms and remedies in the folk-medicine
domain, activities and venues in the travel domain. The domain is the
one piece of *global* knowledge the system holds; everything about
frequencies lives only in the (virtual) personal databases.

An :class:`ItemDomain` is an immutable, ordered collection of string
item names with optional per-item categories. Categories matter for two
reasons: synthetic generators draw antecedents and consequents from
different categories (e.g. symptom → remedy), and natural-language
question rendering uses them to pick templates.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.errors import InvalidItemError
from repro._util import stable_unique

#: Category assigned to items when the caller does not provide one.
DEFAULT_CATEGORY = "item"


class ItemDomain:
    """An immutable universe of items, each with a category label.

    Parameters
    ----------
    items:
        Item names. Duplicates are rejected; order is preserved and
        used as the canonical item order throughout the library.
    categories:
        Optional mapping from item name to category label. Items not in
        the mapping get :data:`DEFAULT_CATEGORY`.

    Examples
    --------
    >>> domain = ItemDomain(
    ...     ["headache", "coffee"],
    ...     categories={"headache": "symptom", "coffee": "remedy"},
    ... )
    >>> domain.category_of("coffee")
    'remedy'
    >>> sorted(domain.items_in_category("symptom"))
    ['headache']
    """

    __slots__ = ("_items", "_index", "_categories", "_by_category")

    def __init__(
        self,
        items: Iterable[str],
        categories: Mapping[str, str] | None = None,
    ) -> None:
        items = list(items)
        for item in items:
            if not isinstance(item, str) or not item:
                raise InvalidItemError(f"items must be non-empty strings, got {item!r}")
        if len(set(items)) != len(items):
            dupes = sorted({i for i in items if items.count(i) > 1})
            raise InvalidItemError(f"duplicate items in domain: {dupes}")
        categories = dict(categories or {})
        unknown = set(categories) - set(items)
        if unknown:
            raise InvalidItemError(
                f"categories refer to items outside the domain: {sorted(unknown)}"
            )
        self._items: tuple[str, ...] = tuple(items)
        self._index: dict[str, int] = {item: i for i, item in enumerate(items)}
        self._categories: dict[str, str] = {
            item: categories.get(item, DEFAULT_CATEGORY) for item in items
        }
        self._by_category: dict[str, tuple[str, ...]] = {}
        for category in stable_unique(self._categories.values()):
            self._by_category[category] = tuple(
                item for item in items if self._categories[item] == category
            )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[str]:
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._index

    def __repr__(self) -> str:
        return f"ItemDomain({len(self._items)} items, {len(self._by_category)} categories)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ItemDomain):
            return NotImplemented
        return self._items == other._items and self._categories == other._categories

    def __hash__(self) -> int:
        return hash((self._items, tuple(sorted(self._categories.items()))))

    # -- accessors -----------------------------------------------------------

    @property
    def items(self) -> tuple[str, ...]:
        """All item names, in canonical (insertion) order."""
        return self._items

    @property
    def categories(self) -> tuple[str, ...]:
        """Category labels, in first-seen order."""
        return tuple(self._by_category)

    def index_of(self, item: str) -> int:
        """Canonical position of ``item``; raises :class:`InvalidItemError`."""
        try:
            return self._index[item]
        except KeyError:
            raise InvalidItemError(f"unknown item: {item!r}") from None

    def category_of(self, item: str) -> str:
        """Category label of ``item``; raises :class:`InvalidItemError`."""
        try:
            return self._categories[item]
        except KeyError:
            raise InvalidItemError(f"unknown item: {item!r}") from None

    def items_in_category(self, category: str) -> tuple[str, ...]:
        """All items carrying ``category`` (empty tuple if none)."""
        return self._by_category.get(category, ())

    def validate_items(self, items: Iterable[str]) -> None:
        """Raise :class:`InvalidItemError` if any of ``items`` is unknown."""
        unknown = [item for item in items if item not in self._index]
        if unknown:
            raise InvalidItemError(f"items not in domain: {sorted(set(unknown))}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_categories(cls, groups: Mapping[str, Sequence[str]]) -> "ItemDomain":
        """Build a domain from a ``{category: [items...]}`` mapping.

        >>> d = ItemDomain.from_categories({"symptom": ["cough"], "remedy": ["tea"]})
        >>> d.category_of("tea")
        'remedy'
        """
        items: list[str] = []
        categories: dict[str, str] = {}
        for category, members in groups.items():
            for item in members:
                items.append(item)
                categories[item] = category
        return cls(items, categories=categories)

    def restrict(self, items: Iterable[str]) -> "ItemDomain":
        """A sub-domain containing only ``items`` (categories preserved)."""
        keep = set(items)
        self.validate_items(keep)
        kept = [item for item in self._items if item in keep]
        return ItemDomain(kept, categories={i: self._categories[i] for i in kept})
