"""Core data model: items, itemsets, rules, measures, transaction DBs.

This package is dependency-free (within the library) and everything
above it — classic miners, crowd simulation, estimation, the
crowd-miner itself — is written against these types.
"""

from repro.core.items import DEFAULT_CATEGORY, ItemDomain
from repro.core.itemset import Itemset
from repro.core.measures import RuleStats, conviction, leverage, lift
from repro.core.order import (
    comparable,
    generalizations,
    is_generalization_chain,
    maximal_rules,
    minimal_rules,
    specializations,
    upward_closure,
)
from repro.core.rule import Rule
from repro.core.transactions import TransactionDB

__all__ = [
    "DEFAULT_CATEGORY",
    "ItemDomain",
    "Itemset",
    "Rule",
    "RuleStats",
    "TransactionDB",
    "comparable",
    "conviction",
    "generalizations",
    "is_generalization_chain",
    "leverage",
    "lift",
    "maximal_rules",
    "minimal_rules",
    "specializations",
    "upward_closure",
]
