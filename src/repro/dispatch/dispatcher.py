"""The asynchronous question dispatcher.

The synchronous miner is a ping-pong loop: ask one member, wait for
the answer, fold it in, ask the next. Real crowds do not work that way
— answers take seconds to days (see :mod:`repro.dispatch.latency`),
and a miner that waits on every answer spends almost all of its
wall-clock time idle. The dispatcher closes that gap:

- it keeps up to ``window`` questions **in flight** at once, one per
  member, choosing each with the miner's own
  :meth:`~repro.miner.crowdminer.CrowdMiner.propose_question`;
- answers land in **completion order** on the simulated
  :class:`~repro.dispatch.clock.EventClock` and are folded in with
  :meth:`~repro.miner.crowdminer.CrowdMiner.ingest_answer`, which
  revalidates each against the knowledge base it left behind — an
  answer whose rule was settled while in flight is discarded as stale,
  never double-counted;
- a per-question **timeout** (growing by ``backoff`` per attempt)
  recovers questions whose answers are slow or lost mid-flight, by
  reassigning them to a different member up to ``max_retries`` times.

Determinism: every latency draw comes from the dispatcher's seeded
generator, every tie on the clock breaks by schedule order, and a
question's answer content is resolved at issue time — so one seed
tuple (crowd, miner, dispatch) replays byte-identically. With
``window=1`` and zero latency the dispatcher reduces *exactly* to the
synchronous loop: same questions, same order, same knowledge base
(``tests/dispatch/test_equivalence.py`` pins this).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro._util import as_rng, check_positive
from repro.crowd.questions import InFlightAnswer
from repro.dispatch.clock import EventClock, ScheduledEvent
from repro.dispatch.latency import ConstantLatency, LatencyModel, LatencyProfile
from repro.errors import ConfigurationError, CrowdExhaustedError
from repro.miner.crowdminer import CrowdMiner, QuestionProposal
from repro.miner.result import MiningResult, QuestionEvent, QuestionKind


@dataclass(slots=True)
class DispatchConfig:
    """Configuration of the asynchronous dispatch engine.

    Attributes
    ----------
    window:
        Maximum questions in flight at once (1 = synchronous
        ping-pong). Each member holds at most one in-flight question,
        so the effective window is also capped by crowd size.
    timeout:
        Simulated seconds to wait for an answer before giving up on it
        (``inf`` = wait forever; then mid-flight dropout in the latency
        model would deadlock, which the dispatcher rejects at issue
        time).
    max_retries:
        How many times a timed-out question is reissued before being
        dropped for good.
    backoff:
        Timeout multiplier per retry attempt (attempt ``k`` waits
        ``timeout * backoff**k``).
    latency:
        A :class:`~repro.dispatch.latency.LatencyModel` applied to all
        members, or a :class:`~repro.dispatch.latency.LatencyProfile`
        for heterogeneous crowds. Default: zero latency.
    seed:
        Randomness for latency draws — a stream of its own, so latency
        noise never perturbs the miner's question choices.
    """

    window: int = 1
    timeout: float = math.inf
    max_retries: int = 2
    backoff: float = 2.0
    latency: LatencyModel | LatencyProfile = field(
        default_factory=lambda: ConstantLatency(0.0)
    )
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        check_positive(self.window, "window")
        if not self.timeout > 0:
            raise ConfigurationError(f"timeout must be positive, got {self.timeout!r}")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be at least 1, got {self.backoff!r}"
            )


@dataclass(frozen=True, slots=True)
class DispatchStats:
    """Outcome counters of one dispatched session.

    ``issued`` counts every question put to the crowd, retries
    included — it is the session's true crowd cost, and what the
    budget is charged for. ``completed`` counts answers folded into
    the knowledge base. Every issued question meets exactly one fate,
    so the books always balance::

        issued == completed + stale_discarded + malformed + rejected
                  + timeouts + crashed
        timeouts + crashed == retries + dropped

    (``late_discarded`` refines ``timeouts`` — slow-but-not-lost
    answers — and ``duplicates`` counts transport replays, which never
    enter the issued books.) ``makespan`` is the simulated time at
    which the session finished.
    """

    issued: int
    completed: int
    timeouts: int
    retries: int
    stale_discarded: int
    late_discarded: int
    dropped: int
    in_flight_high_water: int
    makespan: float
    #: Robustness counters (default 0 so pre-fault constructors keep
    #: working): answers dropped by the miner's validation gate,
    #: answers from quarantined members, questions lost to member
    #: crashes, and transport-replay deliveries discarded by token.
    malformed: int = 0
    rejected: int = 0
    crashed: int = 0
    duplicates: int = 0

    def summary_lines(self) -> list[str]:
        """Human-readable report block (used by ``MiningResult.summary``)."""
        lines = [
            f"dispatch: {self.issued} issued, {self.completed} completed, "
            f"in-flight high water {self.in_flight_high_water}",
            f"dispatch: {self.timeouts} timeouts, {self.retries} retries, "
            f"{self.stale_discarded} stale discarded, "
            f"{self.late_discarded} late discarded, {self.dropped} dropped",
        ]
        if self.malformed or self.rejected or self.crashed or self.duplicates:
            lines.append(
                f"dispatch: {self.malformed} malformed, {self.rejected} "
                f"rejected, {self.crashed} crashed, {self.duplicates} "
                f"duplicates discarded"
            )
        lines.append(f"dispatch: makespan {self.makespan:.1f} simulated seconds")
        return lines


@dataclass(slots=True)
class _InFlight:
    """Book-keeping for one question currently travelling."""

    proposal: QuestionProposal
    answer: InFlightAnswer
    attempt: int
    arrival_event: ScheduledEvent | None = None
    timeout_event: ScheduledEvent | None = None


class Dispatcher:
    """Drives a :class:`~repro.miner.crowdminer.CrowdMiner` asynchronously.

    The dispatcher owns the event clock and the latency randomness;
    the miner keeps owning question choice and the knowledge base.
    Use :meth:`run` to drain the session, or :meth:`advance_to` to
    step simulated time on a grid (quality-vs-time curves).
    """

    def __init__(
        self,
        miner: CrowdMiner,
        config: DispatchConfig | None = None,
        clock: EventClock | None = None,
    ) -> None:
        self.miner = miner
        #: The miner defers storage checkpoints through this back-ref
        #: so they land on event boundaries, never mid-delivery.
        miner.dispatcher = self
        self.config = config or DispatchConfig()
        # Not ``clock or EventClock()``: an *empty* clock is falsy
        # (EventClock defines __len__) and would be silently replaced —
        # resume hands in a clock that must be kept even when no events
        # are armed on it yet.
        self.clock = clock if clock is not None else EventClock()
        #: Who picks the next member to question. Defaults to the whole
        #: crowd; the sharded dispatcher points each shard at its own
        #: :class:`~repro.crowd.partition.CrowdPartition`.
        self.scheduler = miner.crowd
        self.obs = miner.obs
        self._checkpoint_requested = False
        self._rng = as_rng(self.config.seed)
        latency = self.config.latency
        self._profile = (
            latency
            if isinstance(latency, LatencyProfile)
            else LatencyProfile(default=latency)
        )
        self._in_flight: dict[str, _InFlight] = {}
        #: (simulated time, event) for every ingested answer, in
        #: completion order — the raw material of quality-vs-time curves.
        self.timeline: list[tuple[float, QuestionEvent]] = []
        self._issued = 0
        self._completed = 0
        self._timeouts = 0
        self._retries = 0
        self._stale = 0
        self._late = 0
        self._dropped = 0
        self._malformed = 0
        self._rejected = 0
        self._crashed = 0
        self._duplicates = 0
        #: Delivery tokens already folded in — the at-least-once guard.
        self._seen_tokens: set[int] = set()
        # The miner proposed nothing askable; cleared when an ingest
        # changes the knowledge base (an open answer may create new
        # closed candidates), so supply can recover mid-session.
        self._stalled = False

    # -- progress -----------------------------------------------------------------

    @property
    def in_flight_count(self) -> int:
        """Questions currently travelling."""
        return len(self._in_flight)

    @property
    def questions_issued(self) -> int:
        """Questions put to the crowd so far (retries included)."""
        return self._issued

    @property
    def budget_left(self) -> int:
        """Issues remaining before the miner's budget is spent."""
        return self.miner.config.budget - self._issued

    def is_idle(self) -> bool:
        """True when nothing is in flight and nothing more can be issued."""
        self._fill_window()
        return not self._in_flight

    # -- issuing ------------------------------------------------------------------

    def _fill_window(self) -> None:
        """Issue questions until the window, budget, or crowd runs out."""
        while (
            len(self._in_flight) < self.config.window
            and self.budget_left > 0
            and not self._stalled
        ):
            try:
                member_id = self.scheduler.next_member(
                    exclude=self._in_flight.keys()
                )
            except CrowdExhaustedError:
                return
            if member_id is None:  # everyone available is already busy
                return
            proposal = self.miner.propose_question(member_id)
            if proposal is None:
                self._stalled = True
                return
            try:
                self._issue(proposal, attempt=0)
            except CrowdExhaustedError:
                # The member left between scheduling and asking; the
                # available set shrank, so this loop terminates.
                continue

    def _issue(self, proposal: QuestionProposal, attempt: int) -> None:
        model = self._profile.model_for(proposal.member_id)
        in_flight = self.miner.pose_async(
            proposal, latency=model, rng=self._rng, now=self.clock.now
        )
        self._arm(proposal, in_flight, attempt)

    def _arm(
        self, proposal: QuestionProposal, in_flight: InFlightAnswer, attempt: int
    ) -> None:
        """Book an already-resolved in-flight answer: schedule its
        arrival and timeout, charge the budget, update the gauges."""
        member_id = proposal.member_id
        timeout = self.config.timeout * self.config.backoff**attempt
        if in_flight.is_lost and math.isinf(timeout):
            raise ConfigurationError(
                "an answer was lost mid-flight but the dispatcher has no "
                "timeout to recover it; configure a finite timeout when the "
                "latency model can drop answers"
            )
        entry = _InFlight(proposal=proposal, answer=in_flight, attempt=attempt)
        if not in_flight.is_lost:
            # Scheduled before the timeout, so an answer landing at the
            # exact timeout instant still counts (ties break by
            # schedule order).
            entry.arrival_event = self.clock.schedule_at(
                in_flight.arrives_at, lambda: self._deliver(member_id)
            )
        if not math.isinf(timeout):
            entry.timeout_event = self.clock.schedule(
                timeout, lambda: self._timeout(member_id)
            )
        self._in_flight[member_id] = entry
        self._issued += 1
        self.obs.count("dispatch.issued")
        if attempt > 0:
            self._retries += 1
            self.obs.count("dispatch.retries")
        self.obs.gauge("dispatch.in_flight", len(self._in_flight))

    # -- event handlers -----------------------------------------------------------

    def _deliver(self, member_id: str) -> None:
        entry = self._in_flight.pop(member_id)
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        self.obs.gauge("dispatch.in_flight", len(self._in_flight))
        self.obs.observe("dispatch.latency", entry.answer.delay)
        token = entry.answer.token
        if token is not None:
            if token in self._seen_tokens:
                # Already folded in once; an at-least-once transport
                # replayed it. Kept out of the issued books entirely.
                self._duplicates += 1
                self.obs.count("dispatch.duplicates")
                return
            self._seen_tokens.add(token)
        # The miner reports a discarded answer as a bare None; which
        # gate dropped it shows up in the obs counters, so snapshot
        # them around the ingest to classify the drop.
        malformed_before = self.obs.counter("answers.malformed")
        rejected_before = self.obs.counter("quality.rejected")
        event = self.miner.ingest_answer(entry.proposal, entry.answer.answer)
        self._stalled = False
        if event is not None:
            self._completed += 1
            self.timeline.append((self.clock.now, event))
        elif self.obs.counter("answers.malformed") > malformed_before:
            self._malformed += 1
        elif self.obs.counter("quality.rejected") > rejected_before:
            self._rejected += 1
        else:
            self._stale += 1  # the miner counted obs "dispatch.stale"

    def _redeliver(self, entry: _InFlight) -> None:
        """A transport-level replay of one delivery (fault injection).

        The common case: the original delivery landed first (it was
        scheduled first at the same instant, and ties break by schedule
        order), marked its token seen, and the replay is discarded here
        by that token — the guard actually doing its job. If the
        original was cancelled (its question timed out first), the
        question's fate is already booked as a timeout, so the replay
        is discarded regardless; either way replays never touch the
        issued books.
        """
        self._duplicates += 1
        self.obs.count("dispatch.duplicates")
        token = entry.answer.token
        assert token is None or token in self._seen_tokens or (
            entry.arrival_event is not None and entry.arrival_event.cancelled
        ), "replay arrived before the original delivery"

    # -- the fault surface --------------------------------------------------------

    def in_flight_members(self) -> list[str]:
        """Members currently holding an in-flight question, sorted.

        Sorted so fault injectors can pick victims deterministically.
        """
        return sorted(self._in_flight)

    def crash_member(self, member_id: str) -> None:
        """The member abruptly leaves mid-session (fault injection).

        They are removed from future scheduling; if they were holding
        an in-flight question, its answer will never come — both its
        pending events are disarmed, the loss is booked under
        ``crashed``, and the question goes through the same
        retry/reassign path as a timeout, so it is recovered by another
        member (or dropped, when retries/budget are spent).
        """
        self.miner.crowd.crash(member_id)
        entry = self._in_flight.pop(member_id, None)
        if entry is None:
            return
        self._crashed += 1
        self.obs.count("dispatch.crashed")
        if entry.arrival_event is not None:
            entry.arrival_event.cancel()
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        self.obs.gauge("dispatch.in_flight", len(self._in_flight))
        self._retry(entry)

    def inject_duplicate(self, member_id: str) -> bool:
        """Schedule a second delivery of the member's in-flight answer.

        Simulates at-least-once transport: the same answer content,
        same token, delivered twice. Returns False (nothing scheduled)
        when the member holds no in-flight question or their answer is
        lost in flight. The replay lands at the original arrival
        instant, *after* the original (ties break by schedule order) —
        the dispatcher must discard it by its delivery token.
        """
        entry = self._in_flight.get(member_id)
        if entry is None or entry.answer.is_lost:
            return False
        self.clock.schedule_at(
            entry.answer.arrives_at, lambda: self._redeliver(entry)
        )
        return True

    def _timeout(self, member_id: str) -> None:
        entry = self._in_flight.pop(member_id)
        self._timeouts += 1
        self.obs.count("dispatch.timeouts")
        if entry.arrival_event is not None:
            # The answer was merely slow, not lost; when it does land,
            # nobody will be listening.
            entry.arrival_event.cancel()
            self._late += 1
            self.obs.count("dispatch.late")
        self.obs.gauge("dispatch.in_flight", len(self._in_flight))
        self._retry(entry)

    def _retry(self, entry: _InFlight) -> None:
        """Reissue a timed-out question to another member, or drop it."""
        attempt = entry.attempt + 1
        proposal = entry.proposal
        if (
            attempt > self.config.max_retries
            or self.budget_left <= 0
            or self.miner.proposal_is_stale(proposal)
        ):
            self._drop()
            return
        member_id = self._reassign_target(proposal)
        if member_id is None:
            self._drop()
            return
        reissued = dataclasses.replace(
            proposal, member_id=member_id, kb_version=self.miner.state.version
        )
        try:
            self._issue(reissued, attempt=attempt)
        except CrowdExhaustedError:
            self._drop()

    def _reassign_target(self, proposal: QuestionProposal) -> str | None:
        """A free member to retry with — preferably not the original one.

        For closed questions, members whose answer about the rule is
        already on record are ineligible (their retry answer would be
        discarded as stale on arrival anyway).
        """
        free = [
            mid
            for mid in self.scheduler.available_members()
            if mid not in self._in_flight
        ]
        if proposal.kind is QuestionKind.CLOSED:
            assert proposal.rule is not None
            samples = self.miner.state.knowledge(proposal.rule).samples
            free = [mid for mid in free if not samples.has_answer_from(mid)]
        for member_id in free:
            if member_id != proposal.member_id:
                return member_id
        return free[0] if free else None

    def _drop(self) -> None:
        self._dropped += 1
        self.obs.count("dispatch.dropped")

    # -- checkpointing ------------------------------------------------------------

    def request_checkpoint(self) -> None:
        """Ask for a session checkpoint at the next event boundary.

        Called by the miner from inside an ingest (i.e. mid-``_deliver``,
        when the completion books are not yet updated); the capture
        itself happens in :meth:`run`/:meth:`advance_to` right after the
        current clock event finishes.
        """
        self._checkpoint_requested = True

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_requested:
            self._checkpoint_requested = False
            self.miner.checkpoint()

    # -- driving ------------------------------------------------------------------

    def run(self) -> MiningResult:
        """Drain the session: issue, deliver, retry until nothing remains."""
        self._fill_window()
        while self._in_flight:
            self.clock.pop()
            self._maybe_checkpoint()
            self._fill_window()
        return self.result()

    def advance_to(self, time: float) -> None:
        """Run the session up to an absolute simulated time.

        Fires every event at or before ``time`` (refilling the window
        as answers land) and leaves the clock exactly at ``time``, so
        callers can sample quality on a fixed simulated-time grid.
        """
        self._fill_window()
        while True:
            upcoming = self.clock.peek_time()
            if upcoming is None or upcoming > time:
                break
            self.clock.pop()
            self._maybe_checkpoint()
            self._fill_window()
        self.clock.run_until(time)

    # -- results ------------------------------------------------------------------

    def stats(self) -> DispatchStats:
        """Counters of the session so far."""
        return DispatchStats(
            issued=self._issued,
            completed=self._completed,
            timeouts=self._timeouts,
            retries=self._retries,
            stale_discarded=self._stale,
            late_discarded=self._late,
            dropped=self._dropped,
            in_flight_high_water=int(
                self.obs.gauge_high_water("dispatch.in_flight")
            ),
            makespan=self.clock.now,
            malformed=self._malformed,
            rejected=self._rejected,
            crashed=self._crashed,
            duplicates=self._duplicates,
        )

    def result(self, mode: str = "point") -> MiningResult:
        """The miner's result with this session's dispatch counters attached."""
        result = self.miner.result(mode)
        result.dispatch = self.stats()
        return result
