"""Sharded dispatch: N schedulers, one merged ingest stream.

The PR 2 propose/pose/ingest split is the parallelization seam: shards
only parallelize the *scheduling and posing* side, while every answer
still lands in one completion-order ingest stream folded by the single
:class:`~repro.miner.crowdminer.CrowdMiner` — ingest stays
single-writer, so storage semantics (PR 6) and latent trust (PR 5) are
untouched.

A :class:`ShardedDispatcher` owns ``n`` internal shard dispatchers.
Each shard has its own event clock, its own latency stream, and
schedules only over its own :class:`~repro.crowd.partition.CrowdPartition`
(crowd positions ``i::n``). The parent drives the merge loop: it
repeatedly pops the globally-earliest event (ties break by shard
index), delivers it to the shared miner, and refills every shard's
window. With one shard and the default window this reduces exactly to
the single :class:`~repro.dispatch.dispatcher.Dispatcher`.

When the crowd supports batched closed answering (``ArrayCrowd``) and
the window is larger than 1, each shard gathers its window of closed
proposals and resolves them with **one vectorized answer-model draw**
on a per-shard batch stream — deterministic under the session seed,
though not byte-identical to one-at-a-time asking (which is why the
window=1 path never batches; see ``docs/scaling.md``).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_rng, check_positive
from repro.dispatch.dispatcher import DispatchConfig, Dispatcher, DispatchStats
from repro.errors import ConfigurationError, CrowdExhaustedError
from repro.miner.crowdminer import CrowdMiner, QuestionProposal
from repro.miner.result import MiningResult, QuestionKind


class _ShardDispatcher(Dispatcher):
    """One shard: a Dispatcher whose stall flag and budget are shared.

    The parent must be assigned *before* ``Dispatcher.__init__`` runs
    (the ``_stalled`` property writes through to the parent's flag).
    """

    def __init__(
        self,
        parent: "ShardedDispatcher",
        index: int,
        miner: CrowdMiner,
        config: DispatchConfig,
        partition,
        rng: np.random.Generator,
        batch_rng: np.random.Generator,
    ) -> None:
        self._parent = parent
        self.index = index
        super().__init__(miner, config)
        self.scheduler = partition
        self._rng = rng
        self._batch_rng = batch_rng

    # Supply is global (one miner proposes for every shard): when one
    # shard stalls, all are stalled; any ingest clears the shared flag.
    @property
    def _stalled(self) -> bool:  # type: ignore[override]
        return self._parent._stall_flag

    @_stalled.setter
    def _stalled(self, value: bool) -> None:
        self._parent._stall_flag = bool(value)

    # The budget is charged for issues across *all* shards.
    @property
    def budget_left(self) -> int:  # type: ignore[override]
        return self._parent.budget_left

    # -- batched filling ------------------------------------------------------

    def _fill_window(self) -> None:
        if not self._parent._batch:
            return super()._fill_window()
        while (
            len(self._in_flight) < self.config.window
            and self.budget_left > 0
            and not self._stalled
        ):
            batch: list[QuestionProposal] = []
            exclude = set(self._in_flight)
            progressed = False
            while (
                len(self._in_flight) + len(batch) < self.config.window
                and self.budget_left > len(batch)
                and not self._stalled
            ):
                try:
                    member_id = self.scheduler.next_member(exclude=exclude)
                except CrowdExhaustedError:
                    break
                if member_id is None:
                    break
                proposal = self.miner.propose_question(member_id)
                if proposal is None:
                    self._stalled = True
                    break
                exclude.add(member_id)
                if proposal.kind is QuestionKind.CLOSED:
                    batch.append(proposal)
                else:
                    try:
                        self._issue(proposal, attempt=0)
                        progressed = True
                    except CrowdExhaustedError:
                        continue
            if len(batch) == 1:
                try:
                    self._issue(batch[0], attempt=0)
                    progressed = True
                except CrowdExhaustedError:
                    pass
            elif batch:
                progressed = self._issue_batch(batch) or progressed
            if not progressed:
                return

    def _issue_batch(self, proposals: list[QuestionProposal]) -> bool:
        """Resolve a window of closed proposals with one batched draw."""
        crowd = self.miner.crowd
        member_ids = [p.member_id for p in proposals]
        rules = [p.rule for p in proposals]
        try:
            answers = crowd.ask_closed_batch(member_ids, rules, self._batch_rng)
        except CrowdExhaustedError:
            # Someone left between scheduling and asking; recover by
            # issuing one at a time, skipping whoever is gone.
            issued = False
            for proposal in proposals:
                try:
                    self._issue(proposal, attempt=0)
                    issued = True
                except CrowdExhaustedError:
                    continue
            return issued
        for proposal, answer in zip(proposals, answers):
            model = self._profile.model_for(proposal.member_id)
            in_flight = crowd.make_in_flight(
                answer, latency=model, rng=self._rng, now=self.clock.now
            )
            self._arm(proposal, in_flight, attempt=0)
        return True


class ShardedDispatcher:
    """Drives one miner through ``shards`` partitioned dispatchers.

    Presents the same driving surface as
    :class:`~repro.dispatch.dispatcher.Dispatcher` (``run``,
    ``advance_to``, ``is_idle``, ``stats``, ``result``, checkpoint
    requests, the completion-order ``timeline``); the sharding is an
    internal matter. Determinism: shard seeds derive from the dispatch
    seed, the merge loop breaks time ties by shard index, and each
    shard's clock is its own — one seed tuple replays byte-identically
    for any fixed shard count.
    """

    def __init__(
        self,
        miner: CrowdMiner,
        config: DispatchConfig | None = None,
        shards: int = 2,
    ) -> None:
        check_positive(shards, "shards")
        self.miner = miner
        self.config = config or DispatchConfig()
        self.n_shards = int(shards)
        self.obs = miner.obs
        partitioner = getattr(miner.crowd, "partitions", None)
        if partitioner is None:
            raise ConfigurationError(
                f"crowd of type {type(miner.crowd).__name__} does not support "
                "partitioning; use the single Dispatcher"
            )
        partitions = partitioner(self.n_shards)
        self._batch = self.config.window > 1 and hasattr(
            miner.crowd, "ask_closed_batch"
        )
        self._stall_flag = False
        #: Merged completion-order timeline, shared by every shard.
        self.timeline: list = []
        seed_rng = as_rng(self.config.seed)
        shard_seeds = seed_rng.integers(2**63, size=(self.n_shards, 2))
        self.shards: list[_ShardDispatcher] = []
        for i in range(self.n_shards):
            shard = _ShardDispatcher(
                parent=self,
                index=i,
                miner=miner,
                config=self.config,
                partition=partitions[i],
                rng=np.random.default_rng(int(shard_seeds[i, 0])),
                batch_rng=np.random.default_rng(int(shard_seeds[i, 1])),
            )
            shard.timeline = self.timeline
            self.shards.append(shard)
        # Each shard's __init__ claimed the back-ref; checkpoints must
        # land on the merge loop's event boundaries, i.e. here.
        miner.dispatcher = self
        self._checkpoint_requested = False
        self._high_water = 0

    # -- progress -------------------------------------------------------------

    @property
    def in_flight_count(self) -> int:
        """Questions currently travelling, across all shards."""
        return sum(len(s._in_flight) for s in self.shards)

    @property
    def questions_issued(self) -> int:
        """Questions put to the crowd so far (all shards, retries included)."""
        return sum(s._issued for s in self.shards)

    @property
    def budget_left(self) -> int:
        """Issues remaining before the miner's budget is spent."""
        return self.miner.config.budget - self.questions_issued

    def is_idle(self) -> bool:
        """True when nothing is in flight and nothing more can be issued."""
        self._fill_all()
        return self.in_flight_count == 0

    def in_flight_members(self) -> list[str]:
        """Members currently holding an in-flight question, sorted."""
        members: list[str] = []
        for shard in self.shards:
            members.extend(shard._in_flight)
        return sorted(members)

    def crash_member(self, member_id: str) -> None:
        """Crash a member, routed to whichever shard holds their question."""
        for shard in self.shards:
            if member_id in shard._in_flight:
                shard.crash_member(member_id)
                return
        self.miner.crowd.crash(member_id)

    # -- driving --------------------------------------------------------------

    def _fill_all(self) -> None:
        for shard in self.shards:
            shard._fill_window()
        total = self.in_flight_count
        if total > self._high_water:
            self._high_water = total

    def _next_event(self) -> tuple[float, int] | None:
        """(time, shard) of the globally-earliest live event."""
        best: tuple[float, int] | None = None
        for i, shard in enumerate(self.shards):
            t = shard.clock.peek_time()
            if t is not None and (best is None or t < best[0]):
                best = (t, i)
        return best

    def run(self) -> MiningResult:
        """Drain the session: the merged completion-order event loop."""
        self._fill_all()
        while self.in_flight_count:
            nxt = self._next_event()
            if nxt is None:
                break
            self.shards[nxt[1]].clock.pop()
            self._maybe_checkpoint()
            self._fill_all()
        return self.result()

    def advance_to(self, time: float) -> None:
        """Run the merged session up to an absolute simulated time."""
        self._fill_all()
        while True:
            nxt = self._next_event()
            if nxt is None or nxt[0] > time:
                break
            self.shards[nxt[1]].clock.pop()
            self._maybe_checkpoint()
            self._fill_all()
        for shard in self.shards:
            shard.clock.run_until(time)

    # -- checkpointing --------------------------------------------------------

    def request_checkpoint(self) -> None:
        """Ask for a session checkpoint at the next merge-loop boundary."""
        self._checkpoint_requested = True

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_requested:
            self._checkpoint_requested = False
            self.miner.checkpoint()

    # -- results --------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Simulated finish time: the latest shard clock."""
        return max(shard.clock.now for shard in self.shards)

    def stats(self) -> DispatchStats:
        """Aggregated counters across shards (books still balance)."""
        return DispatchStats(
            issued=sum(s._issued for s in self.shards),
            completed=sum(s._completed for s in self.shards),
            timeouts=sum(s._timeouts for s in self.shards),
            retries=sum(s._retries for s in self.shards),
            stale_discarded=sum(s._stale for s in self.shards),
            late_discarded=sum(s._late for s in self.shards),
            dropped=sum(s._dropped for s in self.shards),
            in_flight_high_water=self._high_water,
            makespan=self.makespan,
            malformed=sum(s._malformed for s in self.shards),
            rejected=sum(s._rejected for s in self.shards),
            crashed=sum(s._crashed for s in self.shards),
            duplicates=sum(s._duplicates for s in self.shards),
        )

    def result(self, mode: str = "point") -> MiningResult:
        """The miner's result with aggregated dispatch counters attached."""
        result = self.miner.result(mode)
        result.dispatch = self.stats()
        return result
