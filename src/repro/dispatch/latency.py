"""Latency models: how long a crowd member takes to answer.

A deployed crowd answers asynchronously — seconds to days, with heavy
tails and outright losses (a member closes the tab mid-question). Each
model is a distribution over simulated seconds; ``math.inf`` means the
answer is *lost in flight* and will never arrive, which is what forces
the dispatcher's timeout/retry machinery to exist at all.

All sampling is driven by the caller's :class:`numpy.random.Generator`,
so a seeded dispatcher replays byte-identically (see
``docs/dispatch.md`` for the determinism guarantee). The catalogue:

- :class:`ConstantLatency` — every answer takes exactly ``delay``
  (0 reproduces the synchronous ping-pong loop);
- :class:`LognormalLatency` — the standard human-response shape: a
  median with multiplicative spread;
- :class:`ParetoLatency` — a pure power-law straggler tail;
- :class:`MixtureLatency` — weighted combination (e.g. mostly-lognormal
  with a heavy Pareto tail, see :func:`heavy_tail_latency`);
- :class:`DroppingLatency` — wraps any model with a per-question
  probability of mid-flight dropout (``math.inf``);
- :class:`LatencyProfile` — per-member assignment of models, for
  heterogeneous crowds (fast regulars, slow stragglers).

:func:`parse_latency` turns the CLI's compact ``--latency`` spec
strings into models.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro._util import check_fraction, check_nonnegative
from repro.errors import ConfigurationError


class LatencyModel:
    """Base class: a distribution over answer delays (simulated seconds)."""

    def sample(self, rng: np.random.Generator) -> float:
        """One delay draw; ``math.inf`` means the answer never arrives."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConstantLatency(LatencyModel):
    """Every answer takes exactly ``delay`` seconds (0 = synchronous).

    Consumes no randomness, so a zero-latency dispatcher run leaves the
    latency stream untouched — part of the window-1 equivalence
    guarantee with the synchronous loop.
    """

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = check_nonnegative(delay, "delay")

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class LognormalLatency(LatencyModel):
    """Lognormal delays: ``median * exp(sigma * N(0, 1))``.

    The usual fit for human response times: most answers cluster near
    the median, spread is multiplicative, and the right tail is long
    but not power-law heavy.
    """

    def __init__(self, median: float = 60.0, sigma: float = 1.0) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median!r}")
        self.median = float(median)
        self.sigma = check_nonnegative(sigma, "sigma")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.median * math.exp(self.sigma * rng.standard_normal()))

    def __repr__(self) -> str:
        return f"LognormalLatency(median={self.median}, sigma={self.sigma})"


class ParetoLatency(LatencyModel):
    """Pareto (power-law) delays: ``scale * (1 + Pareto(alpha))``.

    The straggler model: infinite variance for ``alpha ≤ 2``, so a few
    answers take arbitrarily long — exactly the regime where waiting on
    every answer (window = 1) collapses throughput.
    """

    def __init__(self, scale: float = 30.0, alpha: float = 1.5) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale!r}")
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha!r}")
        self.scale = float(scale)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * (1.0 + rng.pareto(self.alpha)))

    def __repr__(self) -> str:
        return f"ParetoLatency(scale={self.scale}, alpha={self.alpha})"


class MixtureLatency(LatencyModel):
    """Draw from one of several models with fixed probabilities."""

    def __init__(
        self, models: Sequence[LatencyModel], weights: Sequence[float]
    ) -> None:
        if len(models) != len(weights) or not models:
            raise ConfigurationError(
                "mixture needs equally many models and weights (at least one)"
            )
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise ConfigurationError("mixture weights must be non-negative, sum > 0")
        self.models = tuple(models)
        self.probabilities = tuple(float(w) / total for w in weights)

    def sample(self, rng: np.random.Generator) -> float:
        choice = int(rng.choice(len(self.models), p=self.probabilities))
        return self.models[choice].sample(rng)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{p:.2f}*{m!r}" for m, p in zip(self.models, self.probabilities)
        )
        return f"MixtureLatency({parts})"


class DroppingLatency(LatencyModel):
    """Mid-flight dropout: with probability ``p_drop`` the answer is lost.

    A lost answer samples to ``math.inf`` — it never arrives, and only
    the dispatcher's timeout can recover the question.
    """

    def __init__(self, base: LatencyModel, p_drop: float) -> None:
        self.base = base
        self.p_drop = check_fraction(p_drop, "p_drop")

    def sample(self, rng: np.random.Generator) -> float:
        if rng.random() < self.p_drop:
            return math.inf
        return self.base.sample(rng)

    def __repr__(self) -> str:
        return f"DroppingLatency({self.base!r}, p_drop={self.p_drop})"


def heavy_tail_latency(
    median: float = 60.0,
    sigma: float = 0.8,
    tail_scale: float | None = None,
    tail_alpha: float = 1.3,
    tail_weight: float = 0.1,
) -> MixtureLatency:
    """The standard heavy-tail crowd: lognormal body, Pareto stragglers.

    ``tail_scale`` defaults to 5× the median — stragglers start where
    the body ends.
    """
    if tail_scale is None:
        tail_scale = 5.0 * median
    return MixtureLatency(
        [LognormalLatency(median, sigma), ParetoLatency(tail_scale, tail_alpha)],
        [1.0 - check_fraction(tail_weight, "tail_weight"), tail_weight],
    )


class LatencyProfile:
    """Per-member latency models (heterogeneous crowds).

    ``default`` answers for every member without an explicit entry;
    :meth:`from_factory` builds one model per member id upfront, which
    is how experiments inject a known fraction of stragglers.
    """

    def __init__(
        self,
        default: LatencyModel,
        per_member: dict[str, LatencyModel] | None = None,
    ) -> None:
        self.default = default
        self.per_member = dict(per_member or {})

    @classmethod
    def from_factory(
        cls,
        member_ids: Sequence[str],
        factory: Callable[[int, str], LatencyModel],
        default: LatencyModel | None = None,
    ) -> "LatencyProfile":
        """One model per member, from ``factory(index, member_id)``."""
        per_member = {
            member_id: factory(index, member_id)
            for index, member_id in enumerate(member_ids)
        }
        return cls(default=default or ConstantLatency(0.0), per_member=per_member)

    def model_for(self, member_id: str) -> LatencyModel:
        """The latency model governing ``member_id``'s answers."""
        return self.per_member.get(member_id, self.default)

    def __repr__(self) -> str:
        return (
            f"LatencyProfile(default={self.default!r}, "
            f"overrides={len(self.per_member)})"
        )


def parse_latency(spec: str) -> LatencyModel:
    """Build a latency model from a compact CLI spec string.

    Grammar (fields are ``:``-separated; a trailing ``drop=P`` field
    wraps the model in mid-flight dropout)::

        0  |  <seconds>          constant latency
        const:<seconds>
        lognormal:<median>:<sigma>
        pareto:<scale>:<alpha>
        heavytail:<median>:<sigma>:<alpha>

    >>> parse_latency("0")
    ConstantLatency(0.0)
    >>> parse_latency("lognormal:30:0.8:drop=0.05")
    DroppingLatency(LognormalLatency(median=30.0, sigma=0.8), p_drop=0.05)
    """
    fields = [f for f in str(spec).strip().split(":") if f != ""]
    if not fields:
        raise ConfigurationError(f"empty latency spec: {spec!r}")
    p_drop = None
    if fields[-1].startswith("drop="):
        p_drop = float(fields.pop()[len("drop="):])
    if not fields:
        raise ConfigurationError(f"latency spec has only a drop field: {spec!r}")
    name, args = fields[0].lower(), fields[1:]
    try:
        if name == "const" or (not args and _is_number(name)):
            delay = float(args[0]) if args else float(name)
            model: LatencyModel = ConstantLatency(delay)
        elif name == "lognormal":
            model = LognormalLatency(float(args[0]), float(args[1]))
        elif name == "pareto":
            model = ParetoLatency(float(args[0]), float(args[1]))
        elif name == "heavytail":
            model = heavy_tail_latency(
                median=float(args[0]), sigma=float(args[1]), tail_alpha=float(args[2])
            )
        else:
            raise ConfigurationError(
                f"unknown latency model {name!r} in spec {spec!r}; "
                "known: const, lognormal, pareto, heavytail"
            )
    except (IndexError, ValueError) as exc:
        raise ConfigurationError(f"malformed latency spec {spec!r}: {exc}") from exc
    if p_drop is not None:
        model = DroppingLatency(model, p_drop)
    return model


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
