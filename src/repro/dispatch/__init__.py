"""Asynchronous question dispatch over simulated time.

Real crowds answer with latency — seconds to days, heavy-tailed, and
sometimes never. This package gives the miner an asynchronous engine
to cope: a deterministic discrete-event clock
(:mod:`repro.dispatch.clock`), a catalogue of per-member latency
models (:mod:`repro.dispatch.latency`), and a
:class:`~repro.dispatch.dispatcher.Dispatcher` that keeps a window of
questions in flight with timeout, retry-with-backoff and reassignment
(:mod:`repro.dispatch.dispatcher`). See ``docs/dispatch.md`` for the
semantics and the determinism guarantee.
"""

from repro.dispatch.clock import EventClock, ScheduledEvent, SchedulerClock
from repro.dispatch.dispatcher import DispatchConfig, Dispatcher, DispatchStats
from repro.dispatch.sharded import ShardedDispatcher
from repro.dispatch.latency import (
    ConstantLatency,
    DroppingLatency,
    LatencyModel,
    LatencyProfile,
    LognormalLatency,
    MixtureLatency,
    ParetoLatency,
    heavy_tail_latency,
    parse_latency,
)

__all__ = [
    "ConstantLatency",
    "DispatchConfig",
    "DispatchStats",
    "Dispatcher",
    "DroppingLatency",
    "EventClock",
    "LatencyModel",
    "LatencyProfile",
    "LognormalLatency",
    "MixtureLatency",
    "ParetoLatency",
    "ScheduledEvent",
    "SchedulerClock",
    "ShardedDispatcher",
    "heavy_tail_latency",
    "parse_latency",
]
