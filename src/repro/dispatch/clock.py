"""A deterministic discrete-event simulation clock.

The dispatch engine never reads the wall clock: all latencies, timeouts
and makespans live on this simulated timeline, so a session replayed
with the same seeds produces byte-identical results regardless of host
speed. The clock is a plain priority queue of ``(time, seq, action)``
events:

- **time** is simulated seconds (any unit works; the latency models and
  timeouts just have to agree);
- **seq** is a monotonically increasing schedule counter, so events at
  the same instant fire in the order they were scheduled — the only
  tie-break, and a deterministic one;
- **action** is an arbitrary zero-argument callable.

Events can be cancelled (a timeout whose answer arrived, an arrival
whose question was abandoned); cancelled events are skipped on pop
without advancing time past live ones.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@dataclass(slots=True)
class ScheduledEvent:
    """A handle to one scheduled action; ``cancel()`` to disarm it."""

    time: float
    seq: int
    action: Callable[[], None] = field(repr=False)
    cancelled: bool = False

    def cancel(self) -> None:
        """Disarm the event; it will be skipped when its turn comes."""
        self.cancelled = True


@runtime_checkable
class SchedulerClock(Protocol):
    """The scheduling contract shared by every clock implementation.

    :class:`EventClock` satisfies it over simulated time (callers
    advance time explicitly with ``pop``/``run_until``);
    :class:`repro.serve.clock.RealTimeClock` satisfies it over asyncio
    monotonic wall time (an event-loop task fires due events). The
    contract, pinned by ``tests/serve/test_clock_contract.py`` against
    both implementations:

    - ``now`` is monotonically non-decreasing, starting at 0.0;
    - ``schedule(delay, action)`` arms ``action`` at ``now + delay``;
      negative, NaN or infinite delays raise :class:`ValueError`;
    - ``schedule_at(time, action)`` arms at an absolute instant;
      times in the past, NaN or infinity raise :class:`ValueError`;
    - events fire in ``(time, seq)`` order — same-instant ties break
      by schedule order, the only (and deterministic) tie-break;
    - ``cancel()`` on the returned handle disarms the event: it never
      fires, and ``len(clock)`` / ``peek_time()`` stop counting it;
    - the clock can be re-armed after draining: scheduling after the
      queue emptied works exactly like scheduling into a fresh clock.
    """

    @property
    def now(self) -> float: ...

    def __len__(self) -> int: ...

    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> ScheduledEvent: ...

    def schedule_at(
        self, time: float, action: Callable[[], None]
    ) -> ScheduledEvent: ...

    def peek_time(self) -> float | None: ...


class EventClock:
    """Simulated time plus the queue of things scheduled to happen.

    >>> clock = EventClock()
    >>> fired = []
    >>> _ = clock.schedule(2.0, lambda: fired.append("b"))
    >>> _ = clock.schedule(1.0, lambda: fired.append("a"))
    >>> clock.pop(), clock.pop(), clock.pop()
    (True, True, False)
    >>> fired, clock.now
    (['a', 'b'], 2.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to fire ``delay`` simulated seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` at an absolute simulated time (≥ now)."""
        if math.isnan(time) or time < self._now:
            raise ValueError(
                f"cannot schedule at {time!r}: the clock is already at {self._now}"
            )
        if math.isinf(time):
            raise ValueError(
                "cannot schedule at infinity; skip scheduling a lost event instead"
            )
        event = ScheduledEvent(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def peek_time(self) -> float | None:
        """The time of the next live event, or ``None`` when idle."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0][0]

    def pop(self) -> bool:
        """Advance to and fire the next live event.

        Returns ``False`` (leaving time untouched) when nothing live
        remains scheduled.
        """
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run_until(self, time: float) -> int:
        """Fire every live event at or before ``time``; returns the count.

        The clock ends exactly at ``time`` even when the last event
        fired earlier (or none did), so callers can sample state on a
        fixed simulated-time grid.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards to {time!r} from {self._now}")
        fired = 0
        while True:
            upcoming = self.peek_time()
            if upcoming is None or upcoming > time:
                break
            self.pop()
            fired += 1
        self._now = time
        return fired
