"""repro — crowd mining from a simulated crowd.

A production-quality reproduction of **"Crowd Mining"** (Amsterdamer,
Grossman, Milo, Senellart — SIGMOD 2013): mining significant
association rules about people's habits when the underlying data lives
only in crowd members' heads and can be reached solely by asking
questions.

The top-level namespace re-exports the objects a typical user needs;
the subpackages hold the full API:

- :mod:`repro.core` — items, itemsets, rules, measures, transaction DBs;
- :mod:`repro.classic` — Apriori / FP-Growth and rule generation over
  materialized databases;
- :mod:`repro.synth` — latent habit models, synthetic generators and
  crowd populations;
- :mod:`repro.crowd` — the simulated crowd (questions, answer models,
  members);
- :mod:`repro.estimation` — streaming estimates, the significance test
  and aggregation;
- :mod:`repro.miner` — the CrowdMiner algorithm and ground-truth oracle;
- :mod:`repro.dispatch` — the asynchronous question dispatcher:
  simulated-time event clock, latency models, in-flight batching with
  timeout/retry;
- :mod:`repro.obs` — session instrumentation: hot-path counters,
  wall-clock timers and trace events;
- :mod:`repro.eval` — the experiment harness reproducing the paper's
  evaluation.

Quickstart::

    from repro import (
        Thresholds, SimulatedCrowd, mine_crowd,
        folk_remedies_model, build_population, standard_answer_model,
    )

    model = folk_remedies_model(seed=1)
    population = build_population(model, n_members=40, seed=2)
    crowd = SimulatedCrowd.from_population(
        population, answer_model=standard_answer_model(), seed=3)
    result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=800, seed=4)
    print(result.summary())
"""

from repro.classic import mine_rules
from repro.core import ItemDomain, Itemset, Rule, RuleStats, TransactionDB
from repro.crowd import (
    OpenAnswerPolicy,
    SimulatedCrowd,
    SimulatedMember,
    standard_answer_model,
)
from repro.errors import ReproError
from repro.estimation import Decision, SignificanceTest, Thresholds
from repro.miner import (
    CrowdMiner,
    CrowdMinerConfig,
    GroundTruth,
    MiningResult,
    compute_ground_truth,
    mine_crowd,
)

# The dispatch package builds on the miner, so it must import after it.
from repro.dispatch import (
    DispatchConfig,
    Dispatcher,
    DispatchStats,
    EventClock,
    LatencyProfile,
    heavy_tail_latency,
    parse_latency,
)
from repro.obs import Instrumentation, ObsSnapshot
from repro.synth import (
    LatentHabitModel,
    Population,
    build_population,
    culinary_model,
    folk_remedies_model,
    partition_global_db,
    travel_model,
)

__version__ = "1.0.0"

__all__ = [
    "CrowdMiner",
    "CrowdMinerConfig",
    "Decision",
    "DispatchConfig",
    "DispatchStats",
    "Dispatcher",
    "EventClock",
    "GroundTruth",
    "Instrumentation",
    "ItemDomain",
    "Itemset",
    "LatencyProfile",
    "LatentHabitModel",
    "MiningResult",
    "ObsSnapshot",
    "OpenAnswerPolicy",
    "Population",
    "ReproError",
    "Rule",
    "RuleStats",
    "SignificanceTest",
    "SimulatedCrowd",
    "SimulatedMember",
    "Thresholds",
    "TransactionDB",
    "__version__",
    "build_population",
    "compute_ground_truth",
    "culinary_model",
    "folk_remedies_model",
    "heavy_tail_latency",
    "mine_crowd",
    "parse_latency",
    "mine_rules",
    "partition_global_db",
    "standard_answer_model",
    "travel_model",
]
