"""Documentation honesty tests.

The README's quickstart must actually run, and every file the docs
reference must exist. Documentation that drifts from the code is worse
than no documentation.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestReadmeQuickstart:
    def test_python_block_executes(self, capsys):
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README lost its quickstart block"
        exec(compile(blocks[0], "<README quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "questions asked" in out

    def test_cli_lines_parse(self):
        from repro.cli import build_parser

        text = (REPO / "README.md").read_text()
        parser = build_parser()
        for line in re.findall(r"python -m repro ([^\n]+)", text):
            args = line.strip().split()
            parser.parse_args(args)  # SystemExit on an invalid command


class TestDocReferences:
    def test_readme_example_files_exist(self):
        text = (REPO / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", text):
            assert (REPO / "examples" / name).exists(), name

    def test_docs_files_referenced_exist(self):
        text = (REPO / "README.md").read_text()
        for name in re.findall(r"`(\w+\.md)`", text):
            candidates = [REPO / name, REPO / "docs" / name]
            assert any(c.exists() for c in candidates), name

    def test_design_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for name in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_formal_model_module_references_resolve(self):
        import importlib

        text = (REPO / "docs" / "formal_model.md").read_text()
        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)`", text)):
            module_path = dotted
            # References may point at module.attribute; try both.
            try:
                importlib.import_module(module_path)
                continue
            except ImportError:
                pass
            module_name, _, attribute = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attribute), dotted
