"""Property tests for the caching layer against the live crowd.

Invariants: a caching crowd is *transparent* (same answers as the
inner crowd would give, for exact members), cache hits never consume
member patience, and replay is consistent with live evaluation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Rule
from repro.crowd import ExactAnswerModel, SimulatedCrowd
from repro.estimation import Thresholds
from repro.miner import AnswerCache, CachingCrowd, CrowdMiner, CrowdMinerConfig, reevaluate
from repro.synth import build_population, random_domain, random_habit_model

SLOW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

world_params = st.tuples(st.integers(20, 40), st.integers(2, 4), st.integers(0, 9999))


def build_world(params):
    n_items, n_patterns, seed = params
    import numpy as np

    rng = np.random.default_rng(seed)
    domain = random_domain(n_items, seed=rng)
    model = random_habit_model(domain, n_patterns, seed=rng)
    return build_population(model, 6, 60, seed=rng)


class TestTransparency:
    @SLOW
    @given(world_params)
    def test_cached_answer_equals_live_answer_for_exact_members(self, params):
        population = build_world(params)
        cache = AnswerCache()
        inner = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=1
        )
        crowd = CachingCrowd(inner, cache)
        rule = Rule([population.domain.items[0]], [population.domain.items[1]])
        live = crowd.ask_closed("u0000", rule)
        cached = crowd.ask_closed("u0000", rule)
        assert live.stats == cached.stats
        # Exact members are deterministic: the cached value equals the
        # database truth.
        truth = population.member("u0000").db.rule_stats(rule)
        assert cached.stats == truth

    @SLOW
    @given(world_params)
    def test_hits_do_not_consume_patience(self, params):
        population = build_world(params)
        cache = AnswerCache()
        inner = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), patience=2, seed=1
        )
        crowd = CachingCrowd(inner, cache)
        rule = Rule([population.domain.items[0]], [population.domain.items[1]])
        crowd.ask_closed("u0000", rule)  # miss → 1 patience spent
        for _ in range(5):  # hits: free
            crowd.ask_closed("u0000", rule)
        assert "u0000" in crowd.available_members()


class TestReplayConsistency:
    @SLOW
    @given(world_params)
    def test_replay_from_closed_answers_matches_state(self, params):
        population = build_world(params)
        cache = AnswerCache()
        inner = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=1
        )
        crowd = CachingCrowd(inner, cache)
        thresholds = Thresholds(0.1, 0.5)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=thresholds, budget=120, seed=2),
        )
        miner.run()
        # Replaying at identical thresholds reproduces every decision
        # the session reported (the replay sees a superset of counted
        # evidence: it also includes volunteered numeric answers).
        replayed = reevaluate(cache, thresholds)
        live = miner.state.significant_rules(mode="point")
        for rule in live:
            # Every live-reported rule replays unless volunteer answers
            # flipped it — which, with exact members, can only add
            # consistent evidence.
            assert rule in replayed
