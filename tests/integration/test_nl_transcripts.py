"""NL rendering over real session logs, per named domain.

Every question a session actually asks must render to sensible English
— the property a front-end depends on. Runs a short session on each
named domain and renders its full transcript.
"""

import pytest

from repro.crowd import (
    ClosedQuestion,
    SimulatedCrowd,
    culinary_renderer,
    folk_remedies_renderer,
    standard_answer_model,
    travel_renderer,
)
from repro.estimation import Thresholds
from repro.miner import CrowdMiner, CrowdMinerConfig, QuestionKind
from repro.synth import NAMED_MODELS, build_population

RENDERERS = {
    "folk_remedies": folk_remedies_renderer,
    "travel": travel_renderer,
    "culinary": culinary_renderer,
}


@pytest.mark.parametrize("domain_name", sorted(NAMED_MODELS))
class TestTranscripts:
    def run_session(self, domain_name):
        model = NAMED_MODELS[domain_name](seed=5)
        population = build_population(model, 10, 80, seed=6)
        crowd = SimulatedCrowd.from_population(
            population, answer_model=standard_answer_model(), seed=7
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.08, 0.4),
                budget=120,
                seed=8,
                contextual_open_fraction=0.3,
            ),
        )
        return model, miner.run()

    def test_every_closed_question_renders(self, domain_name):
        model, result = self.run_session(domain_name)
        renderer = RENDERERS[domain_name](model.domain)
        rendered = 0
        for event in result.log:
            if event.kind is QuestionKind.CLOSED:
                text = renderer.render_closed(ClosedQuestion(event.rule))
                assert text.endswith("?")
                # Every item of the rule is mentioned by name.
                for item in event.rule.body:
                    assert item in text
                rendered += 1
        assert rendered > 0

    def test_domain_templates_actually_fire(self, domain_name):
        # At least one question should use the domain's bespoke
        # phrasing rather than the generic fallback.
        model, result = self.run_session(domain_name)
        renderer = RENDERERS[domain_name](model.domain)
        texts = [
            renderer.render_closed(ClosedQuestion(event.rule))
            for event in result.log
            if event.kind is QuestionKind.CLOSED
        ]
        assert any("When your day includes" not in t for t in texts)
