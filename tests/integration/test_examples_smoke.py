"""Smoke test: every example script must run to completion.

Each script under ``examples/`` is executed in a subprocess the way a
reader would run it (``PYTHONPATH=src python examples/<name>.py``).
The scripts are deterministic and self-contained — none read stdin or
take arguments — so a zero exit status is the whole contract.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(script)],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_every_example_is_covered():
    # Guard against the directory going empty (e.g. a rename) while the
    # parametrize list silently collects zero tests.
    assert len(EXAMPLES) >= 7
