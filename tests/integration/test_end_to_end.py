"""End-to-end integration tests: does the miner actually mine?

These tests run complete sessions on small worlds and assert on
*quality*, not just plumbing. Budgets and thresholds are chosen so the
assertions hold with margin across seed drift, but they are the real
claims of the paper at miniature scale.
"""

import pytest

from repro import (
    SimulatedCrowd,
    Thresholds,
    build_population,
    compute_ground_truth,
    folk_remedies_model,
    mine_crowd,
    standard_answer_model,
)
from repro.crowd import ExactAnswerModel
from repro.eval import precision_recall
from repro.miner import FixedRatioPolicy, make_strategy


@pytest.fixture(scope="module")
def world():
    model = folk_remedies_model(seed=1)
    population = build_population(
        model, n_members=30, transactions_per_member=150, seed=2
    )
    truth = compute_ground_truth(population, Thresholds(0.10, 0.5))
    return model, population, truth


def fresh_crowd(population, exact=False, seed=3):
    model = ExactAnswerModel() if exact else standard_answer_model()
    return SimulatedCrowd.from_population(population, answer_model=model, seed=seed)


class TestMiningQuality:
    def test_exact_answers_high_quality(self, world):
        _, population, truth = world
        crowd = fresh_crowd(population, exact=True)
        result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=2_000, seed=4)
        precision, recall = precision_recall(result.significant, truth)
        assert precision >= 0.8
        assert recall >= 0.55

    def test_noisy_answers_still_work(self, world):
        _, population, truth = world
        crowd = fresh_crowd(population)
        result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=1_200, seed=4)
        precision, recall = precision_recall(result.significant, truth)
        assert precision >= 0.6
        assert recall >= 0.4

    def test_more_budget_not_worse(self, world):
        _, population, truth = world
        scores = []
        for budget in (300, 1_200):
            crowd = fresh_crowd(population)
            result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=budget, seed=4)
            _, recall = precision_recall(result.significant, truth)
            scores.append(recall)
        assert scores[1] >= scores[0]

    def test_planted_headline_rule_found(self, world):
        model, population, truth = world
        crowd = fresh_crowd(population, exact=True)
        result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=1_200, seed=4)
        # The strongest planted habit must be reported (possibly as a
        # generalization-compatible variant: check the exact rule).
        from repro.core import Rule

        headline = Rule(["fatigue"], ["nap"])
        assert headline in truth.significant
        assert headline in result.significant


class TestStrategyOrdering:
    def test_crowdminer_beats_random_at_fixed_budget(self):
        # A wider world than the folk fixture (more planted habits →
        # more candidates) — where adaptive selection has room to win.
        from repro.synth import random_domain, random_habit_model

        domain = random_domain(100, seed=31)
        model = random_habit_model(domain, n_patterns=15, seed=31)
        population = build_population(
            model, n_members=40, transactions_per_member=200, seed=32
        )
        thresholds = Thresholds(0.10, 0.5)
        truth = compute_ground_truth(population, thresholds)
        f1 = {}
        for name in ("crowdminer", "random"):
            crowd = fresh_crowd(population, seed=33)
            result = mine_crowd(
                crowd,
                thresholds,
                budget=1_000,
                seed=34,
                strategy=make_strategy(name),
            )
            p, r = precision_recall(result.significant, truth)
            f1[name] = 0.0 if p + r == 0 else 2 * p * r / (p + r)
        assert f1["crowdminer"] > f1["random"]


class TestOpenClosedTradeoff:
    def test_pure_open_verifies_nothing(self, world):
        _, population, truth = world
        crowd = fresh_crowd(population)
        result = mine_crowd(
            crowd,
            Thresholds(0.10, 0.5),
            budget=400,
            seed=4,
            open_policy=FixedRatioPolicy(1.0),
        )
        # Discovery only — no rule ever gets enough counted evidence.
        assert len(result.significant) == 0

    def test_mixed_beats_pure_open(self, world):
        _, population, truth = world
        crowd = fresh_crowd(population)
        mixed = mine_crowd(
            crowd,
            Thresholds(0.10, 0.5),
            budget=400,
            seed=4,
            open_policy=FixedRatioPolicy(0.1),
        )
        _, recall_mixed = precision_recall(mixed.significant, truth)
        assert recall_mixed > 0.0


class TestDeterminism:
    def test_full_pipeline_reproducible(self, world):
        _, population, _ = world
        results = []
        for _ in range(2):
            crowd = fresh_crowd(population, seed=9)
            result = mine_crowd(crowd, Thresholds(0.10, 0.5), budget=300, seed=10)
            results.append(sorted(str(r) for r in result.significant))
        assert results[0] == results[1]
