"""Whole-pipeline property tests (hypothesis over world parameters).

Rather than fixing one world, these draw small random worlds and assert
structural invariants that must hold for *any* of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulatedCrowd, Thresholds, build_population, mine_crowd
from repro.crowd import ExactAnswerModel
from repro.miner import compute_ground_truth
from repro.synth import random_domain, random_habit_model

world_params = st.tuples(
    st.integers(20, 60),  # n_items
    st.integers(2, 6),  # n_patterns
    st.integers(4, 10),  # n_members
    st.integers(0, 10_000),  # seed
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build(params):
    n_items, n_patterns, n_members, seed = params
    rng = np.random.default_rng(seed)
    domain = random_domain(n_items, seed=rng)
    model = random_habit_model(domain, n_patterns, seed=rng)
    population = build_population(model, n_members, 60, seed=rng)
    return model, population


class TestOracleInvariants:
    @SLOW
    @given(world_params)
    def test_truth_monotone_in_thresholds(self, params):
        _, population = build(params)
        loose = compute_ground_truth(population, Thresholds(0.05, 0.3))
        tight = compute_ground_truth(population, Thresholds(0.15, 0.6))
        assert tight.significant <= loose.significant

    @SLOW
    @given(world_params)
    def test_truth_stats_meet_thresholds(self, params):
        _, population = build(params)
        thresholds = Thresholds(0.1, 0.5)
        truth = compute_ground_truth(population, thresholds)
        for rule in truth.significant:
            stats = truth.stats[rule]
            assert stats.support >= thresholds.support - 1e-9
            assert stats.confidence >= thresholds.confidence - 1e-9

    @SLOW
    @given(world_params)
    def test_truth_matches_population_means(self, params):
        _, population = build(params)
        truth = compute_ground_truth(population, Thresholds(0.1, 0.5))
        for rule in list(truth.significant)[:5]:
            s, c = population.mean_rule_stats(rule)
            assert truth.stats[rule].support == pytest.approx(s, abs=1e-9)
            assert truth.stats[rule].confidence == pytest.approx(c, abs=1e-9)


class TestMinerInvariants:
    @SLOW
    @given(world_params)
    def test_session_bookkeeping_consistent(self, params):
        _, population = build(params)
        crowd = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=1
        )
        result = mine_crowd(crowd, Thresholds(0.1, 0.5), budget=120, seed=2)
        assert result.questions_asked <= 120
        assert result.questions_asked == len(result.log)
        assert (
            result.closed_questions + result.open_questions == result.questions_asked
        )
        assert crowd.stats.total_questions == result.questions_asked

    @SLOW
    @given(world_params)
    def test_reported_rules_have_enough_evidence(self, params):
        _, population = build(params)
        crowd = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=1
        )
        from repro.miner import CrowdMiner, CrowdMinerConfig

        config = CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=120, seed=2)
        miner = CrowdMiner(crowd, config)
        miner.run()
        for rule in miner.state.significant_rules(mode="point"):
            knowledge = miner.state.knowledge(rule)
            assert knowledge.samples.n >= config.min_samples

    @SLOW
    @given(world_params)
    def test_maximal_report_is_antichain(self, params):
        _, population = build(params)
        crowd = SimulatedCrowd.from_population(
            population, answer_model=ExactAnswerModel(), seed=1
        )
        result = mine_crowd(crowd, Thresholds(0.1, 0.5), budget=150, seed=2)
        maximal = list(result.maximal_significant)
        for a in maximal:
            for b in maximal:
                if a != b:
                    assert not a.generalizes(b)
