"""Failure-injection integration tests.

Real crowds misbehave: members leave mid-session, answer streams dry
up, spammers pollute evidence, whole sub-crowds churn. These tests
inject each failure and assert the session *degrades* instead of
crashing or silently corrupting results.
"""

import pytest

from repro.core import Rule
from repro.crowd import (
    ExactAnswerModel,
    SimulatedCrowd,
    SimulatedMember,
    SpammerAnswerModel,
    StreamMember,
    standard_answer_model,
)
from repro.estimation import Thresholds
from repro.eval import precision_recall
from repro.miner import CrowdMiner, CrowdMinerConfig, compute_ground_truth


class TestMemberChurn:
    def test_tiny_patience_session_terminates_cleanly(self, folk_population):
        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model=ExactAnswerModel(), patience=1, seed=5
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=10_000, seed=6),
        )
        result = miner.run()
        assert result.questions_asked <= len(folk_population)
        assert miner.is_done

    def test_mixed_patience(self, folk_population):
        # Half the crowd answers 2 questions, half is unbounded.
        members = []
        for index, pop_member in enumerate(folk_population):
            members.append(
                SimulatedMember(
                    member_id=pop_member.member_id,
                    db=pop_member.db,
                    answer_model=ExactAnswerModel(),
                    patience=2 if index % 2 == 0 else None,
                    seed=index,
                )
            )
        crowd = SimulatedCrowd(members, seed=7)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(thresholds=Thresholds(0.1, 0.5), budget=400, seed=8),
        )
        result = miner.run()
        assert result.questions_asked > 0
        # The patient half carried the session.
        loads = crowd.stats.per_member
        impatient = [m.member_id for i, m in enumerate(folk_population) if i % 2 == 0]
        assert all(loads[mid] <= 2 for mid in impatient)


class TestStreamExhaustion:
    def test_streams_drying_up_mid_session(self):
        # Three members with short scripted streams; the session must
        # stop gracefully when the last stream dries up.
        script = [
            "open: sore throat -> ginger tea ; often",
            "closed: often",
            "closed: sometimes",
        ]
        members = [StreamMember(f"m{i}", list(script)) for i in range(3)]
        crowd = SimulatedCrowd(members, seed=1)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.25, 0.5), budget=100, min_samples=3, seed=2
            ),
        )
        result = miner.run()
        assert result.questions_asked <= 9
        # All members ran dry; nothing crashed, the log is consistent.
        assert len(result.log) == result.questions_asked


class TestSpamPollution:
    @pytest.mark.parametrize("screen", [False, True])
    def test_screening_never_hurts_much(self, folk_population, folk_truth, screen):
        def factory(index):
            return SpammerAnswerModel() if index % 4 == 0 else standard_answer_model()

        crowd = SimulatedCrowd.from_population(
            folk_population, answer_model_factory=factory, seed=9
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.1, 0.5),
                budget=900,
                seed=10,
                screen_spammers=screen,
            ),
        )
        result = miner.run()
        precision, recall = precision_recall(result.significant, folk_truth)
        # With a quarter of the crowd spamming, the session still
        # produces output and does not crash; screened precision should
        # be at least competitive.
        assert result.questions_asked == 900
        if screen:
            assert precision >= 0.3

    def test_screened_beats_unscreened_precision(self, folk_population, folk_truth):
        def factory(index):
            return SpammerAnswerModel() if index % 3 == 0 else standard_answer_model()

        outcomes = {}
        for screen in (False, True):
            crowd = SimulatedCrowd.from_population(
                folk_population, answer_model_factory=factory, seed=11
            )
            miner = CrowdMiner(
                crowd,
                CrowdMinerConfig(
                    thresholds=Thresholds(0.1, 0.5),
                    budget=900,
                    seed=12,
                    screen_spammers=screen,
                ),
            )
            result = miner.run()
            outcomes[screen] = precision_recall(result.significant, folk_truth)
        # A third of the crowd spamming: screening should not lose on
        # precision (allow small noise margin).
        assert outcomes[True][0] >= outcomes[False][0] - 0.05


class TestDegenerateCrowds:
    def test_single_member_crowd(self, folk_population):
        member = folk_population.members[0]
        crowd = SimulatedCrowd(
            [
                SimulatedMember(
                    member_id=member.member_id,
                    db=member.db,
                    answer_model=ExactAnswerModel(),
                    seed=1,
                )
            ],
            seed=2,
        )
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.1, 0.5), budget=200, min_samples=1, seed=3
            ),
        )
        result = miner.run()
        # One member: every rule gets at most one sample, and with
        # min_samples=1 the session can still classify.
        assert result.questions_asked > 0

    def test_empty_personal_databases(self):
        from repro.core import TransactionDB

        members = [
            SimulatedMember(
                member_id=f"u{i}",
                db=TransactionDB([[] for _ in range(10)]),
                answer_model=ExactAnswerModel(),
                seed=i,
            )
            for i in range(3)
        ]
        crowd = SimulatedCrowd(members, seed=4)
        miner = CrowdMiner(
            crowd,
            CrowdMinerConfig(
                thresholds=Thresholds(0.1, 0.5),
                budget=50,
                seed=5,
                seed_rules=(Rule(["a"], ["b"]),),
            ),
        )
        result = miner.run()
        # Nobody does anything: the seeded rule must come back
        # insignificant, not significant.
        assert Rule(["a"], ["b"]) not in result.significant
