"""Tests for interestingness ranking and redundancy filtering."""

import math

import pytest

from repro.classic import (
    MissingSupportError,
    filter_redundant,
    fpgrowth_frequent_itemsets,
    rank_rules,
    rules_from_itemsets,
    score_rules,
)
from repro.core import Itemset, Rule, RuleStats


@pytest.fixture
def world():
    supports = {
        Itemset(["a"]): 0.5,
        Itemset(["b"]): 0.4,
        Itemset(["c"]): 0.5,
        Itemset(["a", "b"]): 0.4,  # perfectly correlated with b
        Itemset(["a", "c"]): 0.25,  # independent
    }
    rules = {
        Rule(["a"], ["b"]): RuleStats(0.4, 0.8),
        Rule(["b"], ["a"]): RuleStats(0.4, 1.0),
        Rule(["a"], ["c"]): RuleStats(0.25, 0.5),
    }
    return rules, supports


class TestScoreRules:
    def test_lift_values(self, world):
        rules, supports = world
        scored = {s.rule: s for s in score_rules(rules, supports)}
        assert scored[Rule(["a"], ["b"])].lift == pytest.approx(0.4 / (0.5 * 0.4))
        assert scored[Rule(["a"], ["c"])].lift == pytest.approx(1.0)

    def test_leverage_values(self, world):
        rules, supports = world
        scored = {s.rule: s for s in score_rules(rules, supports)}
        assert scored[Rule(["a"], ["c"])].leverage == pytest.approx(0.0)
        assert scored[Rule(["a"], ["b"])].leverage == pytest.approx(0.2)

    def test_conviction_exact_rule_infinite(self, world):
        rules, supports = world
        scored = {s.rule: s for s in score_rules(rules, supports)}
        assert math.isinf(scored[Rule(["b"], ["a"])].conviction)

    def test_missing_support_raises(self):
        rules = {Rule(["x"], ["y"]): RuleStats(0.2, 0.5)}
        with pytest.raises(MissingSupportError):
            score_rules(rules, {})

    def test_measure_lookup(self, world):
        rules, supports = world
        scored = score_rules(rules, supports)[0]
        assert scored.measure("support") == scored.stats.support
        with pytest.raises(ValueError):
            scored.measure("beauty")


class TestRankRules:
    def test_ranks_by_lift(self, world):
        rules, supports = world
        ranked = rank_rules(rules, supports, by="lift")
        lifts = [r.lift for r in ranked]
        finite = [v for v in lifts if not math.isinf(v)]
        assert finite == sorted(finite, reverse=True)

    def test_infinite_values_first(self, world):
        rules, supports = world
        ranked = rank_rules(rules, supports, by="conviction")
        assert math.isinf(ranked[0].conviction)

    def test_top_k(self, world):
        rules, supports = world
        assert len(rank_rules(rules, supports, top=2)) == 2

    def test_integration_with_miner(self, tiny_db):
        supports = fpgrowth_frequent_itemsets(tiny_db, 0.15)
        rules = rules_from_itemsets(supports, 0.4)
        ranked = rank_rules(rules, supports, by="leverage")
        assert len(ranked) == len(rules)


class TestFilterRedundant:
    def test_longer_rule_without_improvement_dropped(self):
        rules = {
            Rule(["a"], ["c"]): RuleStats(0.4, 0.8),
            Rule(["a", "b"], ["c"]): RuleStats(0.2, 0.8),  # same conf, longer
        }
        kept = filter_redundant(rules)
        assert set(kept) == {Rule(["a"], ["c"])}

    def test_improving_specialization_kept(self):
        rules = {
            Rule(["a"], ["c"]): RuleStats(0.4, 0.6),
            Rule(["a", "b"], ["c"]): RuleStats(0.2, 0.95),
        }
        kept = filter_redundant(rules)
        assert set(kept) == set(rules)

    def test_min_improvement_threshold(self):
        rules = {
            Rule(["a"], ["c"]): RuleStats(0.4, 0.6),
            Rule(["a", "b"], ["c"]): RuleStats(0.2, 0.65),
        }
        assert len(filter_redundant(rules, min_improvement=0.1)) == 1
        assert len(filter_redundant(rules, min_improvement=0.01)) == 2

    def test_different_consequents_never_compared(self):
        rules = {
            Rule(["a"], ["c"]): RuleStats(0.4, 0.9),
            Rule(["a", "b"], ["d"]): RuleStats(0.2, 0.5),
        }
        assert len(filter_redundant(rules)) == 2

    def test_negative_improvement_rejected(self):
        with pytest.raises(ValueError):
            filter_redundant({}, min_improvement=-0.1)
