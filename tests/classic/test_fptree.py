"""Tests for the FP-tree structure itself."""

from repro.classic import FPTree


def build(transactions, min_count=1):
    return FPTree(((t, 1) for t in transactions), min_count)


class TestConstruction:
    def test_empty(self):
        tree = build([])
        assert tree.is_empty

    def test_all_items_filtered(self):
        tree = build([["a"], ["b"]], min_count=2)
        assert tree.is_empty

    def test_item_counts(self):
        tree = build([["a", "b"], ["a"], ["b", "c"]])
        assert tree.item_counts == {"a": 2, "b": 2, "c": 1}

    def test_min_count_filters(self):
        tree = build([["a", "b"], ["a"]], min_count=2)
        assert "b" not in tree.item_counts
        assert "a" in tree.item_counts

    def test_shared_prefix_compression(self):
        tree = build([["a", "b"], ["a", "b"], ["a", "c"]])
        # Root has a single 'a' child with count 3.
        (a_node,) = tree.root.children.values()
        assert a_node.item == "a"
        assert a_node.count == 3
        assert set(a_node.children) == {"b", "c"}

    def test_weighted_insertion(self):
        tree = FPTree([(["a"], 5), (["a", "b"], 2)], min_count=1)
        assert tree.item_counts == {"a": 7, "b": 2}


class TestQueries:
    def test_nodes_of_links_all_occurrences(self):
        # a and c are more frequent than b, so b lands below both and
        # therefore occupies two distinct nodes.
        tree = build([["a", "b"], ["a"], ["a"], ["c", "b"], ["c"], ["c"]])
        b_nodes = list(tree.nodes_of("b"))
        assert len(b_nodes) == 2
        assert all(n.item == "b" for n in b_nodes)

    def test_nodes_of_unknown_item(self):
        tree = build([["a"]])
        assert list(tree.nodes_of("zzz")) == []

    def test_conditional_pattern_base(self):
        tree = build(
            [["a", "b"], ["a", "b"], ["a"], ["a"], ["c", "b"], ["c"], ["c"], ["c"]]
        )
        base = tree.conditional_pattern_base("b")
        as_sets = {(tuple(path), count) for path, count in base}
        assert as_sets == {(("a",), 2), (("c",), 1)}

    def test_prefix_path_excludes_self_and_root(self):
        tree = build([["a", "b", "c"]])
        # Deepest node's prefix is the two items above it.
        node = tree.root
        while node.children:
            (node,) = node.children.values()
        assert len(node.prefix_path()) == 2

    def test_single_path_detected(self):
        tree = build([["a", "b"], ["a"]])
        path = tree.single_path()
        assert path is not None
        assert [item for item, _ in path] == ["a", "b"]
        assert [count for _, count in path] == [2, 1]

    def test_branching_tree_not_single_path(self):
        tree = build([["a"], ["b"]])
        assert tree.single_path() is None

    def test_items_ascending_frequency(self):
        tree = build([["a", "b"], ["a"], ["a", "c"], ["b"]])
        order = tree.items_ascending()
        counts = [tree.item_counts[i] for i in order]
        assert counts == sorted(counts)
