"""Tests for FP-Growth, including the Apriori-equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic import apriori_frequent_itemsets, fpgrowth_frequent_itemsets
from repro.core import Itemset, TransactionDB
from repro.errors import EmptyDatabaseError

random_dbs = st.lists(
    st.lists(st.sampled_from(list("abcdefg")), max_size=5),
    min_size=1,
    max_size=40,
).map(TransactionDB)

thresholds = st.sampled_from([0.05, 0.1, 0.25, 0.5, 0.75, 1.0])


class TestSmallCases:
    def test_tiny_db(self, tiny_db):
        result = fpgrowth_frequent_itemsets(tiny_db, 0.5)
        assert result[Itemset(["cough", "tea"])] == pytest.approx(0.5)

    def test_single_path_tree(self):
        # All transactions nest: the tree is a single path and the
        # combinatorial shortcut kicks in.
        db = TransactionDB([["a"], ["a", "b"], ["a", "b", "c"]])
        result = fpgrowth_frequent_itemsets(db, 1 / 3)
        assert result[Itemset(["a"])] == pytest.approx(1.0)
        assert result[Itemset(["a", "b"])] == pytest.approx(2 / 3)
        assert result[Itemset(["a", "b", "c"])] == pytest.approx(1 / 3)

    def test_max_size_cap(self, tiny_db):
        result = fpgrowth_frequent_itemsets(tiny_db, 0.1, max_size=2)
        assert all(len(itemset) <= 2 for itemset in result)

    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            fpgrowth_frequent_itemsets(TransactionDB([]), 0.5)

    def test_zero_support_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            fpgrowth_frequent_itemsets(tiny_db, 0.0)

    def test_nothing_frequent(self):
        db = TransactionDB([["a"], ["b"]])
        assert fpgrowth_frequent_itemsets(db, 0.9) == {}


class TestEquivalence:
    """FP-Growth must agree exactly with Apriori — the executable spec."""

    @settings(max_examples=60, deadline=None)
    @given(random_dbs, thresholds)
    def test_matches_apriori(self, db, min_support):
        a = apriori_frequent_itemsets(db, min_support)
        f = fpgrowth_frequent_itemsets(db, min_support)
        assert set(a) == set(f)
        for itemset in a:
            assert a[itemset] == pytest.approx(f[itemset])

    @settings(max_examples=20, deadline=None)
    @given(random_dbs)
    def test_matches_apriori_with_size_cap(self, db):
        a = apriori_frequent_itemsets(db, 0.2, max_size=2)
        f = fpgrowth_frequent_itemsets(db, 0.2, max_size=2)
        assert a == f

    def test_matches_on_dense_db(self, rng):
        rows = [
            [f"i{k}" for k in range(10) if rng.random() < 0.5] for _ in range(150)
        ]
        db = TransactionDB(rows)
        a = apriori_frequent_itemsets(db, 0.1)
        f = fpgrowth_frequent_itemsets(db, 0.1)
        assert set(a) == set(f)
