"""Tests for Eclat, including three-way algorithm equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic import (
    apriori_frequent_itemsets,
    eclat_frequent_itemsets,
    fpgrowth_frequent_itemsets,
    mine_rules,
)
from repro.core import Itemset, TransactionDB
from repro.errors import EmptyDatabaseError

random_dbs = st.lists(
    st.lists(st.sampled_from(list("abcdefg")), max_size=5),
    min_size=1,
    max_size=40,
).map(TransactionDB)

thresholds = st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0])


class TestSmallCases:
    def test_tiny_db(self, tiny_db):
        result = eclat_frequent_itemsets(tiny_db, 0.5)
        assert result[Itemset(["cough", "tea"])] == pytest.approx(0.5)

    def test_max_size(self, tiny_db):
        result = eclat_frequent_itemsets(tiny_db, 0.1, max_size=1)
        assert all(len(i) == 1 for i in result)

    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            eclat_frequent_itemsets(TransactionDB([]), 0.5)

    def test_zero_support_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            eclat_frequent_itemsets(tiny_db, 0.0)

    def test_nothing_frequent(self):
        assert eclat_frequent_itemsets(TransactionDB([["a"], ["b"]]), 0.9) == {}


class TestThreeWayEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(random_dbs, thresholds)
    def test_all_three_agree(self, db, min_support):
        apriori = apriori_frequent_itemsets(db, min_support)
        fpgrowth = fpgrowth_frequent_itemsets(db, min_support)
        eclat = eclat_frequent_itemsets(db, min_support)
        assert set(apriori) == set(fpgrowth) == set(eclat)
        for itemset in apriori:
            assert apriori[itemset] == pytest.approx(eclat[itemset])

    @settings(max_examples=20, deadline=None)
    @given(random_dbs)
    def test_size_cap_agrees(self, db):
        fpgrowth = fpgrowth_frequent_itemsets(db, 0.2, max_size=2)
        eclat = eclat_frequent_itemsets(db, 0.2, max_size=2)
        assert fpgrowth == eclat


class TestRulegenIntegration:
    def test_mine_rules_accepts_eclat(self, tiny_db):
        eclat_rules = mine_rules(tiny_db, 0.15, 0.5, algorithm="eclat")
        fp_rules = mine_rules(tiny_db, 0.15, 0.5, algorithm="fpgrowth")
        assert eclat_rules == fp_rules
