"""Brute-force validation of the classic miners.

On tiny databases the full powerset can be enumerated, giving an
*exhaustive* independent oracle: every frequent itemset the miners
report must appear with the exact same support, and nothing frequent
may be missed. This closes the loop that the three-way equivalence
tests leave open (all three implementations could share a bug).
"""

from itertools import chain, combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic import (
    apriori_frequent_itemsets,
    eclat_frequent_itemsets,
    fpgrowth_frequent_itemsets,
)
from repro.core import Itemset, TransactionDB

tiny_dbs = st.lists(
    st.lists(st.sampled_from(list("abcde")), max_size=4),
    min_size=1,
    max_size=12,
).map(TransactionDB)

MINERS = [
    apriori_frequent_itemsets,
    fpgrowth_frequent_itemsets,
    eclat_frequent_itemsets,
]


def brute_force(db: TransactionDB, min_support: float) -> dict[Itemset, float]:
    """Exhaustive frequent-itemset enumeration over the item powerset."""
    items = db.items
    result = {}
    subsets = chain.from_iterable(
        combinations(items, k) for k in range(1, len(items) + 1)
    )
    for subset in subsets:
        itemset = Itemset(subset)
        support = db.support(itemset)
        if support >= min_support - 1e-12:
            result[itemset] = support
    return result


@pytest.mark.parametrize("miner", MINERS, ids=lambda m: m.__module__.split(".")[-1])
class TestAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(tiny_dbs, st.sampled_from([0.1, 0.3, 0.5, 0.9]))
    def test_exact_agreement(self, miner, db, min_support):
        expected = brute_force(db, min_support)
        actual = miner(db, min_support)
        assert set(actual) == set(expected)
        for itemset, support in expected.items():
            assert actual[itemset] == pytest.approx(support)

    def test_worked_example(self, miner):
        db = TransactionDB(
            [["a", "b", "c"], ["a", "b"], ["a", "c"], ["b"], ["a"]]
        )
        expected = brute_force(db, 0.4)
        assert miner(db, 0.4) == expected
