"""Tests for rule generation from frequent itemsets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic import fpgrowth_frequent_itemsets, mine_rules, rules_from_itemsets
from repro.core import Itemset, Rule, RuleStats, TransactionDB

random_dbs = st.lists(
    st.lists(st.sampled_from(list("abcde")), max_size=4),
    min_size=1,
    max_size=30,
).map(TransactionDB)


class TestRulesFromItemsets:
    def test_simple_pair(self):
        supports = {
            Itemset(["a"]): 0.8,
            Itemset(["b"]): 0.5,
            Itemset(["a", "b"]): 0.4,
        }
        rules = rules_from_itemsets(supports, min_confidence=0.5)
        assert rules[Rule(["a"], ["b"])] == RuleStats(0.4, 0.5)
        assert rules[Rule(["b"], ["a"])] == RuleStats(0.4, 0.8)

    def test_confidence_threshold_filters(self):
        supports = {
            Itemset(["a"]): 0.8,
            Itemset(["b"]): 0.5,
            Itemset(["a", "b"]): 0.4,
        }
        rules = rules_from_itemsets(supports, min_confidence=0.6)
        assert Rule(["a"], ["b"]) not in rules  # conf 0.5 < 0.6
        assert Rule(["b"], ["a"]) in rules  # conf 0.8

    def test_singletons_yield_no_rules_by_default(self):
        rules = rules_from_itemsets({Itemset(["a"]): 0.5}, 0.0)
        assert rules == {}

    def test_itemset_rules_option(self):
        rules = rules_from_itemsets(
            {Itemset(["a"]): 0.5}, 0.3, include_itemset_rules=True
        )
        assert rules[Rule.itemset_rule(["a"])] == RuleStats(0.5, 0.5)

    def test_missing_subset_skipped_not_fabricated(self):
        # Not downward closed: {a} absent → no rule with antecedent {a}.
        supports = {Itemset(["a", "b"]): 0.4, Itemset(["b"]): 0.5}
        rules = rules_from_itemsets(supports, 0.0)
        assert Rule(["a"], ["b"]) not in rules
        assert Rule(["b"], ["a"]) in rules

    def test_three_item_bodies_generate_all_splits(self):
        supports = {
            Itemset(s): 0.5
            for s in (["a"], ["b"], ["c"], ["a", "b"], ["a", "c"], ["b", "c"],
                      ["a", "b", "c"])
        }
        rules = rules_from_itemsets(supports, 0.0)
        three_body = [r for r in rules if len(r.body) == 3]
        assert len(three_body) == 6  # 2^3 − 2 splits


class TestMineRules:
    def test_algorithms_agree(self, tiny_db):
        fp = mine_rules(tiny_db, 0.15, 0.5, algorithm="fpgrowth")
        ap = mine_rules(tiny_db, 0.15, 0.5, algorithm="apriori")
        assert fp == ap

    def test_unknown_algorithm(self, tiny_db):
        with pytest.raises(ValueError, match="unknown algorithm"):
            mine_rules(tiny_db, 0.1, 0.5, algorithm="magic")

    def test_stats_match_database(self, tiny_db):
        rules = mine_rules(tiny_db, 0.15, 0.3)
        for rule, stats in rules.items():
            exact = tiny_db.rule_stats(rule)
            assert stats.support == pytest.approx(exact.support)
            assert stats.confidence == pytest.approx(exact.confidence)

    @settings(max_examples=30, deadline=None)
    @given(random_dbs)
    def test_all_rules_meet_thresholds(self, db):
        rules = mine_rules(db, 0.2, 0.6)
        for stats in rules.values():
            assert stats.support >= 0.2 - 1e-9
            assert stats.confidence >= 0.6 - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(random_dbs)
    def test_rule_support_consistency(self, db):
        # Every generated rule's support equals its body's support.
        supports = fpgrowth_frequent_itemsets(db, 0.2)
        rules = rules_from_itemsets(supports, 0.5)
        for rule, stats in rules.items():
            assert stats.support == pytest.approx(supports[rule.body])
