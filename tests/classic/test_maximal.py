"""Tests for maximal/closed itemset computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classic import (
    closed_itemsets,
    fpgrowth_frequent_itemsets,
    maximal_itemsets,
)
from repro.core import Itemset, TransactionDB

random_dbs = st.lists(
    st.lists(st.sampled_from(list("abcde")), max_size=4),
    min_size=1,
    max_size=25,
).map(TransactionDB)


class TestMaximal:
    def test_simple(self):
        supports = {
            Itemset(["a"]): 0.8,
            Itemset(["b"]): 0.6,
            Itemset(["a", "b"]): 0.5,
        }
        assert maximal_itemsets(supports) == {Itemset(["a", "b"]): 0.5}

    def test_incomparable_both_kept(self):
        supports = {Itemset(["a"]): 0.5, Itemset(["b"]): 0.5}
        assert set(maximal_itemsets(supports)) == {Itemset(["a"]), Itemset(["b"])}

    def test_empty(self):
        assert maximal_itemsets({}) == {}

    @settings(max_examples=25, deadline=None)
    @given(random_dbs)
    def test_maximal_reconstructs_frequency(self, db):
        supports = fpgrowth_frequent_itemsets(db, 0.2)
        maximal = maximal_itemsets(supports)
        # Every frequent itemset is a subset of some maximal one.
        for itemset in supports:
            assert any(itemset <= m for m in maximal)
        # And no maximal set has a frequent strict superset.
        for m in maximal:
            assert not any(m < other for other in supports)


class TestClosed:
    def test_subsumed_by_equal_support_superset(self):
        supports = {
            Itemset(["a"]): 0.5,
            Itemset(["a", "b"]): 0.5,  # same support → {a} not closed
            Itemset(["b"]): 0.8,
        }
        closed = closed_itemsets(supports)
        assert Itemset(["a"]) not in closed
        assert Itemset(["a", "b"]) in closed
        assert Itemset(["b"]) in closed

    def test_all_distinct_supports_all_closed(self):
        supports = {
            Itemset(["a"]): 0.8,
            Itemset(["b"]): 0.6,
            Itemset(["a", "b"]): 0.5,
        }
        assert closed_itemsets(supports) == supports

    @settings(max_examples=25, deadline=None)
    @given(random_dbs)
    def test_closed_superset_of_maximal(self, db):
        supports = fpgrowth_frequent_itemsets(db, 0.2)
        closed = set(closed_itemsets(supports))
        maximal = set(maximal_itemsets(supports))
        assert maximal <= closed

    @settings(max_examples=25, deadline=None)
    @given(random_dbs)
    def test_closed_reconstructs_supports(self, db):
        # supp(X) = max over closed supersets of X — the defining
        # property of the closed representation.
        supports = fpgrowth_frequent_itemsets(db, 0.2)
        closed = closed_itemsets(supports)
        for itemset, support in supports.items():
            covering = [s for c, s in closed.items() if itemset <= c]
            assert covering
            assert max(covering) == pytest.approx(support)
