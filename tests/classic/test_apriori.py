"""Tests for the Apriori miner."""

import pytest

from repro.classic import apriori_frequent_itemsets
from repro.core import Itemset, TransactionDB
from repro.errors import EmptyDatabaseError


class TestSmallCases:
    def test_tiny_db(self, tiny_db):
        result = apriori_frequent_itemsets(tiny_db, 0.5)
        assert result[Itemset(["cough"])] == pytest.approx(4 / 6)
        assert result[Itemset(["tea"])] == pytest.approx(4 / 6)
        assert result[Itemset(["cough", "tea"])] == pytest.approx(3 / 6)
        assert Itemset(["honey"]) not in result  # 2/6 < 0.5

    def test_threshold_boundary_inclusive(self):
        db = TransactionDB([["a"], ["a"], ["b"], ["b"]])
        result = apriori_frequent_itemsets(db, 0.5)
        assert Itemset(["a"]) in result and Itemset(["b"]) in result

    def test_single_transaction(self):
        db = TransactionDB([["a", "b"]])
        result = apriori_frequent_itemsets(db, 1.0)
        assert result == {
            Itemset(["a"]): 1.0,
            Itemset(["b"]): 1.0,
            Itemset(["a", "b"]): 1.0,
        }

    def test_nothing_frequent(self):
        db = TransactionDB([["a"], ["b"], ["c"], ["d"]])
        assert apriori_frequent_itemsets(db, 0.5) == {}

    def test_max_size_cap(self, tiny_db):
        result = apriori_frequent_itemsets(tiny_db, 0.1, max_size=1)
        assert all(len(itemset) == 1 for itemset in result)

    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            apriori_frequent_itemsets(TransactionDB([]), 0.5)

    def test_zero_support_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="strictly positive"):
            apriori_frequent_itemsets(tiny_db, 0.0)

    def test_support_above_one_rejected(self, tiny_db):
        with pytest.raises(Exception):
            apriori_frequent_itemsets(tiny_db, 1.5)


class TestProperties:
    def test_downward_closure(self, tiny_db):
        result = apriori_frequent_itemsets(tiny_db, 0.15)
        for itemset in result:
            for sub in itemset.subsets(proper=True):
                if sub:
                    assert sub in result

    def test_supports_are_exact(self, tiny_db):
        result = apriori_frequent_itemsets(tiny_db, 0.15)
        for itemset, support in result.items():
            assert support == pytest.approx(tiny_db.support(itemset))

    def test_monotone_in_threshold(self, tiny_db):
        loose = apriori_frequent_itemsets(tiny_db, 0.15)
        tight = apriori_frequent_itemsets(tiny_db, 0.5)
        assert set(tight) <= set(loose)
