"""Tests for repro.core.rule."""

import pytest

from repro.core import Itemset, Rule
from repro.errors import InvalidRuleError


class TestConstruction:
    def test_basic(self):
        r = Rule(["a"], ["b"])
        assert r.antecedent == Itemset(["a"])
        assert r.consequent == Itemset(["b"])
        assert r.body == Itemset(["a", "b"])

    def test_empty_consequent_rejected(self):
        with pytest.raises(InvalidRuleError, match="consequent"):
            Rule(["a"], [])

    def test_overlap_rejected(self):
        with pytest.raises(InvalidRuleError, match="disjoint"):
            Rule(["a", "b"], ["b"])

    def test_empty_antecedent_allowed(self):
        r = Rule([], ["a"])
        assert r.is_itemset_rule

    def test_itemset_rule_constructor(self):
        r = Rule.itemset_rule(["a", "b"])
        assert r.is_itemset_rule
        assert r.body == Itemset(["a", "b"])

    def test_len_is_body_size(self):
        assert len(Rule(["a", "b"], ["c"])) == 3


class TestParse:
    def test_parse_basic(self):
        r = Rule.parse("a, b -> c")
        assert r == Rule(["a", "b"], ["c"])

    def test_parse_strips_whitespace(self):
        assert Rule.parse("  a ->  b , c ") == Rule(["a"], ["b", "c"])

    def test_parse_empty_antecedent(self):
        assert Rule.parse("-> a").is_itemset_rule

    def test_parse_multiword_items(self):
        r = Rule.parse("sore throat -> ginger tea")
        assert "sore throat" in r.antecedent

    def test_parse_missing_arrow_raises(self):
        with pytest.raises(InvalidRuleError, match="->"):
            Rule.parse("a, b")

    def test_parse_empty_consequent_raises(self):
        with pytest.raises(InvalidRuleError):
            Rule.parse("a ->")


class TestEquality:
    def test_equal_rules(self):
        assert Rule(["a"], ["b"]) == Rule(["a"], ["b"])
        assert hash(Rule(["a"], ["b"])) == hash(Rule(["a"], ["b"]))

    def test_direction_matters(self):
        assert Rule(["a"], ["b"]) != Rule(["b"], ["a"])

    def test_split_matters(self):
        assert Rule(["a"], ["b", "c"]) != Rule(["a", "b"], ["c"])

    def test_str(self):
        assert str(Rule(["a"], ["b"])) == "{a} -> {b}"


class TestGeneralization:
    def test_generalizes_self(self):
        r = Rule(["a"], ["b"])
        assert r.generalizes(r)
        assert r.specializes(r)

    def test_smaller_antecedent_generalizes(self):
        general = Rule(["a"], ["c"])
        specific = Rule(["a", "b"], ["c"])
        assert general.generalizes(specific)
        assert specific.specializes(general)
        assert not specific.generalizes(general)

    def test_smaller_consequent_generalizes(self):
        general = Rule(["a"], ["c"])
        specific = Rule(["a"], ["c", "d"])
        assert general.generalizes(specific)

    def test_cross_side_not_comparable(self):
        # {a}→{b,c} vs {a,b}→{c}: same body, different splits — neither
        # generalizes the other (b sits on different sides).
        r1 = Rule(["a"], ["b", "c"])
        r2 = Rule(["a", "b"], ["c"])
        assert not r1.generalizes(r2)
        assert not r2.generalizes(r1)

    def test_sort_key_orders_by_size_first(self):
        small = Rule(["a"], ["b"])
        big = Rule(["a", "b"], ["c"])
        assert small.sort_key() < big.sort_key()
