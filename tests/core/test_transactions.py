"""Tests for repro.core.transactions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Itemset, Rule, TransactionDB
from repro.errors import EmptyDatabaseError

dbs = st.lists(
    st.lists(st.sampled_from(list("abcde")), max_size=4),
    min_size=1,
    max_size=30,
).map(TransactionDB)


class TestBasics:
    def test_len_and_iter(self, tiny_db):
        assert len(tiny_db) == 6
        assert all(isinstance(t, frozenset) for t in tiny_db)

    def test_getitem(self, tiny_db):
        assert tiny_db[0] == frozenset({"cough", "tea"})

    def test_items_sorted(self, tiny_db):
        assert tiny_db.items == ("cough", "headache", "honey", "tea")

    def test_transactions_deduplicate_items(self):
        db = TransactionDB([["a", "a", "b"]])
        assert db[0] == frozenset({"a", "b"})

    def test_empty_transactions_allowed(self):
        db = TransactionDB([[], ["a"]])
        assert db.support(Itemset(["a"])) == 0.5


class TestSupport:
    def test_known_supports(self, tiny_db):
        assert tiny_db.support(Itemset(["cough"])) == pytest.approx(4 / 6)
        assert tiny_db.support(Itemset(["cough", "tea"])) == pytest.approx(3 / 6)
        assert tiny_db.support(Itemset(["cough", "tea", "honey"])) == pytest.approx(1 / 6)

    def test_empty_itemset_full_support(self, tiny_db):
        assert tiny_db.support(Itemset.empty()) == 1.0

    def test_unknown_item_zero(self, tiny_db):
        assert tiny_db.support(Itemset(["aspirin"])) == 0.0

    def test_count_matches_support(self, tiny_db):
        itemset = Itemset(["tea"])
        assert tiny_db.count(itemset) == tiny_db.support(itemset) * len(tiny_db)

    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            TransactionDB([]).support(Itemset(["a"]))

    def test_matching_ids(self, tiny_db):
        assert tiny_db.matching_ids(Itemset(["honey"])) == frozenset({1, 5})

    @given(dbs)
    def test_support_antitone_in_itemset(self, db):
        for row in db:
            items = sorted(row)
            if len(items) >= 2:
                small = Itemset(items[:1])
                big = Itemset(items[:2])
                assert db.support(small) >= db.support(big)

    @given(dbs)
    def test_item_frequencies_match_support(self, db):
        for item, freq in db.item_frequencies().items():
            assert freq == pytest.approx(db.support(Itemset([item])))


class TestRuleStats:
    def test_known_rule(self, tiny_db, simple_rule):
        stats = tiny_db.rule_stats(simple_rule)
        assert stats.support == pytest.approx(3 / 6)
        assert stats.confidence == pytest.approx(3 / 4)

    def test_vacuous_antecedent_confidence_zero(self, tiny_db):
        stats = tiny_db.rule_stats(Rule(["aspirin"], ["tea"]))
        assert stats.support == 0.0
        assert stats.confidence == 0.0

    def test_itemset_rule(self, tiny_db):
        stats = tiny_db.rule_stats(Rule.itemset_rule(["tea"]))
        assert stats.support == stats.confidence == pytest.approx(4 / 6)

    @given(dbs)
    def test_confidence_at_least_support(self, db):
        items = db.items
        if len(items) >= 2:
            stats = db.rule_stats(Rule([items[0]], [items[1]]))
            assert stats.confidence >= stats.support - 1e-12


class TestDerived:
    def test_project(self, tiny_db):
        projected = tiny_db.project(["tea"])
        assert len(projected) == len(tiny_db)
        assert projected.items == ("tea",)

    def test_sample_size(self, tiny_db, rng):
        sampled = tiny_db.sample(10, rng)
        assert len(sampled) == 10
        assert set(sampled.items) <= set(tiny_db.items)

    def test_sample_empty_raises(self, rng):
        with pytest.raises(EmptyDatabaseError):
            TransactionDB([]).sample(1, rng)

    def test_concatenate(self, tiny_db):
        double = TransactionDB.concatenate([tiny_db, tiny_db])
        assert len(double) == 12
        assert double.support(Itemset(["cough"])) == pytest.approx(
            tiny_db.support(Itemset(["cough"]))
        )

    def test_concatenate_empty_list(self):
        assert len(TransactionDB.concatenate([])) == 0
