"""Tests for the rule generalization lattice (repro.core.order)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Rule,
    comparable,
    generalizations,
    is_generalization_chain,
    maximal_rules,
    minimal_rules,
    specializations,
    upward_closure,
)


def random_rules():
    items = list("abcdef")
    def build(draw_sets):
        a, c = draw_sets
        c = [x for x in c if x not in a] or ["z"]
        return Rule(a, c)
    return st.tuples(
        st.lists(st.sampled_from(items), max_size=2, unique=True),
        st.lists(st.sampled_from(items), min_size=1, max_size=2, unique=True),
    ).map(build)


class TestGeneralizations:
    def test_drop_from_antecedent(self):
        gens = set(generalizations(Rule(["a", "b"], ["c"])))
        assert Rule(["a"], ["c"]) in gens
        assert Rule(["b"], ["c"]) in gens

    def test_consequent_kept_nonempty(self):
        gens = list(generalizations(Rule(["a"], ["c"])))
        # Only the antecedent can shrink; {a}→{} is illegal.
        assert gens == [Rule([], ["c"])]

    def test_multi_item_consequent_shrinks(self):
        gens = set(generalizations(Rule([], ["c", "d"])))
        assert gens == {Rule([], ["c"]), Rule([], ["d"])}

    @given(random_rules())
    def test_all_outputs_generalize_input(self, rule):
        for general in generalizations(rule):
            assert general.generalizes(rule)
            assert general != rule


class TestSpecializations:
    def test_adds_one_item_each_side(self):
        specs = set(specializations(Rule(["a"], ["b"]), ["a", "b", "c"]))
        assert Rule(["a", "c"], ["b"]) in specs
        assert Rule(["a"], ["b", "c"]) in specs
        assert len(specs) == 2

    def test_skips_used_items(self):
        specs = list(specializations(Rule(["a"], ["b"]), ["a", "b"]))
        assert specs == []

    @given(random_rules())
    def test_all_outputs_specialize_input(self, rule):
        for specific in specializations(rule, list("abcdefgh")):
            assert rule.generalizes(specific)
            assert specific != rule


class TestChainsAndExtremes:
    def test_chain_detection(self):
        chain = [Rule([], ["c"]), Rule(["a"], ["c"]), Rule(["a", "b"], ["c"])]
        assert is_generalization_chain(chain)
        assert not is_generalization_chain(list(reversed(chain)))

    def test_maximal_rules(self):
        rules = [Rule(["a"], ["c"]), Rule(["a", "b"], ["c"]), Rule(["x"], ["y"])]
        kept = set(maximal_rules(rules))
        assert kept == {Rule(["a", "b"], ["c"]), Rule(["x"], ["y"])}

    def test_minimal_rules(self):
        rules = [Rule(["a"], ["c"]), Rule(["a", "b"], ["c"]), Rule(["x"], ["y"])]
        kept = set(minimal_rules(rules))
        assert kept == {Rule(["a"], ["c"]), Rule(["x"], ["y"])}

    def test_maximal_handles_duplicates(self):
        rules = [Rule(["a"], ["c"])] * 3
        assert maximal_rules(rules) == [Rule(["a"], ["c"])]

    def test_empty_inputs(self):
        assert maximal_rules([]) == []
        assert minimal_rules([]) == []

    @given(st.lists(random_rules(), max_size=8))
    def test_maximal_subset_of_input(self, rules):
        kept = maximal_rules(rules)
        assert set(kept) <= set(rules)
        # No kept rule generalizes another kept rule.
        for a in kept:
            for b in kept:
                if a != b:
                    assert not a.generalizes(b)


class TestClosure:
    def test_upward_closure_contains_input(self):
        rule = Rule(["a", "b"], ["c"])
        closure = upward_closure([rule])
        assert rule in closure
        assert Rule(["a"], ["c"]) in closure
        assert Rule([], ["c"]) in closure

    def test_upward_closure_size(self):
        # {a,b}→{c}: antecedent subsets {∅,{a},{b},{a,b}} × consequent {c}.
        closure = upward_closure([Rule(["a", "b"], ["c"])])
        assert len(closure) == 4

    @given(st.lists(random_rules(), min_size=1, max_size=4))
    def test_closure_is_upward_closed(self, rules):
        closure = upward_closure(rules)
        for rule in closure:
            for general in generalizations(rule):
                assert general in closure


class TestComparable:
    def test_comparable_pairs(self):
        a, b = Rule(["x"], ["y"]), Rule(["x", "z"], ["y"])
        assert comparable(a, b)
        assert comparable(b, a)

    def test_incomparable_pair(self):
        assert not comparable(Rule(["x"], ["y"]), Rule(["p"], ["q"]))
