"""Tests for repro.core.measures."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RuleStats, conviction, leverage, lift
from repro.errors import InvalidThresholdError

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestRuleStats:
    def test_basic(self):
        s = RuleStats(0.2, 0.6)
        assert s.support == 0.2
        assert s.confidence == 0.6

    def test_support_cannot_exceed_confidence(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            RuleStats(0.7, 0.3)

    def test_equal_support_confidence_ok(self):
        RuleStats(0.5, 0.5)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidThresholdError):
            RuleStats(-0.1, 0.5)
        with pytest.raises(InvalidThresholdError):
            RuleStats(0.1, 1.5)

    def test_as_tuple(self):
        assert RuleStats(0.2, 0.6).as_tuple() == (0.2, 0.6)

    def test_meets(self):
        s = RuleStats(0.2, 0.6)
        assert s.meets(0.2, 0.6)
        assert s.meets(0.1, 0.5)
        assert not s.meets(0.3, 0.5)
        assert not s.meets(0.1, 0.7)

    def test_antecedent_support(self):
        assert RuleStats(0.3, 0.6).antecedent_support == pytest.approx(0.5)
        assert RuleStats(0.0, 0.0).antecedent_support == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RuleStats(0.1, 0.5).support = 0.9  # type: ignore[misc]

    def test_str_format(self):
        assert str(RuleStats(0.25, 0.5)) == "(s=0.250, c=0.500)"


class TestLift:
    def test_independent_items_lift_one(self):
        assert lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_positive_correlation(self):
        assert lift(0.5, 0.5, 0.5) == pytest.approx(2.0)

    def test_zero_joint_is_zero(self):
        assert lift(0.0, 0.5, 0.5) == 0.0

    def test_zero_marginal_is_inf(self):
        assert lift(0.1, 0.0, 0.5) == math.inf

    @given(fractions, fractions, fractions)
    def test_never_negative(self, joint, a, b):
        assert lift(joint, a, b) >= 0.0


class TestLeverage:
    def test_independent_is_zero(self):
        assert leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_positive(self):
        assert leverage(0.5, 0.5, 0.5) == pytest.approx(0.25)

    @given(fractions, fractions, fractions)
    def test_bounded_for_consistent_inputs(self, raw, a, b):
        # The classic [−0.25, 1] bound holds only for probabilistically
        # consistent triples: max(0, a+b−1) ≤ joint ≤ min(a, b).
        low, high = max(0.0, a + b - 1.0), min(a, b)
        joint = low + raw * (high - low)
        assert -0.25 - 1e-9 <= leverage(joint, a, b) <= 1.0


class TestConviction:
    def test_perfect_confidence_is_inf(self):
        assert conviction(1.0, 0.5) == math.inf

    def test_independence_is_one(self):
        assert conviction(0.5, 0.5) == pytest.approx(1.0)

    def test_zero_confidence(self):
        assert conviction(0.0, 0.4) == pytest.approx(0.6)
