"""Tests for repro.core.itemset, including canonicalization properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Itemset

items_strategy = st.lists(
    st.sampled_from(list("abcdefgh")), min_size=0, max_size=6
)


class TestConstruction:
    def test_deduplicates(self):
        assert len(Itemset(["a", "a", "b"])) == 2

    def test_sorted_canonical_order(self):
        assert Itemset(["c", "a", "b"]).items == ("a", "b", "c")

    def test_from_itemset_is_identity(self):
        a = Itemset(["x", "y"])
        assert Itemset(a) == a

    def test_of_variadic(self):
        assert Itemset.of("b", "a") == Itemset(["a", "b"])

    def test_empty(self):
        assert len(Itemset.empty()) == 0
        assert not Itemset.empty()

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            Itemset([1])  # type: ignore[list-item]


class TestEqualityHashing:
    @given(items_strategy)
    def test_order_independent(self, items):
        assert Itemset(items) == Itemset(list(reversed(items)))
        assert hash(Itemset(items)) == hash(Itemset(list(reversed(items))))

    def test_str_is_canonical(self):
        assert str(Itemset(["b", "a"])) == "{a, b}"

    def test_repr_roundtrip(self):
        a = Itemset(["x", "y"])
        assert eval(repr(a)) == a


class TestSetAlgebra:
    def test_union(self):
        assert Itemset(["a"]) | Itemset(["b"]) == Itemset(["a", "b"])

    def test_intersection(self):
        assert Itemset(["a", "b"]) & Itemset(["b", "c"]) == Itemset(["b"])

    def test_difference(self):
        assert Itemset(["a", "b"]) - Itemset(["b"]) == Itemset(["a"])

    def test_isdisjoint(self):
        assert Itemset(["a"]).isdisjoint(Itemset(["b"]))
        assert not Itemset(["a"]).isdisjoint(Itemset(["a"]))

    def test_with_item(self):
        assert Itemset(["a"]).with_item("b") == Itemset(["a", "b"])

    @given(items_strategy, items_strategy)
    def test_union_commutes(self, a, b):
        assert Itemset(a) | Itemset(b) == Itemset(b) | Itemset(a)

    @given(items_strategy, items_strategy)
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert (Itemset(a) - Itemset(b)).isdisjoint(Itemset(b))


class TestPartialOrder:
    def test_subset_operators(self):
        small, big = Itemset(["a"]), Itemset(["a", "b"])
        assert small <= big and small < big
        assert big >= small and big > small
        assert not big <= small

    def test_self_comparison(self):
        a = Itemset(["a"])
        assert a <= a and a >= a
        assert not a < a and not a > a

    @given(items_strategy, items_strategy)
    def test_subset_antisymmetry(self, a, b):
        x, y = Itemset(a), Itemset(b)
        if x <= y and y <= x:
            assert x == y

    @given(items_strategy, items_strategy)
    def test_intersection_is_lower_bound(self, a, b):
        x, y = Itemset(a), Itemset(b)
        assert (x & y) <= x and (x & y) <= y


class TestEnumeration:
    def test_subsets_count(self):
        a = Itemset(["a", "b", "c"])
        assert len(list(a.subsets())) == 8
        assert len(list(a.subsets(proper=True))) == 7
        assert len(list(a.subsets(size=2))) == 3

    def test_subsets_out_of_range_size(self):
        assert list(Itemset(["a"]).subsets(size=5)) == []

    def test_immediate_subsets(self):
        a = Itemset(["a", "b"])
        subs = set(a.immediate_subsets())
        assert subs == {Itemset(["a"]), Itemset(["b"])}

    @given(items_strategy)
    def test_all_subsets_are_subsets(self, items):
        a = Itemset(items)
        for sub in a.subsets():
            assert sub <= a

    def test_contains(self):
        a = Itemset([f"i{k}" for k in range(12)])
        assert "i3" in a
        assert "zzz" not in a
