"""Tests for repro.core.items."""

import pytest

from repro.core import DEFAULT_CATEGORY, ItemDomain
from repro.errors import InvalidItemError


class TestConstruction:
    def test_basic(self):
        d = ItemDomain(["a", "b"])
        assert len(d) == 2
        assert list(d) == ["a", "b"]

    def test_duplicate_items_rejected(self):
        with pytest.raises(InvalidItemError, match="duplicate"):
            ItemDomain(["a", "a"])

    def test_empty_item_name_rejected(self):
        with pytest.raises(InvalidItemError):
            ItemDomain([""])

    def test_non_string_item_rejected(self):
        with pytest.raises(InvalidItemError):
            ItemDomain([42])  # type: ignore[list-item]

    def test_category_for_unknown_item_rejected(self):
        with pytest.raises(InvalidItemError, match="outside the domain"):
            ItemDomain(["a"], categories={"b": "x"})

    def test_empty_domain_allowed(self):
        assert len(ItemDomain([])) == 0

    def test_from_categories(self):
        d = ItemDomain.from_categories({"s": ["a", "b"], "r": ["c"]})
        assert d.category_of("a") == "s"
        assert d.category_of("c") == "r"
        assert d.categories == ("s", "r")


class TestAccessors:
    def test_default_category(self):
        d = ItemDomain(["a"])
        assert d.category_of("a") == DEFAULT_CATEGORY

    def test_contains(self, tiny_domain):
        assert "cough" in tiny_domain
        assert "aspirin" not in tiny_domain

    def test_index_of_preserves_order(self, tiny_domain):
        assert tiny_domain.index_of("cough") == 0
        assert tiny_domain.index_of("honey") == 3

    def test_index_of_unknown_raises(self, tiny_domain):
        with pytest.raises(InvalidItemError):
            tiny_domain.index_of("aspirin")

    def test_category_of_unknown_raises(self, tiny_domain):
        with pytest.raises(InvalidItemError):
            tiny_domain.category_of("aspirin")

    def test_items_in_category(self, tiny_domain):
        assert tiny_domain.items_in_category("symptom") == ("cough", "headache")
        assert tiny_domain.items_in_category("nonexistent") == ()

    def test_validate_items(self, tiny_domain):
        tiny_domain.validate_items(["cough", "tea"])
        with pytest.raises(InvalidItemError, match="aspirin"):
            tiny_domain.validate_items(["cough", "aspirin"])


class TestEquality:
    def test_equal_domains(self):
        a = ItemDomain(["x", "y"], categories={"x": "c"})
        b = ItemDomain(["x", "y"], categories={"x": "c"})
        assert a == b
        assert hash(a) == hash(b)

    def test_category_changes_equality(self):
        a = ItemDomain(["x"], categories={"x": "c1"})
        b = ItemDomain(["x"], categories={"x": "c2"})
        assert a != b

    def test_order_matters(self):
        assert ItemDomain(["x", "y"]) != ItemDomain(["y", "x"])

    def test_not_equal_to_other_types(self):
        assert ItemDomain(["x"]) != ["x"]


class TestRestrict:
    def test_restrict_keeps_categories(self, tiny_domain):
        sub = tiny_domain.restrict(["cough", "tea"])
        assert list(sub) == ["cough", "tea"]
        assert sub.category_of("tea") == "remedy"

    def test_restrict_unknown_raises(self, tiny_domain):
        with pytest.raises(InvalidItemError):
            tiny_domain.restrict(["aspirin"])
