"""Tests for the latent habit model."""

import numpy as np
import pytest

from repro.core import ItemDomain, Rule
from repro.errors import ConfigurationError, InvalidItemError
from repro.synth import HabitPattern, LatentHabitModel


@pytest.fixture
def domain():
    return ItemDomain(["s1", "s2", "r1", "r2"])


@pytest.fixture
def model(domain):
    patterns = [
        HabitPattern(Rule(["s1"], ["r1"]), prevalence=1.0,
                     antecedent_rate=0.4, conditional_rate=0.8, rate_std=0.0),
        HabitPattern(Rule(["s2"], ["r2"]), prevalence=0.0,
                     antecedent_rate=0.4, conditional_rate=0.8, rate_std=0.0),
    ]
    return LatentHabitModel(domain, patterns, background_rate=0.0, seed=7)


class TestHabitPattern:
    def test_expected_support(self):
        p = HabitPattern(Rule(["a"], ["b"]), 0.5, 0.4, 0.8)
        assert p.expected_support == pytest.approx(0.32)
        assert p.population_support == pytest.approx(0.16)

    def test_invalid_rates_rejected(self):
        with pytest.raises(Exception):
            HabitPattern(Rule(["a"], ["b"]), 1.5, 0.4, 0.8)


class TestModelValidation:
    def test_rule_items_must_be_in_domain(self, domain):
        with pytest.raises(InvalidItemError):
            LatentHabitModel(
                domain,
                [HabitPattern(Rule(["nope"], ["r1"]), 0.5, 0.3, 0.7)],
            )

    def test_duplicate_rules_rejected(self, domain):
        p = HabitPattern(Rule(["s1"], ["r1"]), 0.5, 0.3, 0.7)
        with pytest.raises(ConfigurationError, match="duplicate"):
            LatentHabitModel(domain, [p, p])

    def test_rules_property(self, model):
        assert model.rules == [Rule(["s1"], ["r1"]), Rule(["s2"], ["r2"])]


class TestRealization:
    def test_prevalence_one_always_held(self, model, rng):
        for _ in range(10):
            profile = model.realize_user(rng)
            assert profile.has_rule(Rule(["s1"], ["r1"]))

    def test_prevalence_zero_never_held(self, model, rng):
        for _ in range(10):
            profile = model.realize_user(rng)
            assert not profile.has_rule(Rule(["s2"], ["r2"]))

    def test_zero_std_keeps_exact_rates(self, model, rng):
        profile = model.realize_user(rng)
        habit = profile.habits[0]
        assert habit.antecedent_rate == 0.4
        assert habit.conditional_rate == 0.8

    def test_rates_clipped_to_unit_interval(self, domain, rng):
        model = LatentHabitModel(
            domain,
            [HabitPattern(Rule(["s1"], ["r1"]), 1.0, 0.99, 0.99, rate_std=1.0)],
            seed=3,
        )
        for _ in range(20):
            habit = model.realize_user(rng).habits[0]
            assert 0.0 <= habit.antecedent_rate <= 1.0
            assert 0.0 <= habit.conditional_rate <= 1.0


class TestGeneration:
    def test_personal_db_size(self, model, rng):
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, 50, rng)
        assert len(db) == 50

    def test_antecedent_present_whenever_consequent(self, model, rng):
        # With no background noise, r1 only ever appears via the habit,
        # i.e. together with s1.
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, 300, rng)
        for row in db:
            if "r1" in row:
                assert "s1" in row

    def test_supports_near_latent_rates(self, model, rng):
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, 3_000, rng)
        stats = db.rule_stats(Rule(["s1"], ["r1"]))
        assert stats.support == pytest.approx(0.32, abs=0.05)
        assert stats.confidence == pytest.approx(0.8, abs=0.05)

    def test_background_noise_adds_unrelated_items(self, domain, rng):
        model = LatentHabitModel(domain, [], background_rate=0.5, seed=5)
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, 200, rng)
        assert db.support(frozenset(["r2"])) > 0.2

    def test_itemset_rule_generation(self, domain, rng):
        pattern = HabitPattern(
            Rule.itemset_rule(["r1", "r2"]), 1.0, 0.5, 0.8, rate_std=0.0
        )
        model = LatentHabitModel(domain, [pattern], background_rate=0.0, seed=6)
        profile = model.realize_user(rng)
        db = model.generate_personal_db(profile, 2_000, rng)
        support = db.support(frozenset(["r1", "r2"]))
        assert support == pytest.approx(0.4, abs=0.05)

    def test_expected_crowd_stats_for_planted_rule(self, model):
        support, confidence = model.expected_crowd_stats(Rule(["s1"], ["r1"]))
        assert support == pytest.approx(0.32)
        assert confidence == pytest.approx(0.8)

    def test_expected_crowd_stats_for_unknown_rule(self, model):
        support, confidence = model.expected_crowd_stats(Rule(["s1"], ["r2"]))
        assert support == 0.0  # background_rate = 0
