"""Tests for the Quest-style generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.synth import QuestConfig, QuestGenerator


class TestConfig:
    def test_defaults_valid(self):
        QuestConfig()

    def test_negative_items_rejected(self):
        with pytest.raises(Exception):
            QuestConfig(n_items=0)

    def test_bad_correlation_rejected(self):
        with pytest.raises(Exception):
            QuestConfig(correlation=1.5)

    def test_bad_avg_size_rejected(self):
        with pytest.raises(ConfigurationError):
            QuestConfig(avg_transaction_size=0)


class TestGeneration:
    def test_db_size(self):
        gen = QuestGenerator(QuestConfig(n_items=40, n_transactions=123), seed=1)
        assert len(gen.generate()) == 123

    def test_override_size(self):
        gen = QuestGenerator(QuestConfig(n_items=40, n_transactions=10), seed=1)
        assert len(gen.generate(55)) == 55

    def test_items_within_domain(self):
        gen = QuestGenerator(QuestConfig(n_items=30, n_transactions=200), seed=2)
        db = gen.generate()
        domain_items = set(gen.domain.items)
        for row in db:
            assert row <= domain_items

    def test_transactions_nonempty(self):
        gen = QuestGenerator(QuestConfig(n_items=30, n_transactions=200), seed=3)
        assert all(len(row) >= 1 for row in gen.generate())

    def test_avg_size_roughly_matches(self):
        cfg = QuestConfig(n_items=200, n_transactions=2_000, avg_transaction_size=8.0)
        gen = QuestGenerator(cfg, seed=4)
        db = gen.generate()
        avg = sum(len(row) for row in db) / len(db)
        assert 4.0 < avg < 12.0

    def test_determinism(self):
        a = QuestGenerator(QuestConfig(n_items=30, n_transactions=50), seed=7).generate()
        b = QuestGenerator(QuestConfig(n_items=30, n_transactions=50), seed=7).generate()
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = QuestGenerator(QuestConfig(n_items=30, n_transactions=50), seed=7).generate()
        b = QuestGenerator(QuestConfig(n_items=30, n_transactions=50), seed=8).generate()
        assert list(a) != list(b)


class TestPatterns:
    def test_pattern_weights_normalized(self):
        gen = QuestGenerator(QuestConfig(n_items=50), seed=5)
        weights = [w for _, w in gen.patterns]
        assert np.isclose(sum(weights), 1.0)
        assert all(w > 0 for w in weights)

    def test_pattern_count(self):
        gen = QuestGenerator(QuestConfig(n_items=50, n_patterns=17), seed=6)
        assert len(gen.patterns) == 17

    def test_patterns_create_correlations(self):
        # Items of a heavy pattern should co-occur far above independence.
        cfg = QuestConfig(
            n_items=100, n_transactions=3_000, n_patterns=10, corruption_mean=0.1
        )
        gen = QuestGenerator(cfg, seed=9)
        db = gen.generate()
        patterns = sorted(gen.patterns, key=lambda pw: -pw[1])
        found_lift = False
        for items, _ in patterns[:8]:
            if len(items) >= 2:
                a, b = items[0], items[1]
                joint = db.support(frozenset([a, b]))
                indep = db.support(frozenset([a])) * db.support(frozenset([b]))
                # Heavily-weighted patterns push items towards support
                # 1 where lift saturates, so a modest factor suffices.
                if joint > 1.5 * indep > 0:
                    found_lift = True
                    break
        assert found_lift
