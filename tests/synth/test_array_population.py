"""ArrayPopulation: columnar state, lazy facades, bounded pickles.

The contract under test (``docs/scaling.md``):

- array queries and object facades are two views of the same data —
  ``rule_stats_at`` divides the same integer counts as the facade's
  ``TransactionDB``, bit for bit;
- member state is a pure function of the root entropy: access order,
  cache eviction and fresh instances never change a member;
- pickles carry the recipe, not the state — size stays flat however
  large the crowd, and a restored population regenerates identically.
"""

import pickle

import numpy as np
import pytest

from repro.core import Rule
from repro.errors import ConfigurationError
from repro.synth import ArrayPopulation, folk_remedies_model


@pytest.fixture(scope="module")
def model():
    return folk_remedies_model(seed=1)


@pytest.fixture(scope="module")
def population(model):
    return ArrayPopulation(model, n_members=60, transactions_per_member=80, seed=7)


def random_rules(model, count, seed):
    rng = np.random.default_rng(seed)
    items = tuple(model.domain.items)
    rules = set()
    while len(rules) < count:
        size = int(rng.integers(2, 5))
        chosen = [items[k] for k in rng.choice(len(items), size=size, replace=False)]
        cut = int(rng.integers(1, size))
        rules.add(Rule(chosen[:cut], chosen[cut:]))
    return sorted(rules, key=str)


class TestFacadeEquality:
    def test_rule_stats_match_facade_db_bit_for_bit(self, model, population):
        for rule in random_rules(model, 25, seed=11):
            for index in (0, 7, 31, 59):
                array_stats = population.rule_stats_at(index, rule)
                db_stats = population.db_at(index).rule_stats(rule)
                assert array_stats == db_stats, (rule, index)

    def test_facade_db_matches_item_matrix(self, population):
        index = 13
        matrix = population.item_matrix(index)
        db = population.db_at(index)
        items = tuple(population.domain.items)
        for t, transaction in enumerate(db):
            assert transaction == frozenset(
                items[j] for j in np.flatnonzero(matrix[t])
            )

    def test_profile_habits_subset_of_model_patterns(self, model, population):
        patterns = {p.rule for p in model.patterns}
        profile = population.profile_at(21)
        assert {habit.pattern.rule for habit in profile.habits} <= patterns


class TestDeterminism:
    def test_same_entropy_same_members(self, model, population):
        twin = ArrayPopulation(
            model, n_members=60, transactions_per_member=80, seed=7
        )
        for index in (0, 29, 59):
            assert np.array_equal(
                population.item_matrix(index), twin.item_matrix(index)
            )
            assert population.trust_prior_at(index) == twin.trust_prior_at(index)

    def test_access_order_does_not_matter(self, model):
        forward = ArrayPopulation(
            model, n_members=40, transactions_per_member=60, seed=3
        )
        backward = ArrayPopulation(
            model, n_members=40, transactions_per_member=60, seed=3
        )
        first = [forward.item_matrix(k).copy() for k in range(40)]
        second = [backward.item_matrix(k) for k in reversed(range(40))][::-1]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_facade_cache_eviction_is_invisible(self, model):
        population = ArrayPopulation(
            model, n_members=10, transactions_per_member=50, seed=5
        )
        before = population.db_at(3)
        population._facades.clear()
        population._matrices.clear()
        after = population.db_at(3)
        assert list(before) == list(after)


class TestIdentity:
    def test_id_index_roundtrip(self, population):
        for index in (0, 5, 59):
            assert population.index_of(population.member_id_at(index)) == index

    def test_unknown_ids_raise(self, population):
        for bad in ("u9999", "x0001", "", "u-1", "u01"):
            with pytest.raises(KeyError):
                population.index_of(bad)

    def test_len_and_iteration_agree(self, model):
        population = ArrayPopulation(
            model, n_members=12, transactions_per_member=30, seed=9
        )
        members = list(population)
        assert len(population) == len(members) == 12
        assert [m.member_id for m in members] == [
            population.member_id_at(k) for k in range(12)
        ]


class TestMaterialize:
    def test_materialized_members_share_columns(self, population):
        materialized = population.materialize()
        assert len(materialized.members) == len(population)
        for index in (0, 17, 59):
            assert list(materialized.members[index].db) == list(
                population.db_at(index)
            )

    def test_refuses_to_materialize_huge_crowds(self, model):
        huge = ArrayPopulation(
            model, n_members=200_000, transactions_per_member=50, seed=9
        )
        with pytest.raises(ConfigurationError):
            huge.materialize()


class TestPickling:
    def test_pickle_size_flat_in_member_count(self, model):
        small = ArrayPopulation(model, n_members=100, transactions_per_member=50, seed=4)
        large = ArrayPopulation(
            model, n_members=1_000_000, transactions_per_member=50, seed=4
        )
        # Touch state so lazy caches exist, then check they are excluded.
        small.db_at(3)
        large.db_at(3)
        small_pickle = pickle.dumps(small)
        large_pickle = pickle.dumps(large)
        assert len(large_pickle) <= len(small_pickle) + 64

    def test_restored_population_regenerates_identically(self, model):
        population = ArrayPopulation(
            model, n_members=30, transactions_per_member=40, seed=8
        )
        expected = population.item_matrix(11).copy()
        restored = pickle.loads(pickle.dumps(population))
        assert np.array_equal(restored.item_matrix(11), expected)
        assert restored.member_id_at(11) == population.member_id_at(11)
