"""Tests for the random-model factories."""

import pytest

from repro.errors import ConfigurationError
from repro.synth import random_domain, random_habit_model


class TestRandomDomain:
    def test_size_and_categories(self):
        d = random_domain(10, categories=("x", "y"))
        assert len(d) == 10
        assert len(d.items_in_category("x")) == 5
        assert len(d.items_in_category("y")) == 5

    def test_single_category(self):
        d = random_domain(4, categories=("only",))
        assert all(d.category_of(i) == "only" for i in d)

    def test_no_categories_rejected(self):
        with pytest.raises(ConfigurationError):
            random_domain(4, categories=())


class TestRandomHabitModel:
    def test_pattern_count(self):
        d = random_domain(100)
        m = random_habit_model(d, 12, seed=1)
        assert len(m.patterns) == 12

    def test_rules_disjoint_by_default(self):
        d = random_domain(100)
        m = random_habit_model(d, 15, seed=2)
        seen: set[str] = set()
        for rule in m.rules:
            body = set(rule.body)
            assert not body & seen
            seen |= body

    def test_too_small_domain_rejected(self):
        d = random_domain(5)
        with pytest.raises(ConfigurationError, match="disjoint"):
            random_habit_model(d, 10, seed=3)

    def test_overlap_allowed_when_requested(self):
        d = random_domain(6)
        m = random_habit_model(
            d, 5, seed=4, allow_overlap=True,
            antecedent_size=(1, 1), consequent_size=(1, 1),
        )
        assert 1 <= len(m.patterns) <= 5  # duplicates may collapse

    def test_parameters_within_ranges(self):
        d = random_domain(100)
        m = random_habit_model(
            d, 10, seed=5,
            prevalence_range=(0.7, 0.9),
            antecedent_rate_range=(0.2, 0.3),
            conditional_rate_range=(0.6, 0.7),
        )
        for pattern in m.patterns:
            assert 0.7 <= pattern.prevalence <= 0.9
            assert 0.2 <= pattern.antecedent_rate <= 0.3
            assert 0.6 <= pattern.conditional_rate <= 0.7

    def test_body_sizes_respect_ranges(self):
        d = random_domain(200)
        m = random_habit_model(
            d, 10, seed=6, antecedent_size=(2, 2), consequent_size=(1, 2)
        )
        for rule in m.rules:
            assert len(rule.antecedent) == 2
            assert 1 <= len(rule.consequent) <= 2

    def test_deterministic(self):
        d = random_domain(80)
        a = random_habit_model(d, 8, seed=7)
        b = random_habit_model(d, 8, seed=7)
        assert a.rules == b.rules
