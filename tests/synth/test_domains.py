"""Tests for the named example domains."""

import pytest

from repro.estimation import Thresholds
from repro.miner import compute_ground_truth
from repro.synth import (
    NAMED_MODELS,
    build_population,
    culinary_model,
    folk_remedies_model,
    travel_model,
)


@pytest.mark.parametrize("name", sorted(NAMED_MODELS))
class TestAllNamedModels:
    def test_builds(self, name):
        model = NAMED_MODELS[name](seed=1)
        assert len(model.patterns) >= 8
        assert len(model.domain) >= 15

    def test_rules_within_domain(self, name):
        model = NAMED_MODELS[name](seed=1)
        for rule in model.rules:
            model.domain.validate_items(rule.body)

    def test_population_generates(self, name):
        model = NAMED_MODELS[name](seed=1)
        pop = build_population(model, 5, 40, seed=2)
        assert len(pop) == 5

    def test_planted_rules_recoverable(self, name):
        # At least some planted habits must actually be significant in a
        # sampled population at the canonical thresholds — otherwise the
        # preset is useless for experiments.
        model = NAMED_MODELS[name](seed=1)
        pop = build_population(model, 20, 150, seed=3)
        truth = compute_ground_truth(pop, Thresholds(0.08, 0.45))
        planted_found = sum(1 for rule in model.rules if rule in truth.significant)
        assert planted_found >= len(model.rules) // 3


class TestCategories:
    def test_folk_categories(self):
        model = folk_remedies_model(seed=0)
        assert "symptom" in model.domain.categories
        assert "remedy" in model.domain.categories

    def test_travel_categories(self):
        model = travel_model(seed=0)
        assert set(model.domain.categories) == {"place", "activity", "restaurant"}

    def test_culinary_categories(self):
        model = culinary_model(seed=0)
        assert set(model.domain.categories) == {"dish", "drink"}
