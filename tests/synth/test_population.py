"""Tests for population builders."""

import numpy as np
import pytest

from repro.core import Itemset, Rule, TransactionDB
from repro.errors import ConfigurationError, EmptyDatabaseError
from repro.synth import (
    Member,
    Population,
    QuestConfig,
    QuestGenerator,
    build_population,
    partition_global_db,
)


class TestPopulation:
    def test_requires_members(self, folk_model):
        with pytest.raises(ConfigurationError):
            Population(domain=folk_model.domain, members=())

    def test_unique_ids_required(self, folk_model):
        db = TransactionDB([["honey"]])
        members = (
            Member("u1", db),
            Member("u1", db),
        )
        with pytest.raises(ConfigurationError, match="unique"):
            Population(domain=folk_model.domain, members=members)

    def test_member_lookup(self, folk_population):
        member = folk_population.member("u0003")
        assert member.member_id == "u0003"
        with pytest.raises(KeyError):
            folk_population.member("nobody")

    def test_len_and_iter(self, folk_population):
        assert len(folk_population) == 25
        assert len(list(folk_population)) == 25


class TestBuildPopulation:
    def test_sizes(self, folk_model):
        pop = build_population(folk_model, 5, transactions_per_member=30, seed=1)
        assert len(pop) == 5
        assert all(len(m.db) == 30 for m in pop)
        assert pop.equal_sized

    def test_profiles_attached(self, folk_model):
        pop = build_population(folk_model, 3, 20, seed=1)
        assert all(m.profile is not None for m in pop)

    def test_deterministic(self, folk_model):
        a = build_population(folk_model, 3, 20, seed=9)
        b = build_population(folk_model, 3, 20, seed=9)
        assert [list(m.db) for m in a] == [list(m.db) for m in b]

    def test_mean_stats_match_union_support(self, folk_population):
        # Equal-sized DBs ⇒ crowd-mean itemset support == union support.
        itemset = Itemset(["sore throat", "ginger tea"])
        union = folk_population.union_db()
        assert folk_population.mean_itemset_support(itemset) == pytest.approx(
            union.support(itemset)
        )

    def test_mean_rule_stats_sane(self, folk_population):
        support, confidence = folk_population.mean_rule_stats(
            Rule(["sore throat"], ["ginger tea"])
        )
        assert 0.0 < support < 1.0
        assert support <= confidence <= 1.0


class TestPartitionGlobalDB:
    @pytest.fixture(scope="class")
    def quest(self):
        gen = QuestGenerator(QuestConfig(n_items=40, n_transactions=800), seed=3)
        return gen, gen.generate()

    def test_default_sizes(self, quest):
        gen, db = quest
        pop = partition_global_db(db, gen.domain, 8, seed=4)
        assert len(pop) == 8
        assert all(len(m.db) == 100 for m in pop)

    def test_explicit_size(self, quest):
        gen, db = quest
        pop = partition_global_db(db, gen.domain, 4, transactions_per_member=25, seed=4)
        assert all(len(m.db) == 25 for m in pop)

    def test_no_profiles(self, quest):
        gen, db = quest
        pop = partition_global_db(db, gen.domain, 3, seed=4)
        assert all(m.profile is None for m in pop)

    def test_transactions_come_from_global(self, quest):
        gen, db = quest
        global_rows = set(db)
        pop = partition_global_db(db, gen.domain, 3, seed=4)
        for member in pop:
            for row in member.db:
                assert row in global_rows

    def test_zero_heterogeneity_unbiased(self, quest):
        gen, db = quest
        pop = partition_global_db(db, gen.domain, 6, heterogeneity=0.0, seed=5)
        assert len(pop) == 6

    def test_heterogeneity_skews_members(self, quest):
        gen, db = quest
        uniform = partition_global_db(
            db, gen.domain, 12, heterogeneity=0.0, seed=6,
            transactions_per_member=150,
        )
        skewed = partition_global_db(
            db, gen.domain, 12, heterogeneity=5.0, seed=6,
            transactions_per_member=150,
        )

        def member_spread(pop):
            # Across-member std of each item's support, averaged.
            items = pop.domain.items
            per_item = []
            for item in items:
                supports = [m.db.support(Itemset([item])) for m in pop]
                per_item.append(np.std(supports))
            return float(np.mean(per_item))

        assert member_spread(skewed) > member_spread(uniform)

    def test_empty_global_rejected(self, quest):
        gen, _ = quest
        with pytest.raises(EmptyDatabaseError):
            partition_global_db(TransactionDB([]), gen.domain, 3)
