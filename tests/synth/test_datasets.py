"""Tests for dataset file I/O."""

import pytest

from repro.core import TransactionDB
from repro.synth import (
    DatasetFormatError,
    domain_from_db,
    load_basket_file,
    load_csv_baskets,
    parse_basket_lines,
    save_basket_file,
)


class TestParseBasketLines:
    def test_whitespace_separated(self):
        rows = list(parse_basket_lines(["1 2 3", "2 4"]))
        assert rows == [frozenset({"1", "2", "3"}), frozenset({"2", "4"})]

    def test_empty_lines_skipped(self):
        rows = list(parse_basket_lines(["a b", "", "   ", "c"]))
        assert len(rows) == 2

    def test_custom_separator(self):
        rows = list(parse_basket_lines(["tea, honey , lemon"], separator=","))
        assert rows == [frozenset({"tea", "honey", "lemon"})]

    def test_duplicate_items_collapse(self):
        rows = list(parse_basket_lines(["a a b"]))
        assert rows == [frozenset({"a", "b"})]


class TestFiles:
    def test_basket_roundtrip(self, tmp_path, tiny_db):
        path = tmp_path / "data.basket"
        save_basket_file(tiny_db, path)
        loaded = load_basket_file(path)
        # Items with spaces in names break whitespace format: tiny_db
        # has none? it does ("cough" etc. are single words) — compare.
        assert sorted(map(sorted, loaded)) == sorted(map(sorted, tiny_db))

    def test_basket_separator_conflict_rejected(self, tmp_path):
        db = TransactionDB([["sore throat", "tea"]])
        with pytest.raises(DatasetFormatError, match="separator"):
            save_basket_file(db, tmp_path / "x.basket", separator=" ")

    def test_multiword_items_via_csv_separator(self, tmp_path):
        db = TransactionDB([["sore throat", "ginger tea"]])
        path = tmp_path / "x.csv"
        save_basket_file(db, path, separator=",")
        loaded = load_csv_baskets(path)
        assert list(loaded) == list(db)

    def test_max_transactions_cap(self, tmp_path, tiny_db):
        path = tmp_path / "data.basket"
        save_basket_file(tiny_db, path)
        loaded = load_basket_file(path, max_transactions=2)
        assert len(loaded) == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.basket"
        path.write_text("\n\n")
        with pytest.raises(DatasetFormatError, match="no transactions"):
            load_basket_file(path)

    def test_csv_header_skipped(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("item_a,item_b\ntea,honey\ncoffee\n")
        loaded = load_csv_baskets(path, skip_header=True)
        assert len(loaded) == 2

    def test_fimi_style_numeric_tokens(self, tmp_path):
        path = tmp_path / "retail.dat"
        path.write_text("1 3 7\n1 9\n3 7 11 12\n")
        db = load_basket_file(path)
        assert len(db) == 3
        assert db.support(frozenset({"3", "7"})) == pytest.approx(2 / 3)


class TestDomainFromDB:
    def test_covers_all_items(self, tiny_db):
        domain = domain_from_db(tiny_db)
        assert set(domain.items) == set(tiny_db.items)
        assert domain.category_of("tea") == "item"

    def test_pipeline_to_crowd(self, tmp_path):
        # End-to-end: file → db → domain → partitioned crowd.
        from repro.synth import partition_global_db

        path = tmp_path / "retail.dat"
        path.write_text("\n".join("1 2 3" for _ in range(30)))
        db = load_basket_file(path)
        domain = domain_from_db(db)
        population = partition_global_db(db, domain, 3, seed=1)
        assert len(population) == 3
