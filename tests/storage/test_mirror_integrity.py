"""Integrity of the memory backend's pickle mirror.

Unpickling attacker- or bitrot-shaped bytes is the most dangerous
line in the storage layer, so the mirror is verified *before* a single
pickled byte runs: a checksummed envelope (magic + SHA-256 + payload)
on every write, digest checked on open, trailing garbage refused, and
every corruption shape surfacing as :class:`CorruptStoreError` — which
is both a :class:`StorageError` and a :class:`PersistenceError`, never
a raw ``UnpicklingError``.
"""

import pickle

import pytest

from repro.io import PersistenceError
from repro.storage import (
    AnswerRecord,
    CorruptStoreError,
    MemoryBackend,
    StorageError,
)
from repro.storage.backend import MEMORY_FILE_MAGIC


def record(seq):
    return AnswerRecord(
        seq=seq, member_id=f"u{seq}", kind="closed",
        rule_key=None, support=0.25, confidence=0.5,
    )


@pytest.fixture
def mirror(tmp_path):
    path = tmp_path / "session.pkl"
    store = MemoryBackend(path)
    for seq in range(3):
        store.append_answer(record(seq))
    store.save_checkpoint(b"payload" * 100, questions=3, kb_rules=1)
    store.close()
    return path


class TestEnvelope:
    def test_mirror_carries_magic_and_checksum(self, mirror):
        blob = mirror.read_bytes()
        assert blob.startswith(MEMORY_FILE_MAGIC)

    def test_clean_roundtrip(self, mirror):
        store = MemoryBackend.open(mirror)
        assert [r.seq for r in store.answers()] == [0, 1, 2]
        info, payload = store.latest_checkpoint()
        assert payload == b"payload" * 100

    def test_legacy_bare_pickle_still_opens(self, tmp_path):
        # Pre-envelope mirrors are plain pickles: still accepted, so
        # old session files survive the upgrade.
        from repro.storage.backend import MEMORY_FILE_FORMAT

        doc = {
            "format": MEMORY_FILE_FORMAT,
            "answers": [record(0)],
            "checkpoints": [],
            "next_id": 1,
        }
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL))
        store = MemoryBackend.open(path)
        assert [r.seq for r in store.answers()] == [0]


class TestCorruption:
    def test_bitflip_fails_checksum(self, mirror):
        blob = bytearray(mirror.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        mirror.write_bytes(bytes(blob))
        with pytest.raises(CorruptStoreError, match="checksum"):
            MemoryBackend.open(mirror)

    def test_truncation_fails_checksum(self, mirror):
        blob = mirror.read_bytes()
        mirror.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(CorruptStoreError, match="checksum"):
            MemoryBackend.open(mirror)

    def test_trailing_garbage_on_legacy_pickle_is_rejected(self, tmp_path):
        from repro.storage.backend import MEMORY_FILE_FORMAT

        doc = {
            "format": MEMORY_FILE_FORMAT,
            "answers": [],
            "checkpoints": [],
            "next_id": 1,
        }
        path = tmp_path / "legacy.pkl"
        path.write_bytes(
            pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL) + b"\x00EXTRA"
        )
        with pytest.raises(CorruptStoreError, match="trailing garbage"):
            MemoryBackend.open(path)

    def test_garbage_pickle_inside_valid_envelope_is_corrupt_not_unpickling(
        self, tmp_path
    ):
        import hashlib

        payload = b"\x80\x04 this is not a pickle stream"
        blob = MEMORY_FILE_MAGIC + hashlib.sha256(payload).digest() + payload
        path = tmp_path / "bad.pkl"
        path.write_bytes(blob)
        with pytest.raises(CorruptStoreError, match="unpickle"):
            MemoryBackend.open(path)

    def test_alien_file_is_storage_error(self, tmp_path):
        path = tmp_path / "alien.bin"
        path.write_bytes(b"PNG\x00not ours")
        with pytest.raises(StorageError, match="not a memory-backend file"):
            MemoryBackend.open(path)

    def test_corrupt_store_error_is_both_hierarchies(self):
        assert issubclass(CorruptStoreError, StorageError)
        assert issubclass(CorruptStoreError, PersistenceError)
