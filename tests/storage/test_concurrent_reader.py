"""Read-only inspection under a live writer: the `repro kb` path.

The SQLite backend's WAL mode promises that a read-only connection
(the one ``repro kb`` opens) sees a consistent committed snapshot even
while a live session is writing answers and checkpoints. A reader
thread here hammers ``open_backend(readonly=True)`` +
``load_session(rollback=False)`` in a loop while the main thread
drives a checkpointing serve session to completion — the reader must
never error, never observe a torn state, and must see progress move
only forward.
"""

import threading

import pytest

from repro.serve import Scenario, drive_inprocess, run_session_inprocess
from repro.storage import StorageError, load_session, open_backend

SCENARIO = Scenario(n_members=8, transactions_per_member=40, budget=80)


class TestConcurrentReader:
    def test_reader_never_errors_and_sees_forward_progress(self, tmp_path):
        path = tmp_path / "live.db"
        storage = open_backend(path, "sqlite")
        session, pool = run_session_inprocess(
            SCENARIO, storage=storage, checkpoint_every=5
        )
        # The first checkpoint exists before the reader starts, so
        # every read finds a session to load.
        session.miner.checkpoint()

        stop = threading.Event()
        errors = []
        observed = []

        def reader():
            while not stop.is_set():
                try:
                    view = open_backend(path, "sqlite", readonly=True)
                    try:
                        miner, dispatcher, info = load_session(
                            view, rollback=False
                        )
                    finally:
                        view.close()
                    # Internal consistency of the loaded snapshot.
                    assert miner.questions_asked == info.questions
                    assert len(miner.state) == info.kb_rules
                    assert dispatcher is None or dispatcher.kind == "serve"
                    observed.append(info.questions)
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append(exc)
                    return

        thread = threading.Thread(target=reader, name="kb-reader")
        thread.start()
        try:
            result = drive_inprocess(session, pool)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()
        session.drain()
        storage.close()
        assert errors == []
        assert observed, "the reader never completed a single inspection"
        # Committed snapshots only, observed in commit order: progress
        # is monotone, never beyond the finished session.
        assert observed == sorted(observed)
        assert observed[-1] <= result.questions_asked

        # The final drain checkpoint is visible to a fresh reader.
        view = open_backend(path, "sqlite", readonly=True)
        try:
            miner, _dispatcher, info = load_session(view, rollback=False)
            assert info.questions == result.questions_asked
            assert miner.result().fingerprint() == result.fingerprint()
        finally:
            view.close()


class TestReadonlySurface:
    def make_store(self, tmp_path):
        path = tmp_path / "session.db"
        storage = open_backend(path, "sqlite")
        session, pool = run_session_inprocess(
            SCENARIO, storage=storage, checkpoint_every=5
        )
        for _ in range(6):
            question = session.next_question()["question"]
            session.post_answer(question["question_id"], pool.answer(question))
        session.drain()
        storage.close()
        return path

    def test_readonly_refuses_all_writes(self, tmp_path):
        path = self.make_store(tmp_path)
        view = open_backend(path, "sqlite", readonly=True)
        try:
            assert "read-only" in view.describe()
            with pytest.raises(StorageError):
                view.save_checkpoint(b"payload", questions=1, kb_rules=1)
            with pytest.raises(StorageError):
                view.truncate_answers(0)
            with pytest.raises(StorageError):
                view.reset_index()
            with pytest.raises(StorageError):
                view.make_index()
        finally:
            view.close()

    def test_readonly_still_reads_everything(self, tmp_path):
        path = self.make_store(tmp_path)
        view = open_backend(path, "sqlite", readonly=True)
        try:
            assert view.answers()
            assert view.checkpoints()
            assert view.bytes_on_disk() > 0
        finally:
            view.close()

    def test_readonly_inspection_leaves_the_answer_log_intact(self, tmp_path):
        """rollback=False must not truncate the dangling answer log —
        inspection is not recovery."""
        path = self.make_store(tmp_path)
        view = open_backend(path, "sqlite", readonly=True)
        try:
            before = len(view.answers())
            load_session(view, rollback=False)
            assert len(view.answers()) == before
        finally:
            view.close()

    def test_readonly_open_of_missing_file_fails(self, tmp_path):
        with pytest.raises(StorageError):
            open_backend(tmp_path / "ghost.db", "sqlite", readonly=True)

    def test_readonly_open_of_non_store_fails(self, tmp_path):
        junk = tmp_path / "junk.db"
        junk.write_bytes(b"not a database at all")
        with pytest.raises(StorageError):
            open_backend(junk, "sqlite", readonly=True)
