"""Contract tests for the pluggable storage backends.

Both backends must satisfy the same :class:`StorageBackend` protocol:
an ordered, truncatable write-ahead answer log; a monotonically
numbered checkpoint history; and honest bookkeeping. The memory
backend additionally mirrors itself to a single pickle file; the
SQLite backend persists everything in one WAL-mode database and
rejects files it does not own.
"""

import pytest

from repro.storage import (
    AnswerRecord,
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    StorageError,
    open_backend,
)


def record(seq, member="u1", kind="closed", rule=None, support=0.3, confidence=0.7):
    return AnswerRecord(
        seq=seq,
        member_id=member,
        kind=kind,
        rule_key=rule,
        support=support,
        confidence=confidence,
    )


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        store = MemoryBackend(tmp_path / "session.pkl")
    else:
        store = SQLiteBackend(tmp_path / "session.db")
    yield store
    store.close()


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, backend):
        assert isinstance(backend, StorageBackend)

    def test_answer_log_is_ordered_by_seq(self, backend):
        for seq in (2, 0, 1):
            backend.append_answer(record(seq, member=f"u{seq}"))
        assert [r.seq for r in backend.answers()] == [0, 1, 2]
        assert [r.member_id for r in backend.answers()] == ["u0", "u1", "u2"]

    def test_answer_log_round_trips_fields(self, backend):
        original = record(
            0, member="члан-7", kind="open", rule='[["咳"],["蜂蜜"]]',
            support=0.125, confidence=0.875,
        )
        backend.append_answer(original)
        backend.append_answer(record(1, rule=None, support=None, confidence=None))
        stored, dry = backend.answers()
        assert stored == original
        assert dry.rule_key is None and dry.support is None

    def test_truncate_drops_the_tail_only(self, backend):
        for seq in range(5):
            backend.append_answer(record(seq))
        backend.truncate_answers(3)
        assert [r.seq for r in backend.answers()] == [0, 1, 2]
        backend.truncate_answers(0)
        assert backend.answers() == []

    def test_checkpoint_history_is_monotonic(self, backend):
        first = backend.save_checkpoint(b"one", questions=10, kb_rules=3)
        backend.append_answer(record(0))
        second = backend.save_checkpoint(b"two-longer", questions=20, kb_rules=5)
        assert second.checkpoint_id > first.checkpoint_id
        assert [c.checkpoint_id for c in backend.checkpoints()] == [
            first.checkpoint_id,
            second.checkpoint_id,
        ]
        assert first.answers_logged == 0
        assert second.answers_logged == 1
        assert second.payload_bytes == len(b"two-longer")

    def test_latest_checkpoint_returns_newest_payload(self, backend):
        assert backend.latest_checkpoint() is None
        backend.save_checkpoint(b"old", questions=1, kb_rules=1)
        backend.save_checkpoint(b"new", questions=2, kb_rules=2)
        info, payload = backend.latest_checkpoint()
        assert payload == b"new"
        assert info.questions == 2

    def test_bytes_on_disk_grows_with_checkpoints(self, backend):
        backend.save_checkpoint(b"x" * 4096, questions=1, kb_rules=1)
        assert backend.bytes_on_disk() > 0

    def test_describe_is_one_line(self, backend):
        assert "\n" not in backend.describe()


class TestMemoryBackend:
    def test_mirror_file_round_trips(self, tmp_path):
        path = tmp_path / "session.pkl"
        store = MemoryBackend(path)
        store.append_answer(record(0))
        store.save_checkpoint(b"payload", questions=5, kb_rules=2)
        reopened = MemoryBackend.open(path)
        assert reopened.answers() == store.answers()
        info, payload = reopened.latest_checkpoint()
        assert payload == b"payload"
        assert info.questions == 5

    def test_pathless_backend_has_no_disk_footprint(self):
        store = MemoryBackend()
        store.save_checkpoint(b"payload", questions=1, kb_rules=1)
        assert store.bytes_on_disk() == 0

    def test_open_rejects_a_non_mirror_file(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(StorageError):
            MemoryBackend.open(path)


class TestSQLiteBackend:
    def test_reopen_resumes_the_same_store(self, tmp_path):
        path = tmp_path / "session.db"
        store = SQLiteBackend(path)
        store.append_answer(record(0))
        store.save_checkpoint(b"payload", questions=7, kb_rules=4)
        store.close()
        reopened = SQLiteBackend(path)
        assert [r.seq for r in reopened.answers()] == [0]
        info, payload = reopened.latest_checkpoint()
        assert (info.questions, payload) == (7, b"payload")
        reopened.close()

    def test_fresh_wipes_an_existing_store(self, tmp_path):
        path = tmp_path / "session.db"
        store = SQLiteBackend(path)
        store.append_answer(record(0))
        store.save_checkpoint(b"payload", questions=7, kb_rules=4)
        store.close()
        wiped = SQLiteBackend(path, fresh=True)
        assert wiped.answers() == []
        assert wiped.latest_checkpoint() is None
        wiped.close()

    def test_rejects_a_foreign_database(self, tmp_path):
        import sqlite3

        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("INSERT INTO meta VALUES ('schema_version', '999')")
        conn.commit()
        conn.close()
        with pytest.raises(StorageError):
            SQLiteBackend(path)


class TestOpenBackend:
    def test_kinds_and_defaults(self, tmp_path):
        sql = open_backend(tmp_path / "a.db", "sqlite")
        mem = open_backend(tmp_path / "b.pkl", "memory")
        assert isinstance(sql, SQLiteBackend)
        assert isinstance(mem, MemoryBackend)
        sql.close()

    def test_unknown_kind_is_an_error(self, tmp_path):
        with pytest.raises(StorageError):
            open_backend(tmp_path / "a.db", "parquet")

    def test_sqlite_requires_a_path(self):
        with pytest.raises(StorageError):
            open_backend(None, "sqlite")

    def test_resume_requires_an_existing_store(self, tmp_path):
        with pytest.raises(StorageError):
            open_backend(tmp_path / "missing.db", "sqlite", resume=True)
        with pytest.raises(StorageError):
            open_backend(None, "memory", resume=True)
