"""Checkpoints stay bounded at crowd scale, and sharded sessions resume.

Satellites of the scaling refactor (``docs/scaling.md``): a checkpoint
must carry the session (knowledge base, dispatch books, sparse crowd
state) and the population *recipe* — never the per-member state, which
is regenerated on demand. So checkpoint size must be flat in member
count, and a sharded session killed mid-flight must resume
byte-identically, exactly like the single-dispatcher contract in
``test_checkpoint_resume.py``.
"""

from repro._util import as_rng
from repro.crowd import ArrayCrowd, ExactAnswerModel
from repro.dispatch import DispatchConfig, LognormalLatency, ShardedDispatcher
from repro.estimation import Thresholds
from repro.eval.runner import (
    ExperimentConfig,
    _miner_config,
    build_crowd,
    build_world,
)
from repro.miner import CrowdMiner, CrowdMinerConfig, FixedRatioPolicy
from repro.storage import capture_session, load_session, open_backend, restore_session
from repro.synth import ArrayPopulation, folk_remedies_model


def array_session(n_members, questions=60):
    model = folk_remedies_model(seed=1)
    population = ArrayPopulation(
        model, n_members=n_members, transactions_per_member=80, seed=7
    )
    crowd = ArrayCrowd(population, answer_model=ExactAnswerModel(), seed=5)
    miner = CrowdMiner(
        crowd,
        CrowdMinerConfig(
            thresholds=Thresholds(0.10, 0.5),
            budget=questions,
            open_policy=FixedRatioPolicy(0.2),
            seed=6,
        ),
    )
    miner.run()
    return miner


class TestCheckpointSizeAtScale:
    def test_size_flat_in_member_count(self):
        small = array_session(n_members=1_000)
        large = array_session(n_members=100_000)
        small_payload = capture_session(small)
        large_payload = capture_session(large)
        # Same session over a 100x crowd: the payload may only differ
        # by which members happened to be questioned, never by O(n)
        # member state.
        assert len(large_payload) < 1.2 * len(small_payload) + 4096, (
            f"checkpoint grew from {len(small_payload)} to "
            f"{len(large_payload)} bytes over a 100x crowd"
        )

    def test_restored_large_session_still_answers(self):
        miner = array_session(n_members=100_000, questions=40)
        restored, dispatcher = restore_session(capture_session(miner))
        assert dispatcher is None
        assert restored.questions_asked == miner.questions_asked
        # The restored crowd regenerates member state on demand.
        member = restored.crowd.next_member()
        rule = next(iter(restored.state.rules())).rule
        answer = restored.crowd.ask_closed(member, rule)
        assert 0.0 <= answer.stats.support <= 1.0


CFG = ExperimentConfig(
    name="sharded-resume",
    budget=160,
    checkpoints=(160,),
    repetitions=1,
    n_items=24,
    n_patterns=5,
    n_members=12,
    transactions_per_member=50,
)


def make_miner(storage=None, checkpoint_every=0):
    _, population, _ = build_world(CFG, 42)
    rng = as_rng(777)
    crowd = build_crowd(CFG, population, rng)
    config = _miner_config(CFG, rng)
    config.checkpoint_every = checkpoint_every
    return CrowdMiner(crowd, config, storage=storage)


def dispatch_config():
    return DispatchConfig(
        window=8, timeout=500.0, latency=LognormalLatency(2.0, 1.0), seed=99
    )


class TestShardedKillResume:
    def test_mid_flight_kill_resumes_byte_identically(self, tmp_path):
        baseline = ShardedDispatcher(make_miner(), dispatch_config(), shards=4).run()

        path = str(tmp_path / "sharded.db")
        storage = open_backend(path, "sqlite")
        miner = make_miner(storage=storage, checkpoint_every=40)
        dispatcher = ShardedDispatcher(miner, dispatch_config(), shards=4)
        dispatcher._fill_all()
        while dispatcher.in_flight_count and miner.questions_asked < 130:
            upcoming = dispatcher._next_event()
            if upcoming is None:
                break
            dispatcher.shards[upcoming[1]].clock.pop()
            dispatcher._maybe_checkpoint()
            dispatcher._fill_all()
        assert dispatcher.in_flight_count, "want questions in flight at the kill"
        del miner, dispatcher
        storage.close()

        resumed_storage = open_backend(path, "sqlite", resume=True)
        miner, dispatcher, info = load_session(resumed_storage)
        assert isinstance(dispatcher, ShardedDispatcher)
        assert dispatcher.n_shards == 4
        assert info.questions == 120
        result = dispatcher.run()
        assert result.fingerprint() == baseline.fingerprint()
        assert result.dispatch == baseline.dispatch
        resumed_storage.close()

    def test_sharded_snapshot_roundtrips_in_memory(self):
        miner = make_miner()
        dispatcher = ShardedDispatcher(miner, dispatch_config(), shards=3)
        dispatcher._fill_all()
        for _ in range(25):
            upcoming = dispatcher._next_event()
            if upcoming is None:
                break
            dispatcher.shards[upcoming[1]].clock.pop()
            dispatcher._fill_all()
        payload = capture_session(miner, dispatcher)

        final = dispatcher.run()
        restored_miner, restored_dispatcher = restore_session(payload)
        assert isinstance(restored_dispatcher, ShardedDispatcher)
        resumed = restored_dispatcher.run()
        assert resumed.fingerprint() == final.fingerprint()
        assert resumed.dispatch == final.dispatch
