"""Cross-process crash recovery: SIGKILL the CLI mid-session, resume.

The in-process suite (``test_checkpoint_resume.py``) proves resume
determinism when the "crash" is simulated; this one proves it for the
real failure mode — a separate interpreter killed with ``SIGKILL``
(no atexit, no flushing, no goodbye) partway through a checkpointed
``repro mine`` run. The resumed run's printed fingerprint must equal
an uninterrupted run's. This is the test the CI kill-and-resume smoke
job executes.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

MINE = [
    sys.executable, "-u", "-m", "repro", "mine",
    "--budget", "400", "--members", "25", "--checkpoint-every", "25",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _fingerprint(output):
    for line in output.splitlines():
        if line.startswith("fingerprint: "):
            return line.split(": ", 1)[1]
    raise AssertionError(f"no fingerprint in output:\n{output}")


def _checkpoint_count(path):
    try:
        with sqlite3.connect(path) as conn:
            return conn.execute("SELECT COUNT(*) FROM checkpoints").fetchone()[0]
    except sqlite3.Error:
        return 0


@pytest.mark.slow
def test_sigkilled_run_resumes_byte_identically(tmp_path):
    baseline = subprocess.run(
        MINE + ["--checkpoint", str(tmp_path / "baseline.db")],
        env=_env(), capture_output=True, text=True, timeout=300,
    )
    assert baseline.returncode == 0, baseline.stderr
    expected = _fingerprint(baseline.stdout)

    victim_db = tmp_path / "victim.db"
    victim = subprocess.Popen(
        MINE + ["--checkpoint", str(victim_db)],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        # Kill only once at least one checkpoint is durably on disk —
        # otherwise there is nothing to resume and the test is vacuous.
        deadline = time.monotonic() + 120
        while _checkpoint_count(victim_db) < 1:
            if victim.poll() is not None:
                break  # finished before we got to it; resume still must match
            if time.monotonic() > deadline:
                pytest.fail("victim never wrote a checkpoint")
            time.sleep(0.05)
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=60)

    resumed = subprocess.run(
        [sys.executable, "-m", "repro", "mine", "--resume",
         "--checkpoint", str(victim_db)],
        env=_env(), capture_output=True, text=True, timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout.startswith("resumed ")
    assert _fingerprint(resumed.stdout) == expected
