"""The SQL-backed rule index must be invisible to KB semantics.

``SQLiteRuleIndex`` answers the same two lattice queries as the plain
in-process ``RuleIndex`` — generalization and specialization candidates
— from indexed SQL tables instead of Python dicts. Swapping it in must
never change what the knowledge base believes, so the randomized
replay suite from ``tests/miner/test_kb_equivalence.py`` runs here
unchanged against a :class:`MiningState` wired to a SQLite-backed
index, plus direct query-level checks against the plain index.
"""

import numpy as np
import pytest

from repro.estimation import SignificanceTest, Thresholds
from repro.miner import MiningState, RuleOrigin
from repro.miner.state import RuleIndex
from repro.storage import SQLiteBackend
from tests.miner.test_kb_equivalence import (
    ReferenceState,
    assert_equivalent,
    random_rule,
    random_stats,
)


def replay_sqlite_session(seed, steps, lattice_pruning):
    """The miner suite's replay loop, with the index served by SQLite."""
    rng = np.random.default_rng(seed)
    items = [f"i{k}" for k in range(6)]
    members = [f"m{k}" for k in range(8)]
    origins = list(RuleOrigin)
    backend = SQLiteBackend(":memory:")
    optimized = MiningState(
        SignificanceTest(Thresholds(0.2, 0.5), min_samples=3),
        lattice_pruning=lattice_pruning,
        index=backend.make_index(),
    )
    reference = ReferenceState(
        SignificanceTest(Thresholds(0.2, 0.5), min_samples=3),
        lattice_pruning=lattice_pruning,
    )
    pool = [random_rule(rng, items) for _ in range(25)]
    for step in range(steps):
        rule = pool[int(rng.integers(len(pool)))]
        origin = origins[int(rng.integers(len(origins)))]
        if rng.random() < 0.25:
            promise = float(rng.uniform(0.3, 0.9))
            optimized.add_rule(rule, origin, prior_promise=promise)
            reference.add_rule(rule, origin, prior_promise=promise)
        else:
            member = members[int(rng.integers(len(members)))]
            stats = random_stats(rng)
            optimized.record_answer(rule, member, stats, origin)
            reference.record_answer(rule, member, stats, origin)
        if step % 25 == 24 or step == steps - 1:
            assert_equivalent(optimized, reference)
    backend.close()


@pytest.mark.parametrize("seed", range(6))
def test_randomized_sessions_match_reference(seed):
    replay_sqlite_session(seed, steps=150, lattice_pruning=True)


@pytest.mark.parametrize("seed", range(3))
def test_randomized_sessions_match_without_pruning(seed):
    replay_sqlite_session(seed + 100, steps=100, lattice_pruning=False)


@pytest.mark.parametrize("seed", range(4))
def test_index_queries_match_the_plain_index(seed):
    """Both index implementations return the same candidate sets."""
    rng = np.random.default_rng(seed)
    items = [f"i{k}" for k in range(7)]
    backend = SQLiteBackend(":memory:")
    sql_index = backend.make_index()
    plain_index = RuleIndex()
    pool = [random_rule(rng, items) for _ in range(40)]
    for rule in pool:
        sql_index.add(rule)
        plain_index.add(rule)
    for probe in pool:
        assert set(sql_index.generalization_candidates(probe)) == set(
            plain_index.generalization_candidates(probe)
        )
        assert set(sql_index.specialization_candidates(probe)) == set(
            plain_index.specialization_candidates(probe)
        )
    backend.close()
