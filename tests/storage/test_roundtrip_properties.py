"""Round-trip properties of the storage layer's plain documents.

Everything the storage layer writes next to the checkpoint pickle —
rule keys, sample-store documents, aggregate summaries, latent-trust
state — must survive the trip to a JSON-compatible document and back,
for *any* input the system can produce: item names are natural-language
text (unicode, punctuation, whitespace), sample stores can hold any
member/stats mix, and weighted summaries can come back with ``n == 0``
when every contributor's weight is zero.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Rule, RuleStats
from repro.estimation import RuleSamples
from repro.estimation.samples import EstimateSummary
from repro.faults.latent import LatentAbilityModel
from repro.io import PersistenceError
from repro.storage import (
    latent_from_doc,
    latent_to_doc,
    rule_from_key,
    rule_key,
    samples_from_doc,
    samples_to_doc,
    summary_from_doc,
    summary_to_doc,
)

# Natural-language item names: arbitrary unicode, punctuation included —
# exactly what ends up in rule keys for real domains.
item_text = st.text(min_size=1, max_size=12)

rules = st.lists(item_text, min_size=1, max_size=6, unique=True).flatmap(
    lambda items: st.integers(0, len(items) - 1).map(
        lambda cut: Rule(items[:cut], items[cut:])
    )
)

stats = st.tuples(
    st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
).map(lambda pair: RuleStats(min(pair), max(pair)))

member_ids = st.text(min_size=1, max_size=8)


class TestRuleKey:
    @settings(max_examples=100, deadline=None)
    @given(rules)
    def test_round_trips_any_rule(self, rule):
        assert rule_from_key(rule_key(rule)) == rule

    @settings(max_examples=50, deadline=None)
    @given(rules)
    def test_key_survives_json_embedding(self, rule):
        # Keys land inside SQL text columns and JSON exports; another
        # encode/decode layer must not mangle them.
        embedded = json.loads(json.dumps({"rule": rule_key(rule)}))
        assert rule_from_key(embedded["rule"]) == rule

    def test_unicode_key_is_not_ascii_escaped(self):
        key = rule_key(Rule(["蜂蜜"], ["咳嗽"]))
        assert "蜂蜜" in key

    @pytest.mark.parametrize(
        "bad", ["", "{", "[]", '["a"]', '[["a"],2]', '[["a"],["a"]]', '[["a"],[]]']
    )
    def test_malformed_keys_raise_persistence_error(self, bad):
        with pytest.raises(PersistenceError):
            rule_from_key(bad)


class TestSamplesDoc:
    @settings(max_examples=60, deadline=None)
    @given(
        rules,
        st.lists(st.tuples(member_ids, stats), max_size=8, unique_by=lambda t: t[0]),
    )
    def test_round_trips_members_and_stats(self, rule, observations):
        samples = RuleSamples(rule)
        for member_id, observed in observations:
            samples.add(member_id, observed)
        doc = json.loads(json.dumps(samples_to_doc(samples)))
        rebuilt = samples_from_doc(doc)
        assert rebuilt.rule == rule
        assert rebuilt.n == samples.n
        assert rebuilt.observations() == samples.observations()

    def test_ruleless_store_round_trips(self):
        samples = RuleSamples(None)
        samples.add("u1", RuleStats(0.25, 0.75))
        rebuilt = samples_from_doc(samples_to_doc(samples))
        assert rebuilt.rule is None
        assert rebuilt.observations() == samples.observations()

    def test_malformed_document_raises_persistence_error(self):
        with pytest.raises(PersistenceError):
            samples_from_doc({"observations": [{"member": "u1"}]})


class TestSummaryDoc:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(member_ids, stats), min_size=1, max_size=8,
                    unique_by=lambda t: t[0]))
    def test_round_trips_aggregated_summaries(self, observations):
        from repro.estimation import MeanAggregator

        samples = RuleSamples(None)
        for member_id, observed in observations:
            samples.add(member_id, observed)
        summary = MeanAggregator().summarize(samples)
        rebuilt = summary_from_doc(json.loads(json.dumps(summary_to_doc(summary))))
        assert rebuilt.n == summary.n
        assert np.array_equal(rebuilt.mean, summary.mean)
        assert np.array_equal(rebuilt.mean_cov, summary.mean_cov)

    def test_zero_n_weighted_summary_round_trips(self):
        # The WeightedAggregator returns n == 0 when every contributor's
        # weight is zero; the document form must not choke on it.
        summary = EstimateSummary(
            n=0, mean=np.zeros(2), mean_cov=np.zeros((2, 2))
        )
        rebuilt = summary_from_doc(summary_to_doc(summary))
        assert rebuilt.n == 0
        assert np.array_equal(rebuilt.mean, summary.mean)
        assert np.array_equal(rebuilt.mean_cov, summary.mean_cov)


def _doc_of(model):
    return latent_to_doc(model)


class TestLatentDoc:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 4), stats),
            max_size=20,
        ),
        st.lists(st.integers(0, 3), max_size=3),
    )
    def test_round_trips_observed_state(self, answers, malformed):
        members = [f"член-{k}" for k in range(4)]
        pool = [Rule([f"a{k}"], [f"b{k}"]) for k in range(5)]
        model = LatentAbilityModel()
        for member_idx, rule_idx, observed in answers:
            model.observe_answer(members[member_idx], pool[rule_idx], observed)
        for member_idx in malformed:
            model.observe_malformed(members[member_idx])
        doc = _doc_of(model)
        assert _doc_of(latent_from_doc(doc)) == doc

    def test_round_trips_fitted_state(self):
        rng = np.random.default_rng(3)
        members = [f"m{k}" for k in range(6)]
        pool = [Rule([f"a{k}"], [f"b{k}"]) for k in range(8)]
        model = LatentAbilityModel(reestimate_every=1)
        for _ in range(60):
            member = members[int(rng.integers(len(members)))]
            rule = pool[int(rng.integers(len(pool)))]
            support = float(rng.uniform(0.0, 0.6))
            model.observe_answer(
                member, rule, RuleStats(support, float(rng.uniform(support, 1.0)))
            )
        model.reestimate()  # fits abilities; return value = "trust moved"
        model.mark_quarantined(members[0])
        doc = _doc_of(model)
        rebuilt = latent_from_doc(doc)
        assert _doc_of(rebuilt) == doc
        for member in members:
            assert rebuilt.trust(member) == model.trust(member)
        assert rebuilt.quarantined == {members[0]}

    def test_document_is_json_compatible(self):
        model = LatentAbilityModel()
        model.observe_answer("u1", Rule(["蜂蜜"], ["咳嗽"]), RuleStats(0.2, 0.8))
        doc = json.loads(json.dumps(latent_to_doc(model), ensure_ascii=False))
        assert _doc_of(latent_from_doc(doc)) == latent_to_doc(model)
