"""Scrub-on-open and checkpoint repair for a full mining session.

The storage half of the chaos tentpole, exercised without HTTP: a real
miner checkpoints to a real store, the store gets damaged the way
disks damage things (torn tails, flipped bits), and
``load_session(repair=True)`` must fall back to the newest checkpoint
whose checksum holds — finishing with a fingerprint byte-identical to
an undamaged run's. Without ``repair`` the corruption must be *loud*:
a :class:`CorruptStoreError` naming the damage, never garbage state.
"""

import pytest

from repro.miner import CrowdMiner
from repro.serve import Scenario
from repro.storage import (
    CorruptStoreError,
    SQLiteBackend,
    load_session,
    open_backend,
    scrub_store,
)

SCENARIO = Scenario(n_members=6, transactions_per_member=40, budget=30)


def build_miner(storage):
    return CrowdMiner(
        SCENARIO.build_crowd(),
        SCENARIO.miner_config(checkpoint_every=5),
        storage=storage,
    )


def damage(path, checkpoint_id, *, mode):
    """Corrupt one checkpoint row the way a disk would."""
    import sqlite3

    conn = sqlite3.connect(path)
    (blob,) = conn.execute(
        "SELECT payload FROM checkpoints WHERE id=?", (checkpoint_id,)
    ).fetchone()
    if mode == "torn":
        blob = blob[: len(blob) // 3]
    else:
        damaged = bytearray(blob)
        damaged[len(damaged) // 2] ^= 0x10
        blob = bytes(damaged)
    conn.execute(
        "UPDATE checkpoints SET payload=? WHERE id=?", (blob, checkpoint_id)
    )
    conn.commit()
    conn.close()


@pytest.fixture
def finished_store(tmp_path):
    """A completed durable session and its clean fingerprint."""
    path = tmp_path / "s.db"
    storage = SQLiteBackend(path)
    miner = build_miner(storage)
    result = miner.run()
    miner.checkpoint()
    storage.close()
    return path, result.fingerprint()


class TestScrub:
    def test_clean_store_scrubs_clean(self, finished_store):
        path, _fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        verified, corrupt = scrub_store(storage)
        assert corrupt == []
        assert len(verified) >= 2
        storage.close()

    @pytest.mark.parametrize("mode", ["torn", "bitflip"])
    def test_scrub_localizes_damage(self, finished_store, mode):
        path, _fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        victim = storage.checkpoints()[-2].checkpoint_id
        storage.close()
        damage(path, victim, mode=mode)
        storage = open_backend(path, "sqlite", resume=True)
        verified, corrupt = scrub_store(storage)
        assert [info.checkpoint_id for info in corrupt] == [victim]
        assert victim not in {info.checkpoint_id for info in verified}
        storage.close()


class TestRepair:
    def test_corrupt_latest_is_loud_without_repair(self, finished_store):
        path, _fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        latest = storage.checkpoints()[-1].checkpoint_id
        storage.close()
        damage(path, latest, mode="bitflip")
        storage = open_backend(path, "sqlite", resume=True)
        with pytest.raises(CorruptStoreError, match="--repair"):
            load_session(storage)
        storage.close()

    def test_repair_falls_back_and_converges(self, finished_store):
        path, clean_fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        latest = storage.checkpoints()[-1].checkpoint_id
        storage.close()
        damage(path, latest, mode="torn")
        storage = open_backend(path, "sqlite", resume=True)
        miner, dispatcher, info = load_session(storage, repair=True)
        assert dispatcher is None
        assert info.checkpoint_id != latest
        # The bad row is gone from the store, not just skipped.
        assert latest not in {c.checkpoint_id for c in storage.checkpoints()}
        assert miner.obs.snapshot().counters["storage.repaired"] == 1
        result = miner.run()
        miner.checkpoint()
        storage.close()
        assert result.fingerprint() == clean_fp

    def test_repair_survives_multiple_corrupt_checkpoints(self, finished_store):
        path, clean_fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        victims = [info.checkpoint_id for info in storage.checkpoints()[-3:]]
        storage.close()
        for n, victim in enumerate(victims):
            damage(path, victim, mode="torn" if n % 2 else "bitflip")
        storage = open_backend(path, "sqlite", resume=True)
        miner, _dispatcher, info = load_session(storage, repair=True)
        assert info.checkpoint_id not in victims
        assert miner.obs.snapshot().counters["storage.repaired"] == len(victims)
        result = miner.run()
        storage.close()
        assert result.fingerprint() == clean_fp

    def test_nothing_verified_is_corrupt_store_error(self, finished_store):
        path, _fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        victims = [info.checkpoint_id for info in storage.checkpoints()]
        storage.close()
        for victim in victims:
            damage(path, victim, mode="bitflip")
        storage = open_backend(path, "sqlite", resume=True)
        with pytest.raises(CorruptStoreError, match="no verified checkpoint"):
            load_session(storage, repair=True)
        storage.close()

    def test_readonly_repair_skips_without_dropping(self, finished_store):
        path, _fp = finished_store
        storage = open_backend(path, "sqlite", resume=True)
        latest = storage.checkpoints()[-1].checkpoint_id
        n_checkpoints = len(storage.checkpoints())
        storage.close()
        damage(path, latest, mode="bitflip")
        storage = open_backend(path, "sqlite", readonly=True)
        miner, _dispatcher, info = load_session(
            storage, rollback=False, repair=True
        )
        assert info.checkpoint_id != latest
        # Read-only: the corrupt row is skipped, never deleted.
        assert len(storage.checkpoints()) == n_checkpoints
        storage.close()
