"""Kill-and-resume determinism: the tentpole contract of the storage layer.

A session killed at any round and resumed from its latest checkpoint
must produce a final summary byte-identical to the uninterrupted run —
same question log, same reported rules, same fingerprint. These tests
exercise that contract in-process for synchronous and dispatched
sessions on both backends (the CLI/SIGKILL variant lives in
``test_kill_resume.py``), plus the failure modes: corrupt payloads,
empty stores, and the answer-log rollback on restore.
"""

import pickle
from dataclasses import replace

import pytest

from repro._util import as_rng
from repro.dispatch import DispatchConfig, Dispatcher, LognormalLatency
from repro.eval.runner import (
    ExperimentConfig,
    _miner_config,
    build_crowd,
    build_world,
    resume_session,
    run_session,
)
from repro.miner import CrowdMiner
from repro.storage import (
    StorageError,
    capture_session,
    load_session,
    open_backend,
    restore_session,
)

CFG = ExperimentConfig(
    name="resume",
    budget=160,
    checkpoints=(160,),
    repetitions=1,
    n_items=24,
    n_patterns=5,
    n_members=10,
    transactions_per_member=50,
)


def make_miner(storage=None, checkpoint_every=0):
    """A deterministic session; equal seeds ⇒ equal trajectories."""
    _, population, _ = build_world(CFG, 42)
    rng = as_rng(777)
    crowd = build_crowd(CFG, population, rng)
    config = _miner_config(CFG, rng)
    config.checkpoint_every = checkpoint_every
    return CrowdMiner(crowd, config, storage=storage)


def dispatch_config():
    return DispatchConfig(
        window=8, timeout=500.0, latency=LognormalLatency(2.0, 1.0), seed=99
    )


@pytest.fixture(scope="module")
def sync_fingerprint():
    return make_miner().run().fingerprint()


@pytest.fixture(scope="module")
def dispatched_baseline():
    return Dispatcher(make_miner(), dispatch_config()).run()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
class TestSyncResume:
    def test_killed_run_resumes_byte_identically(
        self, tmp_path, kind, sync_fingerprint
    ):
        path = tmp_path / "session.store"
        storage = open_backend(path, kind)
        miner = make_miner(storage=storage, checkpoint_every=40)
        miner.run(max_questions=130)  # "crash" past the q=120 checkpoint
        del miner  # nothing survives but the store on disk
        storage.close()

        resumed = open_backend(path, kind, resume=True)
        miner, dispatcher, info = load_session(resumed)
        assert dispatcher is None
        assert info.questions == 120
        assert miner.questions_asked == 120
        result = miner.run()
        assert result.fingerprint() == sync_fingerprint
        resumed.close()

    def test_restore_rolls_the_answer_log_back_to_the_checkpoint(
        self, tmp_path, kind
    ):
        path = tmp_path / "session.store"
        storage = open_backend(path, kind)
        miner = make_miner(storage=storage, checkpoint_every=40)
        miner.run(max_questions=130)
        del miner
        storage.close()

        resumed = open_backend(path, kind, resume=True)
        # 130 answers were logged but the checkpoint holds 120; the 10
        # post-checkpoint entries are rolled back and re-collected.
        miner, _, info = load_session(resumed)
        assert info.answers_logged == 120
        assert [r.seq for r in resumed.answers()] == list(range(120))
        miner.run()
        assert [r.seq for r in resumed.answers()] == list(range(CFG.budget))
        resumed.close()


@pytest.mark.parametrize("kind", ["memory", "sqlite"])
def test_dispatched_kill_and_resume_is_byte_identical(
    tmp_path, kind, dispatched_baseline
):
    path = tmp_path / "session.store"
    storage = open_backend(path, kind)
    miner = make_miner(storage=storage, checkpoint_every=40)
    dispatcher = Dispatcher(miner, dispatch_config())
    dispatcher._fill_window()
    while dispatcher._in_flight and miner.questions_asked < 130:
        dispatcher.clock.pop()
        dispatcher._maybe_checkpoint()
        dispatcher._fill_window()
    assert dispatcher._in_flight  # killed with questions genuinely in flight
    del miner, dispatcher
    storage.close()

    resumed = open_backend(path, kind, resume=True)
    miner, dispatcher, info = load_session(resumed)
    assert dispatcher is not None
    assert info.questions == 120
    result = dispatcher.run()
    assert result.fingerprint() == dispatched_baseline.fingerprint()
    # The dispatch books (timeouts, retries, in-flight high water,
    # simulated makespan) are part of the restored state too.
    assert result.dispatch == dispatched_baseline.dispatch
    resumed.close()


class TestRestoreEdges:
    def test_capture_restore_round_trip_without_storage(self, sync_fingerprint):
        miner = make_miner()
        miner.run(max_questions=60)
        restored, dispatcher = restore_session(capture_session(miner))
        assert dispatcher is None
        assert restored.run().fingerprint() == sync_fingerprint

    def test_resume_repoints_the_index_at_the_backend(self, tmp_path):
        from repro.storage.sqlite import SQLiteRuleIndex

        path = tmp_path / "session.db"
        storage = open_backend(path, "sqlite")
        miner = make_miner(storage=storage, checkpoint_every=40)
        miner.run(max_questions=60)
        del miner
        storage.close()
        resumed = open_backend(path, "sqlite", resume=True)
        miner, _, _ = load_session(resumed)
        # The pickled state dropped its index; load_session rebuilds it
        # inside the backend so lattice scans run as SQL again.
        assert isinstance(miner.state._index, SQLiteRuleIndex)
        resumed.close()

    def test_garbage_payload_is_a_storage_error(self):
        with pytest.raises(StorageError):
            restore_session(b"not a pickle")

    def test_unknown_format_is_a_storage_error(self):
        with pytest.raises(StorageError):
            restore_session(pickle.dumps({"format": 999}))

    def test_empty_store_is_a_storage_error(self, tmp_path):
        storage = open_backend(tmp_path / "empty.db", "sqlite")
        with pytest.raises(StorageError):
            load_session(storage)
        storage.close()


class TestRunnerResume:
    def test_resume_session_finishes_a_killed_experiment(self, tmp_path):
        config = replace(
            CFG,
            checkpoints=(80, 160),
            checkpoint_path=str(tmp_path / "killed.db"),
            checkpoint_every=40,
        )
        _, population, truth = build_world(config, 42)
        full = run_session(
            replace(config, checkpoint_path=str(tmp_path / "full.db")),
            population,
            truth,
            seed=7,
        )

        # Replicate run_session's deterministic setup, die at q=100.
        rng = as_rng(7)
        crowd = build_crowd(config, population, rng)
        storage = open_backend(config.checkpoint_path, config.storage_backend)
        miner = CrowdMiner(crowd, _miner_config(config, rng), storage=storage)
        miner.run(max_questions=100)
        del miner
        storage.close()

        resumed = resume_session(config, truth)
        assert [
            (p.questions, p.precision, p.recall) for p in resumed.curve.points
        ] == [(p.questions, p.precision, p.recall) for p in full.curve.points]
        assert resumed.rules_discovered == full.rules_discovered
        assert resumed.open_questions == full.open_questions

    def test_resume_session_rejects_dispatched_checkpoints(self, tmp_path):
        config = replace(CFG, checkpoint_path=str(tmp_path / "dispatched.db"))
        _, _, truth = build_world(config, 42)
        storage = open_backend(config.checkpoint_path, "sqlite")
        miner = make_miner(storage=storage, checkpoint_every=40)
        dispatcher = Dispatcher(miner, dispatch_config())
        dispatcher._fill_window()
        while dispatcher._in_flight and miner.questions_asked < 50:
            dispatcher.clock.pop()
            dispatcher._maybe_checkpoint()
            dispatcher._fill_window()
        del miner, dispatcher
        storage.close()
        with pytest.raises(StorageError):
            resume_session(config, truth)

    def test_resume_session_requires_a_checkpoint_path(self):
        from repro.errors import ConfigurationError

        _, _, truth = build_world(CFG, 42)
        with pytest.raises(ConfigurationError):
            resume_session(CFG, truth)
