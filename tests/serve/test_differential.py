"""The equivalence ladder's serving rung: sim ≡ dispatch ≡ live HTTP.

One seeded :class:`~repro.serve.Scenario` is replayed through
``miner.run()``, the simulated-clock dispatcher, and a real asyncio
server on an ephemeral port with answers crossing actual HTTP — and
the final knowledge-base fingerprints must be **byte-identical**. This
extends ``tests/dispatch/test_equivalence.py``'s ``window=1 ≡ sync``
discipline across a network boundary and a wall clock.
"""

import asyncio

import pytest

from repro.serve import (
    JsonClient,
    MinerServer,
    Scenario,
    SessionManager,
    SimulatedWorkerPool,
    drive_inprocess,
    drive_session,
    run_dispatch,
    run_serve,
    run_session_inprocess,
    run_sync,
)

BASE = Scenario(n_members=8, transactions_per_member=50, budget=80)


class TestThreeRouteIdentity:
    def test_inprocess_session_matches_sync(self):
        """The cheapest rung first: the session mechanics alone (no
        HTTP, no event loop) already reproduce the sync transcript."""
        sync = run_sync(BASE)
        session, pool = run_session_inprocess(BASE)
        served = drive_inprocess(session, pool)
        assert served.fingerprint() == sync.fingerprint()
        assert served.questions_asked == sync.questions_asked

    def test_live_service_matches_sync_and_dispatch(self):
        sync = run_sync(BASE)
        dispatched = run_dispatch(BASE, window=1)
        served = run_serve(BASE)
        assert dispatched.fingerprint() == sync.fingerprint()
        assert served["fingerprint"] == sync.fingerprint()
        assert served["questions_asked"] == sync.questions_asked

    def test_patience_departures_stay_identical(self):
        scenario = Scenario(
            n_members=8, transactions_per_member=50, budget=80, patience=6
        )
        sync = run_sync(scenario)
        served = run_serve(scenario)
        assert served["fingerprint"] == sync.fingerprint()

    def test_adversaries_and_quarantine_stay_identical(self):
        scenario = Scenario(
            n_members=10,
            transactions_per_member=50,
            budget=80,
            adversary_mix=(("spammer", 0.3),),
            quarantine=True,
        )
        sync = run_sync(scenario)
        served = run_serve(scenario)
        assert served["fingerprint"] == sync.fingerprint()

    def test_malformed_floods_cost_no_budget_on_either_side(self):
        scenario = Scenario(
            n_members=10,
            transactions_per_member=50,
            budget=80,
            adversary_mix=(("garbled", 0.3),),
        )
        sync = run_sync(scenario)
        served = run_serve(scenario)
        assert served["fingerprint"] == sync.fingerprint()
        # Garbled answers consume issues but no budget: the serve books
        # show more hand-outs than the budget, never more spend.
        assert served["serve"]["issued"] >= served["questions_asked"]
        assert served["questions_asked"] == sync.questions_asked


class TestServiceSurface:
    def test_concurrent_sessions_are_isolated(self):
        """Two interleaved sessions on one server still match their
        respective solo sync transcripts."""
        a = Scenario(n_members=6, transactions_per_member=40, budget=40, miner_seed=21)
        b = Scenario(n_members=6, transactions_per_member=40, budget=40, miner_seed=22)
        sync_a = run_sync(a).fingerprint()
        sync_b = run_sync(b).fingerprint()

        async def scenario():
            manager = SessionManager()
            server = MinerServer(manager, "127.0.0.1", 0)
            await server.start()
            run_task = asyncio.create_task(server.run(install_signals=False))
            client = JsonClient("127.0.0.1", server.port)
            pools = {}
            for name, sc in (("a", a), ("b", b)):
                crowd = sc.build_crowd()
                pools[name] = SimulatedWorkerPool(crowd)
                status, _ = await client.request(
                    "POST", "/v1/sessions", sc.session_spec(crowd.member_ids, id=name)
                )
                assert status == 201
            # Strict interleave: one exchange for a, one for b, ...
            done = {"a": False, "b": False}
            while not all(done.values()):
                for name in ("a", "b"):
                    if done[name]:
                        continue
                    _, doc = await client.request(
                        "POST", f"/v1/sessions/{name}/question"
                    )
                    if doc["status"] == "done":
                        done[name] = True
                        continue
                    assert doc["status"] == "ok"
                    question = doc["question"]
                    await client.request(
                        "POST",
                        f"/v1/sessions/{name}/answer",
                        {
                            "question_id": question["question_id"],
                            "answer": pools[name].answer(question),
                        },
                    )
            results = {}
            for name in ("a", "b"):
                _, results[name] = await client.request(
                    "GET", f"/v1/sessions/{name}/result"
                )
            server.request_shutdown()
            await client.aclose()
            await run_task
            return results

        results = asyncio.run(scenario())
        assert results["a"]["fingerprint"] == sync_a
        assert results["b"]["fingerprint"] == sync_b

    def test_kb_endpoint_reports_significant_rules(self):
        async def scenario():
            manager = SessionManager()
            server = MinerServer(manager, "127.0.0.1", 0)
            await server.start()
            run_task = asyncio.create_task(server.run(install_signals=False))
            client = JsonClient("127.0.0.1", server.port)
            crowd = BASE.build_crowd()
            pool = SimulatedWorkerPool(crowd)
            await client.request(
                "POST", "/v1/sessions", BASE.session_spec(crowd.member_ids, id="kb")
            )
            await drive_session(client, "kb", pool)
            _, kb = await client.request("GET", "/v1/sessions/kb/kb?top=5")
            _, health = await client.request("GET", "/healthz")
            server.request_shutdown()
            await client.aclose()
            await run_task
            return kb, health

        kb, health = asyncio.run(scenario())
        assert health["status"] == "ok" and health["sessions"] == 1
        assert kb["session"] == "kb"
        assert len(kb["significant"]) <= 5
        for entry in kb["significant"]:
            assert 0.0 <= entry["support"] <= entry["confidence"] <= 1.0
            assert isinstance(entry["rule"], str) and entry["display"]

    def test_http_errors_do_not_kill_the_server(self):
        async def scenario():
            manager = SessionManager()
            server = MinerServer(manager, "127.0.0.1", 0)
            await server.start()
            run_task = asyncio.create_task(server.run(install_signals=False))
            client = JsonClient("127.0.0.1", server.port)
            outcomes = []
            outcomes.append(await client.request("GET", "/no/such/route"))
            outcomes.append(await client.request("POST", "/v1/sessions", "not an object"))
            outcomes.append(await client.request("GET", "/v1/sessions/ghost"))
            outcomes.append(
                await client.request("POST", "/v1/sessions/ghost/answer", {"x": 1})
            )
            outcomes.append(await client.request("GET", "/healthz"))
            server.request_shutdown()
            await client.aclose()
            await run_task
            return outcomes

        outcomes = asyncio.run(scenario())
        statuses = [status for status, _ in outcomes]
        assert statuses[:4] == [404, 400, 404, 404]
        assert statuses[4] == 200  # still alive after all of that

    @pytest.mark.parametrize("kind", ["delete", "shutdown"])
    def test_lifecycle_endpoints(self, kind):
        async def scenario():
            manager = SessionManager()
            server = MinerServer(manager, "127.0.0.1", 0)
            await server.start()
            run_task = asyncio.create_task(server.run(install_signals=False))
            client = JsonClient("127.0.0.1", server.port)
            crowd = BASE.build_crowd()
            await client.request(
                "POST", "/v1/sessions", BASE.session_spec(crowd.member_ids, id="x")
            )
            if kind == "delete":
                status, doc = await client.request("DELETE", "/v1/sessions/x")
                assert status == 200 and doc["status"] == "deleted"
                status, _ = await client.request("GET", "/v1/sessions/x")
                assert status == 404
                server.request_shutdown()
            else:
                status, doc = await client.request("POST", "/v1/shutdown")
                assert status == 200 and doc["status"] == "draining"
            await client.aclose()
            return await run_task

        drained = asyncio.run(scenario())
        assert drained == (0 if kind == "delete" else 1)
