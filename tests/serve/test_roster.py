"""The roster schedules exactly like the simulated crowd.

The differential harness's byte-identity rests on one scheduling fact:
a :class:`~repro.serve.WorkerRoster` driven through the same sequence
of picks, departures and quarantines as a
:class:`~repro.crowd.SimulatedCrowd` selects the *same member at every
step* — same cursor arithmetic, same exhausted/None distinction. The
property test here drives both through randomized op sequences and
compares every outcome.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import SimulatedCrowd, standard_answer_model
from repro.errors import CrowdExhaustedError
from repro.serve import WorkerRoster
from repro.synth import build_population, folk_remedies_model

N_MEMBERS = 8

_POPULATION = build_population(
    folk_remedies_model(seed=1),
    n_members=N_MEMBERS,
    transactions_per_member=20,
    seed=2,
)


def fresh_crowd():
    return SimulatedCrowd.from_population(
        _POPULATION, answer_model=standard_answer_model(), seed=3
    )


#: One op: pick with an exclusion mask, or an availability fact about
#: one member index. ("pick", frozenset) | ("depart"|"quarantine", idx)
OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("pick"),
            st.frozensets(st.integers(0, N_MEMBERS - 1), max_size=N_MEMBERS),
        ),
        st.tuples(st.just("depart"), st.integers(0, N_MEMBERS - 1)),
        st.tuples(st.just("quarantine"), st.integers(0, N_MEMBERS - 1)),
    ),
    min_size=1,
    max_size=40,
)


class TestSchedulingEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_same_ops_pick_the_same_members(self, ops):
        crowd = fresh_crowd()
        ids = crowd.member_ids
        roster = WorkerRoster(ids)
        assert roster.member_ids == ids
        for op, arg in ops:
            if op == "pick":
                exclude = {ids[i] for i in arg}
                crowd_outcome = _pick(crowd, exclude)
                roster_outcome = _pick(roster, exclude)
                assert roster_outcome == crowd_outcome
            elif op == "depart":
                crowd.crash(ids[arg])
                roster.depart(ids[arg])
            else:
                crowd.quarantine(ids[arg])
                roster.quarantine(ids[arg])
            assert roster.available_count() == crowd.available_count()
            for mid in ids:
                assert roster.is_member_available(mid) == crowd.is_member_available(
                    mid
                )


def _pick(scheduler, exclude):
    try:
        return ("picked", scheduler.next_member(exclude=exclude))
    except CrowdExhaustedError:
        return ("exhausted", None)


class TestRosterSurface:
    def test_rejects_empty_and_duplicate_ids(self):
        with pytest.raises(CrowdExhaustedError):
            WorkerRoster([])
        with pytest.raises(ValueError):
            WorkerRoster(["a", "b", "a"])

    def test_unknown_members_raise(self):
        roster = WorkerRoster(["a", "b"])
        with pytest.raises(KeyError):
            roster.depart("ghost")
        with pytest.raises(KeyError):
            roster.quarantine("ghost")
        assert not roster.is_member_available("ghost")

    def test_depart_and_crash_are_idempotent_aliases(self):
        roster = WorkerRoster(["a", "b"])
        roster.depart("a")
        roster.depart("a")
        roster.crash("a")
        assert roster.available_members() == ["b"]
        assert roster.available_count() == 1

    def test_quarantine_tracks_and_reports(self):
        roster = WorkerRoster(["a", "b", "c"])
        roster.quarantine("b")
        assert roster.is_quarantined("b")
        assert roster.quarantined_members == {"b"}
        assert roster.available_members() == ["a", "c"]

    def test_all_excluded_is_none_all_gone_raises(self):
        roster = WorkerRoster(["a", "b"])
        assert roster.next_member(exclude={"a", "b"}) is None
        roster.depart("a")
        roster.depart("b")
        with pytest.raises(CrowdExhaustedError):
            roster.next_member()

    def test_failed_picks_do_not_advance_the_cursor(self):
        roster = WorkerRoster(["a", "b"])
        assert roster.next_member() == "a"
        assert roster.next_member(exclude={"a", "b"}) is None
        assert roster.next_member() == "b"

    def test_asking_a_roster_is_a_type_error(self):
        roster = WorkerRoster(["a"])
        with pytest.raises(TypeError):
            roster.ask_closed("a", None)
        with pytest.raises(TypeError):
            roster.ask_open("a")

    def test_pickle_round_trip_preserves_rotation(self):
        roster = WorkerRoster(["a", "b", "c"])
        roster.next_member()
        roster.depart("b")
        clone = pickle.loads(pickle.dumps(roster))
        assert clone.member_ids == roster.member_ids
        assert clone.available_members() == roster.available_members()
        # Both rotations continue from the same cursor position.
        for _ in range(5):
            assert clone.next_member() == roster.next_member()
