"""Graceful-shutdown durability: SIGTERM the serve process mid-flight.

The server-path extension of ``tests/storage/test_kill_resume.py``: a
real ``repro serve`` process (separate interpreter) is terminated with
questions outstanding — fetched over HTTP but unanswered — and a
second process resumes the data directory. The outstanding question
must be re-offered verbatim, the client's memoized answers replay, and
the finished session's fingerprint must equal an uninterrupted sync
run's, byte for byte. This is the flow the CI serve-smoke job drives.
"""

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import JsonClient, Scenario, SimulatedWorkerPool, drive_session, run_sync

SRC = Path(__file__).resolve().parents[2] / "src"

SCENARIO = Scenario(n_members=8, transactions_per_member=50, budget=60)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_server(tmp_path, *extra):
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0", "--data-dir", str(tmp_path), *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("serving on http://"), (line, proc.stderr.read())
    port = int(line.rsplit(":", 1)[1])
    return proc, port


@pytest.mark.slow
class TestSigtermDrain:
    def test_drain_checkpoint_resumes_byte_identically(self, tmp_path):
        sync_fp = run_sync(SCENARIO).fingerprint()
        crowd = SCENARIO.build_crowd()
        pool = SimulatedWorkerPool(crowd)

        proc, port = _spawn_server(tmp_path)

        async def phase_one():
            client = JsonClient("127.0.0.1", port)
            status, created = await client.request(
                "POST",
                "/v1/sessions",
                SCENARIO.session_spec(
                    crowd.member_ids, id="soak", checkpoint_every=7
                ),
            )
            assert status == 201, created
            for _ in range(20):
                _, doc = await client.request("POST", "/v1/sessions/soak/question")
                assert doc["status"] == "ok", doc
                question = doc["question"]
                await client.request(
                    "POST",
                    "/v1/sessions/soak/answer",
                    {
                        "question_id": question["question_id"],
                        "answer": pool.answer(question),
                    },
                )
            # Leave one question fetched but unanswered: the drain
            # checkpoint must carry it as a re-offer.
            _, doc = await client.request("POST", "/v1/sessions/soak/question")
            assert doc["status"] == "ok", doc
            await client.aclose()
            return doc["question"]

        outstanding = asyncio.run(phase_one())

        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "drained 1 session(s)" in out
        assert (tmp_path / "soak.db").exists()

        proc2, port2 = _spawn_server(tmp_path, "--resume")

        async def phase_two():
            client = JsonClient("127.0.0.1", port2)
            # The first fetch after resume re-offers the outstanding
            # question verbatim: same id, same member, same payload.
            _, doc = await client.request("POST", "/v1/sessions/soak/question")
            assert doc["status"] == "ok", doc
            assert doc["question"] == outstanding
            await client.request(
                "POST",
                "/v1/sessions/soak/answer",
                {
                    "question_id": doc["question"]["question_id"],
                    "answer": pool.answer(doc["question"]),
                },
            )
            await drive_session(client, "soak", pool)
            _, result = await client.request("GET", "/v1/sessions/soak/result")
            await client.request("POST", "/v1/shutdown")
            await client.aclose()
            return result

        result = asyncio.run(phase_two())
        out2, err2 = proc2.communicate(timeout=30)
        assert proc2.returncode == 0, (out2, err2)
        assert result["fingerprint"] == sync_fp
        assert result["serve"]["issued"] >= 21

    def test_sigterm_with_no_sessions_exits_clean(self, tmp_path):
        proc, _port = _spawn_server(tmp_path)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, (out, err)
        assert "drained 0 session(s)" in out
