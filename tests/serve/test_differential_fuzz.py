"""Randomized differential fuzzing: any seeded world, three transcripts.

Each draw samples a whole scenario — crowd size, budget, patience,
adversary mix, quarantine, contextual opens — from a seeded RNG and
asserts the live service reproduces the sync fingerprint byte for
byte, and that windowed/sharded dispatch over the *same* world keeps
balanced books. The per-commit tier runs a handful of draws; ``slow``
widens the sweep (the CI serve-smoke job's territory).
"""

import random

import pytest

from repro.faults import ADVERSARY_ROLES
from repro.serve import Scenario, run_dispatch, run_serve, run_sync


def draw_scenario(seed: int) -> Scenario:
    rng = random.Random(seed)
    mix = ()
    if rng.random() < 0.5:
        roles = rng.sample(ADVERSARY_ROLES, k=rng.randint(1, 2))
        mix = tuple((role, round(rng.uniform(0.1, 0.3), 2)) for role in roles)
    return Scenario(
        n_members=rng.randint(6, 16),
        transactions_per_member=rng.randint(30, 70),
        budget=rng.randint(60, 140),
        patience=rng.choice([None, None, rng.randint(4, 12)]),
        adversary_mix=mix,
        quarantine=bool(mix) and rng.random() < 0.5,
        contextual_open_fraction=rng.choice([0.0, 0.0, 0.3]),
        model_seed=rng.randint(0, 10_000),
        crowd_seed=rng.randint(0, 10_000),
        miner_seed=rng.randint(0, 10_000),
    )


def assert_dispatch_books_balance(result):
    """Every dispatched issue met exactly one fate (the dispatcher's
    documented ledger)."""
    stats = result.dispatch
    assert stats is not None
    assert stats.issued == (
        stats.completed
        + stats.stale_discarded
        + stats.malformed
        + stats.rejected
        + stats.timeouts
        + stats.crashed
    ), stats


class TestFuzzedDraws:
    @pytest.mark.parametrize("seed", range(4))
    def test_serve_matches_sync_on_random_worlds(self, seed):
        scenario = draw_scenario(seed)
        sync = run_sync(scenario)
        served = run_serve(scenario)
        assert served["fingerprint"] == sync.fingerprint(), scenario
        assert served["questions_asked"] == sync.questions_asked

    @pytest.mark.parametrize("seed", range(4))
    def test_windowed_and_sharded_dispatch_books_balance(self, seed):
        rng = random.Random(1000 + seed)
        scenario = draw_scenario(seed)
        windowed = run_dispatch(scenario, window=rng.randint(2, 6))
        assert_dispatch_books_balance(windowed)
        sharded = run_dispatch(scenario, window=2, shards=rng.randint(2, 3))
        assert_dispatch_books_balance(sharded)

    @pytest.mark.parametrize("seed", range(4))
    def test_window_one_dispatch_still_matches_sync(self, seed):
        scenario = draw_scenario(seed)
        sync = run_sync(scenario)
        dispatched = run_dispatch(scenario, window=1)
        assert dispatched.fingerprint() == sync.fingerprint(), scenario
        assert_dispatch_books_balance(dispatched)


@pytest.mark.slow
class TestWideSweep:
    @pytest.mark.parametrize("seed", range(4, 16))
    def test_serve_matches_sync_wide(self, seed):
        scenario = draw_scenario(seed)
        sync = run_sync(scenario)
        served = run_serve(scenario)
        assert served["fingerprint"] == sync.fingerprint(), scenario
