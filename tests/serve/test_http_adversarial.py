"""Adversarial TCP framing against ``read_request``.

The server's parsing contract is total: whatever bytes arrive on the
socket, ``read_request`` returns a :class:`Request`, returns ``None``
(clean EOF between requests), or raises :class:`HttpError` — it never
lets ``UnicodeDecodeError``, ``ValueError``, ``IndexError`` or any
other surprise escape into the connection handler, where it would
kill the task and silently drop the connection's remaining pipeline.
Hypothesis drives the byte-level garbage; the named regression cases
pin specific framings found the hard way.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.http import MAX_BODY, MAX_LINE, HttpError, read_request


def parse(*chunks: bytes, eof: bool = True, limit: int = 2**16):
    """Feed chunks into a fresh stream and parse one request."""

    async def go():
        reader = asyncio.StreamReader(limit=limit)
        for chunk in chunks:
            reader.feed_data(chunk)
        if eof:
            reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def outcome(*chunks: bytes, **kwargs):
    """The parse outcome as data: a Request, None, or the HttpError."""
    try:
        return parse(*chunks, **kwargs)
    except HttpError as exc:
        return exc


class TestContract:
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(st.binary(max_size=2048))
    def test_arbitrary_bytes_never_raise_through(self, blob):
        result = outcome(blob)
        assert result is None or isinstance(result, (HttpError, object))

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=512), st.integers(min_value=1, max_value=511))
    def test_split_reads_parse_like_one_read(self, blob, cut):
        cut = min(cut, len(blob))
        whole = outcome(blob)
        split = outcome(blob[:cut], blob[cut:])
        assert type(whole) is type(split)
        if isinstance(whole, HttpError):
            assert whole.status == split.status

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet=st.characters(codec="latin-1"), max_size=200))
    def test_arbitrary_request_targets_never_raise_through(self, target):
        line = f"GET {target} HTTP/1.1\r\n\r\n".encode("latin-1")
        result = outcome(line)
        assert result is None or isinstance(result, (HttpError, object))

    @settings(max_examples=100, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=0, max_value=63),
    )
    def test_truncated_valid_requests_fail_with_400(self, body, cut):
        full = (
            b"POST /v1/sessions HTTP/1.1\r\n"
            + b"Content-Length: %d\r\n\r\n" % len(body)
            + body
        )
        keep = len(full) - 1 - cut
        result = outcome(full[:keep])
        if keep == 0:
            assert result is None
        else:
            assert isinstance(result, HttpError)
            assert result.status == 400


class TestRegressions:
    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_unbalanced_ipv6_target_is_400_not_valueerror(self):
        # urlsplit raises ValueError on ``//[bad`` — must become a 400.
        result = outcome(b"GET //[bad HTTP/1.1\r\n\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 400

    def test_oversized_request_line_is_400(self):
        result = outcome(b"GET /" + b"a" * (2 * MAX_LINE) + b" HTTP/1.1\r\n\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 400

    def test_too_many_headers_is_400(self):
        headers = b"".join(b"x-h%d: v\r\n" % n for n in range(100))
        result = outcome(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 400

    def test_giant_declared_body_is_413(self):
        result = outcome(
            b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % (MAX_BODY + 1)
        )
        assert isinstance(result, HttpError)
        assert result.status == 413

    def test_negative_content_length_is_413(self):
        result = outcome(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 413

    def test_chunked_upload_is_411(self):
        result = outcome(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
        )
        assert isinstance(result, HttpError)
        assert result.status == 411

    def test_pipelined_garbage_after_valid_request_parses_first(self):
        valid = b"GET /healthz HTTP/1.1\r\n\r\n"
        request = parse(valid + b"\x00\xff garbage \r\n\r\n" * 3, eof=False)
        assert request.method == "GET"
        assert request.path == "/healthz"

    def test_header_without_colon_is_400(self):
        result = outcome(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 400

    def test_non_http_protocol_line_is_400(self):
        result = outcome(b"SSH-2.0-OpenSSH_9.6\r\n\r\n")
        assert isinstance(result, HttpError)
        assert result.status == 400
